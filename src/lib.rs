//! # powerlist-streams
//!
//! Umbrella crate of the reproduction of *"Enhancing Java Streams API
//! with PowerList Computation"* (Niculescu, Bufnea, Sterca, 2020): it
//! re-exports the workspace crates and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! | Crate | Contents |
//! |---|---|
//! | [`powerlist`] | PowerList / PList algebra, no-copy views, PowerArray |
//! | [`forkjoin`] | work-stealing fork-join pool (ForkJoinPool equivalent) |
//! | [`jstreams`] | Java-Streams-like pipeline + the PowerList adaptation |
//! | [`jplf`] | JPLF framework port: PowerFunction + three executors |
//! | [`plalgo`] | algorithm catalogue: map/reduce, vp, FFT, scan, sorts, Gray |
//! | [`simsched`] | deterministic multicore cost-model simulator (figures) |
//!
//! ## Quickstart
//!
//! ```
//! use jstreams::{power_stream, collect_powerlist, Decomposition};
//! use powerlist::tabulate;
//!
//! // A PowerList of 2^4 elements, streamed with zip decomposition and
//! // reassembled with zipAll — the paper's identity example.
//! let data = tabulate(16, |i| i as f64).unwrap();
//! let out = collect_powerlist(
//!     power_stream(data.clone(), Decomposition::Zip),
//!     Decomposition::Zip,
//! ).unwrap();
//! assert_eq!(out, data);
//! ```

pub use forkjoin;
pub use jplf;
pub use jstreams;
pub use plalgo;
pub use powerlist;
pub use simsched;
