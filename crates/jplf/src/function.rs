//! The `PowerFunction` template (JPLF's core abstraction).
//!
//! JPLF defines divide-and-conquer functions with the *template method*
//! pattern (paper, Section III): a `PowerFunction` class whose `compute`
//! implements the solving strategy, with user-provided primitives
//!
//! * `basic_case` — the value on singletons,
//! * `combine` — the ascending phase,
//! * `create_left_function` / `create_right_function` — the descending
//!   phase: the function instances the two halves are computed with
//!   (this is how per-level parameters travel, e.g. polynomial
//!   evaluation descending with `x²`).
//!
//! Because executors are written purely against these primitives, the
//! same function definition runs sequentially, on the fork-join pool, or
//! on the simulated-MPI executor (Section III: "the execution is managed
//! separately from the PowerList function definition").

use powerlist::{PowerList, PowerView};

/// Result of a descending-phase data transformation: `None` to recurse
/// on the halves themselves, or the two element lists to recurse on
/// instead (Eq.-5-style functions).
pub type TransformedHalves<T> = Option<(PowerList<T>, PowerList<T>)>;

/// Which deconstruction operator drives the recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomp {
    /// Split in halves (`p | q`).
    Tie,
    /// Split by parity (`p ♮ q`).
    Zip,
}

/// A divide-and-conquer function over PowerLists, defined by the JPLF
/// primitives.
///
/// Instances carry their own parameters (the polynomial's point `x`, the
/// FFT's root of unity, ...); the descending phase produces the child
/// instances via [`PowerFunction::create_left`] /
/// [`PowerFunction::create_right`].
pub trait PowerFunction: Send + Sized + 'static {
    /// Element type of the input PowerList.
    type Elem: Clone + Send + Sync + 'static;
    /// Result type.
    type Out: Send + 'static;

    /// The deconstruction operator applied to the input at every level.
    fn decomposition(&self) -> Decomp;

    /// Leaf phase: the function's value on a singleton `[a]`.
    fn basic_case(&self, value: &Self::Elem) -> Self::Out;

    /// Descending phase: the function instance for the left half
    /// (`p` of `p | q` / `p ♮ q`). Defaults to parameter-free descent
    /// when `Self: Clone`.
    fn create_left(&self) -> Self;

    /// Descending phase: the function instance for the right half.
    fn create_right(&self) -> Self;

    /// Ascending phase: combines the two sub-results. `left`/`right`
    /// follow the deconstruction's order (`p` before `q`).
    fn combine(&self, left: Self::Out, right: Self::Out) -> Self::Out;

    /// Optional descending-phase *data* transformation, for functions of
    /// the paper's Eq. 5 shape `f(p | q) = f(p ⊕ q) | f(p ⊗ q)`: given
    /// the two halves, return the element lists the recursive calls run
    /// on instead. The default (`None`) recurses on the halves
    /// themselves, which covers map/reduce/FFT-style functions whose
    /// descending phase "only distributes the input data".
    fn transform_halves(
        &self,
        _left: &PowerView<Self::Elem>,
        _right: &PowerView<Self::Elem>,
    ) -> TransformedHalves<Self::Elem> {
        None
    }

    /// Leaf kernel: computes the function's value on a whole sub-list
    /// that an executor decided not to decompose further.
    ///
    /// The paper's Section V observes that "the basic case is, in many
    /// situations, applied to sublists that are not singletons" and may
    /// be "specialised by overriding" — e.g. polynomial evaluation runs
    /// a sequential Horner on its leaf. The default is the template
    /// recursion itself ([`compute_sequential`]), which is always
    /// correct; override it with a tight sequential loop when one
    /// exists. Overrides must compute exactly what the recursion would
    /// (tested per function in this repository).
    fn leaf_case(&self, view: &PowerView<Self::Elem>) -> Self::Out {
        compute_sequential(self, view)
    }
}

/// The template method itself: sequential structural recursion using the
/// four primitives. This is both the reference semantics all executors
/// must agree with, and the leaf kernel parallel executors call below
/// their splitting threshold.
pub fn compute_sequential<F: PowerFunction>(f: &F, input: &PowerView<F::Elem>) -> F::Out {
    if input.is_singleton() {
        return f.basic_case(input.singleton_value());
    }
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = (f.create_left(), f.create_right());
    let (lo, ro) = match f.transform_halves(&l, &r) {
        None => (compute_sequential(&fl, &l), compute_sequential(&fr, &r)),
        Some((l2, r2)) => (
            compute_sequential(&fl, &l2.view()),
            compute_sequential(&fr, &r2.view()),
        ),
    };
    f.combine(lo, ro)
}

/// Convenience wrapper: run the template on an owned list.
pub fn compute_on_list<F: PowerFunction>(f: &F, input: PowerList<F::Elem>) -> F::Out {
    compute_sequential(f, &input.view())
}

/// Fallible template recursion: the same structural recursion as
/// [`compute_sequential`], run under an execution session — the
/// session's token/deadline is checked at every node, and the
/// user-provided primitives run under panic containment. The currency of
/// the executors' `try_execute` paths.
pub fn try_compute_sequential<F: PowerFunction>(
    f: &F,
    input: &PowerView<F::Elem>,
    session: &jstreams::ExecSession,
) -> Result<F::Out, jstreams::Interrupt> {
    session.check()?;
    if input.is_singleton() {
        return session.run(|| f.basic_case(input.singleton_value()));
    }
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = session.run(|| (f.create_left(), f.create_right()))?;
    let transformed = session.run(|| f.transform_halves(&l, &r))?;
    let (lo, ro) = match transformed {
        None => (
            try_compute_sequential(&fl, &l, session)?,
            try_compute_sequential(&fr, &r, session)?,
        ),
        Some((l2, r2)) => (
            try_compute_sequential(&fl, &l2.view(), session)?,
            try_compute_sequential(&fr, &r2.view(), session)?,
        ),
    };
    session.run(|| f.combine(lo, ro))
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlist::tabulate;

    /// Sum via tie decomposition — the simplest reduce.
    #[derive(Clone)]
    struct Sum;

    impl PowerFunction for Sum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Sum
        }
        fn create_right(&self) -> Self {
            Sum
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Map(+c) via zip decomposition, returning a PowerList.
    #[derive(Clone)]
    struct AddC(i64);

    impl PowerFunction for AddC {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Zip
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(v + self.0)
        }
        fn create_left(&self) -> Self {
            AddC(self.0)
        }
        fn create_right(&self) -> Self {
            AddC(self.0)
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::zip(l, r)
        }
    }

    /// Eq. 5-style function with a descending-phase data transformation:
    /// f(p | q) = f(p + q) | f(p - q), basic case identity.
    #[derive(Clone)]
    struct SumDiffDescend;

    impl PowerFunction for SumDiffDescend {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(*v)
        }
        fn create_left(&self) -> Self {
            SumDiffDescend
        }
        fn create_right(&self) -> Self {
            SumDiffDescend
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::tie(l, r)
        }
        fn transform_halves(
            &self,
            l: &PowerView<i64>,
            r: &PowerView<i64>,
        ) -> TransformedHalves<i64> {
            let plus = powerlist::ops::zip_with(&l.to_powerlist(), &r.to_powerlist(), |a, b| a + b)
                .expect("similar halves");
            let minus =
                powerlist::ops::zip_with(&l.to_powerlist(), &r.to_powerlist(), |a, b| a - b)
                    .expect("similar halves");
            Some((plus, minus))
        }
    }

    #[test]
    fn sum_reduces() {
        let p = tabulate(16, |i| i as i64).unwrap();
        assert_eq!(compute_on_list(&Sum, p), 120);
    }

    #[test]
    fn sum_singleton() {
        assert_eq!(compute_on_list(&Sum, PowerList::singleton(7)), 7);
    }

    #[test]
    fn map_via_zip_preserves_order() {
        let p = tabulate(8, |i| i as i64).unwrap();
        let out = compute_on_list(&AddC(100), p);
        assert_eq!(out.as_slice(), &[100, 101, 102, 103, 104, 105, 106, 107]);
    }

    #[test]
    fn eq5_transform_halves_runs() {
        // length 2: f([a, b]) = [a+b] | [a-b]
        let p = PowerList::from_vec(vec![5i64, 3]).unwrap();
        let out = compute_on_list(&SumDiffDescend, p);
        assert_eq!(out.as_slice(), &[8, 2]);
        // length 4: one more level — f([a,b,c,d]) descends on
        // ([a+c, b+d], [a-c, b-d]) and each half again.
        let p = PowerList::from_vec(vec![1i64, 2, 3, 4]).unwrap();
        let out = compute_on_list(&SumDiffDescend, p);
        // halves: plus=[4,6], minus=[-2,-2]
        // f(plus) = [10, -2]; f(minus) = [-4, 0]
        assert_eq!(out.as_slice(), &[10, -2, -4, 0]);
    }
}
