//! # jplf — the JPLF framework, ported
//!
//! A Rust port of the JPLF framework the paper builds on (Section III):
//! divide-and-conquer *PowerList functions* defined through the template
//! method pattern and executed by interchangeable strategies.
//!
//! * [`PowerFunction`] — the template: `basic_case`, `combine`,
//!   `create_left` / `create_right` (the descending phase), plus an
//!   optional descending-phase data transform for Eq.-5-style functions;
//! * [`SequentialExecutor`] — reference semantics;
//! * [`ForkJoinExecutor`] — multithreading over the work-stealing pool;
//! * [`MpiExecutor`] — SPMD execution over the in-process
//!   [MPI simulation](mpisim) (scatter → local compute → binomial
//!   combine), standing in for the cluster executors of the paper.
//!
//! The three phases of a PowerList function execution (Section III) map
//! directly: *descending/splitting* = deconstruction + `create_*` +
//! `transform_halves`; *leaf* = `basic_case` (or the sequential template
//! below an executor's threshold); *ascending/combining* = `combine`.
//!
//! ```
//! use jplf::{Decomp, PowerFunction, Executor, SequentialExecutor, ForkJoinExecutor};
//! use powerlist::tabulate;
//!
//! #[derive(Clone)]
//! struct Sum;
//! impl PowerFunction for Sum {
//!     type Elem = i64;
//!     type Out = i64;
//!     fn decomposition(&self) -> Decomp { Decomp::Tie }
//!     fn basic_case(&self, v: &i64) -> i64 { *v }
//!     fn create_left(&self) -> Self { Sum }
//!     fn create_right(&self) -> Self { Sum }
//!     fn combine(&self, l: i64, r: i64) -> i64 { l + r }
//! }
//!
//! let p = tabulate(1024, |i| i as i64).unwrap();
//! let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
//! let par = ForkJoinExecutor::new(4, 64).execute(&Sum, &p.clone().view());
//! assert_eq!(seq, par);
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod function;
pub mod mpisim;
pub mod plist_function;
pub mod search;
pub mod trace;

pub use executor::{
    ExecConfig, ExecError, Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor,
};
pub use function::{
    compute_on_list, compute_sequential, try_compute_sequential, Decomp, PowerFunction,
    TransformedHalves,
};
pub use plist_function::{
    compute_plist_parallel, compute_plist_sequential, NWayReduce, PListFunction,
};
pub use search::{Not, PowerSearchFunction, SearchExecutor};
pub use trace::{compute_traced, compute_with_sink, PhaseTrace};
