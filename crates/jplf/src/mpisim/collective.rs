//! Collective operations over the simulated communicator.
//!
//! Binomial-tree implementations of the collectives the JPLF MPI
//! executors use: broadcast, scatter, gather, reduce, barrier. All are
//! written point-to-point against [`Comm`], so they exercise the same
//! log-depth communication structure a real MPI run has.

use super::comm::Comm;

/// Tag space reserved for collectives (avoids colliding with user tags).
const BCAST_TAG: u64 = u64::MAX - 1;
const SCATTER_TAG: u64 = u64::MAX - 2;
const GATHER_TAG: u64 = u64::MAX - 3;
const REDUCE_TAG: u64 = u64::MAX - 4;
const BARRIER_TAG: u64 = u64::MAX - 5;

/// Broadcasts `value` from `root` to all ranks; every rank returns the
/// value. Binomial tree: log2(size) rounds.
pub fn bcast<M: Clone + Send + 'static>(comm: &Comm, root: usize, value: Option<M>) -> M {
    let size = comm.size();
    // Work in a rotated rank space where the root is 0.
    let vrank = (comm.rank() + size - root) % size;
    let mut have: Option<M> = if vrank == 0 {
        Some(value.expect("root must supply the broadcast value"))
    } else {
        None
    };
    // Round k: ranks < 2^k send to rank + 2^k.
    let mut step = 1usize;
    while step < size {
        if vrank < step {
            let dst = vrank + step;
            if dst < size {
                let real = (dst + root) % size;
                comm.send(
                    real,
                    BCAST_TAG,
                    have.clone().expect("sender holds the value"),
                );
            }
        } else if vrank < 2 * step && have.is_none() {
            let src = (vrank - step + root) % size;
            have = Some(comm.recv::<M>(src, BCAST_TAG));
        }
        step *= 2;
    }
    have.expect("broadcast reaches every rank")
}

/// Scatters `parts` (one per rank, supplied at `root`) so each rank
/// returns its own part. Root sends directly (star pattern — segment
/// sizes are equal so the tree buys little here and the code stays
/// obviously correct).
pub fn scatter<M: Send + 'static>(comm: &Comm, root: usize, parts: Option<Vec<M>>) -> M {
    if comm.rank() == root {
        let parts = parts.expect("root must supply the parts");
        assert_eq!(
            parts.len(),
            comm.size(),
            "scatter needs exactly one part per rank"
        );
        let mut own: Option<M> = None;
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == root {
                own = Some(part);
            } else {
                comm.send(dst, SCATTER_TAG, part);
            }
        }
        own.expect("root keeps its own part")
    } else {
        comm.recv::<M>(root, SCATTER_TAG)
    }
}

/// Gathers one value from every rank at `root`; `root` returns
/// `Some(values in rank order)`, others `None`.
pub fn gather<M: Send + 'static>(comm: &Comm, root: usize, value: M) -> Option<Vec<M>> {
    if comm.rank() == root {
        let mut out: Vec<Option<M>> = (0..comm.size()).map(|_| None).collect();
        out[root] = Some(value);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = Some(comm.recv::<M>(src, GATHER_TAG));
            }
        }
        Some(out.into_iter().map(|o| o.expect("gathered")).collect())
    } else {
        comm.send(root, GATHER_TAG, value);
        None
    }
}

/// Reduces one value per rank with an associative `op` down a binomial
/// tree; rank `root` (= 0 in rotated space) returns `Some(result)`.
///
/// Combination order is rank order, so non-commutative (but associative)
/// operators are safe — same guarantee as `MPI_Reduce`.
pub fn reduce<M, Op>(comm: &Comm, root: usize, value: M, op: Op) -> Option<M>
where
    M: Send + 'static,
    Op: Fn(M, M) -> M,
{
    let size = comm.size();
    let vrank = (comm.rank() + size - root) % size;
    let mut acc = value;
    let mut step = 1usize;
    while step < size {
        if vrank.is_multiple_of(2 * step) {
            let partner = vrank + step;
            if partner < size {
                let real = (partner + root) % size;
                let theirs = comm.recv::<M>(real, REDUCE_TAG);
                // Partner covers higher ranks: ours is the left operand.
                acc = op(acc, theirs);
            }
        } else if vrank % (2 * step) == step {
            let real = (vrank - step + root) % size;
            comm.send(real, REDUCE_TAG, acc);
            return None; // this rank's value has been handed off
        }
        step *= 2;
    }
    if vrank == 0 {
        Some(acc)
    } else {
        None
    }
}

const ALLREDUCE_TAG: u64 = u64::MAX - 6;
const ALLTOALL_TAG: u64 = u64::MAX - 7;

/// Reduce-to-0 followed by broadcast: every rank returns the reduction
/// of all ranks' values (`MPI_Allreduce`). Combination is in rank order,
/// so associative non-commutative operators are safe.
pub fn allreduce<M, Op>(comm: &Comm, value: M, op: Op) -> M
where
    M: Clone + Send + 'static,
    Op: Fn(M, M) -> M,
{
    let size = comm.size();
    let rank = comm.rank();
    let mut acc = value;
    let mut step = 1usize;
    while step < size {
        if rank.is_multiple_of(2 * step) {
            let partner = rank + step;
            if partner < size {
                let theirs = comm.recv::<M>(partner, ALLREDUCE_TAG);
                acc = op(acc, theirs);
            }
        } else if rank % (2 * step) == step {
            comm.send(rank - step, ALLREDUCE_TAG, acc);
            // Hand-off done; wait for the broadcast below.
            return bcast(comm, 0, None);
        }
        step *= 2;
    }
    if rank == 0 {
        bcast(comm, 0, Some(acc))
    } else {
        bcast(comm, 0, None)
    }
}

/// Gather-to-0 followed by broadcast: every rank returns the vector of
/// all ranks' values in rank order (`MPI_Allgather`).
pub fn allgather<M: Clone + Send + 'static>(comm: &Comm, value: M) -> Vec<M> {
    let gathered = gather(comm, 0, value);
    bcast(comm, 0, gathered)
}

/// Personalised all-to-all: rank `r` supplies one message per
/// destination and receives one from every source, in rank order
/// (`MPI_Alltoall`).
pub fn alltoall<M: Send + 'static>(comm: &Comm, outgoing: Vec<M>) -> Vec<M> {
    assert_eq!(
        outgoing.len(),
        comm.size(),
        "alltoall needs one message per destination"
    );
    let rank = comm.rank();
    let mut keep: Option<M> = None;
    for (dst, m) in outgoing.into_iter().enumerate() {
        if dst == rank {
            keep = Some(m);
        } else {
            comm.send(dst, ALLTOALL_TAG, m);
        }
    }
    (0..comm.size())
        .map(|src| {
            if src == rank {
                keep.take().expect("own slot present")
            } else {
                comm.recv::<M>(src, ALLTOALL_TAG)
            }
        })
        .collect()
}

/// Synchronisation barrier: no rank returns before every rank entered.
/// Implemented as gather-to-0 + broadcast.
pub fn barrier(comm: &Comm) {
    let size = comm.size();
    if comm.rank() == 0 {
        for src in 1..size {
            let _: u8 = comm.recv(src, BARRIER_TAG);
        }
        for dst in 1..size {
            comm.send(dst, BARRIER_TAG, 1u8);
        }
    } else {
        comm.send(0, BARRIER_TAG, 1u8);
        let _: u8 = comm.recv(0, BARRIER_TAG);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpisim::comm::run_mpi;

    #[test]
    fn bcast_from_zero() {
        for n in [1, 2, 3, 4, 7, 8] {
            let r = run_mpi(n, |c| {
                let v = if c.rank() == 0 { Some(99i64) } else { None };
                bcast(&c, 0, v)
            });
            assert_eq!(r, vec![99i64; n]);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let r = run_mpi(5, |c| {
            let v = if c.rank() == 3 {
                Some("hi".to_string())
            } else {
                None
            };
            bcast(&c, 3, v)
        });
        assert_eq!(r, vec!["hi".to_string(); 5]);
    }

    #[test]
    fn scatter_distributes_parts() {
        let r = run_mpi(4, |c| {
            let parts = if c.rank() == 0 {
                Some(vec![10, 20, 30, 40])
            } else {
                None
            };
            scatter(&c, 0, parts)
        });
        assert_eq!(r, vec![10, 20, 30, 40]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let r = run_mpi(4, |c| gather(&c, 0, c.rank() * 2));
        assert_eq!(r[0], Some(vec![0, 2, 4, 6]));
        assert!(r[1..].iter().all(|x| x.is_none()));
    }

    #[test]
    fn gather_at_nonzero_root() {
        let r = run_mpi(3, |c| gather(&c, 2, c.rank() as i64));
        assert_eq!(r[2], Some(vec![0, 1, 2]));
        assert!(r[0].is_none() && r[1].is_none());
    }

    #[test]
    fn reduce_sums() {
        for n in [1, 2, 3, 5, 8] {
            let r = run_mpi(n, |c| reduce(&c, 0, c.rank() as i64 + 1, |a, b| a + b));
            let expected: i64 = (1..=n as i64).sum();
            assert_eq!(r[0], Some(expected), "n={n}");
        }
    }

    #[test]
    fn reduce_preserves_rank_order_for_noncommutative_op() {
        // String concatenation is associative but not commutative.
        let r = run_mpi(4, |c| {
            reduce(&c, 0, c.rank().to_string(), |a, b| format!("{a}{b}"))
        });
        assert_eq!(r[0], Some("0123".to_string()));
    }

    #[test]
    fn barrier_completes() {
        let r = run_mpi(6, |c| {
            barrier(&c);
            barrier(&c);
            c.rank()
        });
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn allreduce_every_rank_gets_result() {
        for n in [1, 2, 3, 5, 8] {
            let r = run_mpi(n, |c| allreduce(&c, c.rank() as i64 + 1, |a, b| a + b));
            let expected: i64 = (1..=n as i64).sum();
            assert_eq!(r, vec![expected; n], "n={n}");
        }
    }

    #[test]
    fn allreduce_rank_order_for_noncommutative() {
        let r = run_mpi(4, |c| {
            allreduce(&c, c.rank().to_string(), |a, b| format!("{a}{b}"))
        });
        assert_eq!(r, vec!["0123".to_string(); 4]);
    }

    #[test]
    fn allgather_every_rank_gets_vector() {
        let r = run_mpi(5, |c| allgather(&c, c.rank() * 10));
        for row in &r {
            assert_eq!(row, &vec![0, 10, 20, 30, 40]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        // Rank r sends (r, d) to each d; receives (s, r) from each s.
        let r = run_mpi(4, |c| {
            let rank = c.rank();
            let out: Vec<(usize, usize)> = (0..c.size()).map(|d| (rank, d)).collect();
            alltoall(&c, out)
        });
        for (rank, row) in r.iter().enumerate() {
            let expected: Vec<(usize, usize)> = (0..4).map(|s| (s, rank)).collect();
            assert_eq!(row, &expected, "rank {rank}");
        }
    }

    #[test]
    fn scatter_then_reduce_roundtrip() {
        let r = run_mpi(4, |c| {
            let parts = if c.rank() == 0 {
                Some(vec![vec![1i64, 2], vec![3, 4], vec![5, 6], vec![7, 8]])
            } else {
                None
            };
            let mine = scatter(&c, 0, parts);
            let local: i64 = mine.iter().sum();
            reduce(&c, 0, local, |a, b| a + b)
        });
        assert_eq!(r[0], Some(36));
    }
}
