//! Simulated MPI substrate: SPMD ranks as threads, typed point-to-point
//! messages, and binomial-tree collectives.
//!
//! This is the repository's substitution for the Java MPI binding the
//! JPLF cluster executors use (see DESIGN.md): same programming model and
//! communication structure, in-process transport.

pub mod collective;
pub mod comm;

pub use collective::{allgather, allreduce, alltoall, barrier, bcast, gather, reduce, scatter};
pub use comm::{run_mpi, Comm};
