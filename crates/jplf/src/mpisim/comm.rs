//! In-process MPI-like communicator.
//!
//! JPLF's cluster executors run over a Java MPI binding; this repository
//! has no cluster, so the substitution (documented in DESIGN.md) is an
//! in-process message-passing substrate with the same programming model:
//! SPMD ranks (threads), point-to-point typed `send`/`recv` with tags,
//! and collectives built on top. The code paths exercised — segment
//! scatter, local leaf computation, tree combine — are the ones the
//! paper's MPI executors use.
//!
//! Messages are type-erased (`Box<dyn Any>`); `recv::<M>` downcasts and
//! panics on a type or tag mismatch, which in an SPMD program indicates a
//! protocol bug, not a runtime condition to handle.

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::sync::Arc;

struct Message {
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// One rank's endpoint of the simulated communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    /// senders[d] delivers to rank `d`'s inbox from this rank.
    senders: Vec<Sender<Message>>,
    /// inboxes[s] receives messages sent by rank `s` to this rank.
    inboxes: Vec<Receiver<Message>>,
}

impl Comm {
    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `msg` to rank `dst` with a protocol `tag`.
    ///
    /// # Panics
    ///
    /// Panics when `dst` is out of range or the destination rank has
    /// already terminated.
    pub fn send<M: Send + 'static>(&self, dst: usize, tag: u64, msg: M) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        // Every collective decomposes into these point-to-point sends,
        // so this one site gives the observability layer the full
        // per-rank traffic matrix.
        plobs::emit(plobs::Event::MpiSend {
            from: self.rank as u32,
            to: dst as u32,
            bytes: std::mem::size_of::<M>() as u64,
        });
        self.senders[dst]
            .send(Message {
                tag,
                payload: Box::new(msg),
            })
            .expect("destination rank terminated before receiving");
    }

    /// Receives the next message from rank `src`, which must carry `tag`
    /// and payload type `M`. Blocks until it arrives.
    ///
    /// Delivery is FIFO per (src, dst) pair; a tag mismatch means the
    /// SPMD protocol desynchronised and is treated as a bug (panic).
    pub fn recv<M: Send + 'static>(&self, src: usize, tag: u64) -> M {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let m = self.inboxes[src]
            .recv()
            .expect("source rank terminated without sending");
        assert_eq!(
            m.tag, tag,
            "rank {}: expected tag {tag} from {src}, got {}",
            self.rank, m.tag
        );
        *m.payload
            .downcast::<M>()
            .expect("message payload type mismatch")
    }
}

/// Runs an SPMD program on `size` simulated ranks (one thread each) and
/// returns the per-rank results in rank order.
///
/// Panics in any rank are propagated after all ranks have been joined.
pub fn run_mpi<R, F>(size: usize, program: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    assert!(size >= 1, "need at least one rank");
    // Channel matrix: channel[s][d] carries s → d.
    let mut senders_by_src: Vec<Vec<Sender<Message>>> = Vec::with_capacity(size);
    let mut inboxes_by_dst: Vec<Vec<Option<Receiver<Message>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for s in 0..size {
        let mut row = Vec::with_capacity(size);
        for inbox_row in inboxes_by_dst.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(tx);
            inbox_row[s] = Some(rx);
        }
        senders_by_src.push(row);
    }

    let program = Arc::new(program);
    let mut handles = Vec::with_capacity(size);
    for (rank, inbox_row) in inboxes_by_dst.into_iter().enumerate() {
        // Rank `rank` sends along its own row of the matrix: entry `d`
        // is the channel rank → d.
        let senders = senders_by_src[rank].to_vec();
        let inboxes = inbox_row
            .into_iter()
            .map(|o| o.expect("inbox built for every pair"))
            .collect::<Vec<_>>();
        let comm = Comm {
            rank,
            size,
            senders,
            inboxes,
        };
        let prog = Arc::clone(&program);
        handles.push(
            std::thread::Builder::new()
                .name(format!("mpisim-rank-{rank}"))
                .spawn(move || prog(comm))
                .expect("failed to spawn rank thread"),
        );
    }
    // Drop our copies of the senders so rank termination is observable.
    drop(senders_by_src);

    let mut results = Vec::with_capacity(size);
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for h in handles {
        match h.join() {
            Ok(r) => results.push(r),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let r = run_mpi(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(r, vec![42]);
    }

    #[test]
    fn ping_pong() {
        let r = run_mpi(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 123i64);
                c.recv::<i64>(1, 8)
            } else {
                let x = c.recv::<i64>(0, 7);
                c.send(0, 8, x * 2);
                x
            }
        });
        assert_eq!(r, vec![246, 123]);
    }

    #[test]
    fn ring_pass() {
        let n = 5;
        let r = run_mpi(n, move |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, c.rank());
            c.recv::<usize>(prev, 1)
        });
        assert_eq!(r, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn self_send() {
        let r = run_mpi(1, |c| {
            c.send(0, 3, String::from("loop"));
            c.recv::<String>(0, 3)
        });
        assert_eq!(r, vec!["loop".to_string()]);
    }

    #[test]
    fn typed_payloads() {
        let r = run_mpi(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.5f64, 2.5]);
                0.0
            } else {
                c.recv::<Vec<f64>>(0, 1).iter().sum()
            }
        });
        assert_eq!(r[1], 4.0);
    }

    #[test]
    #[should_panic]
    fn tag_mismatch_is_a_bug() {
        run_mpi(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, 5i32);
            } else {
                let _ = c.recv::<i32>(0, 2);
            }
        });
    }
}
