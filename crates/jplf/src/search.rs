//! Short-circuiting search over PowerLists: the quantifier terminals
//! (`any_match` / `all_match` / `none_match` / `find_first` /
//! `find_any`) for the executor framework.
//!
//! A [`PowerSearchFunction`] plays the role [`PowerFunction`] plays for
//! reductions: it carries the decomposition choice (tie or zip) and the
//! predicate; a [`SearchExecutor`] runs it. The execution strategy
//! reuses the machinery of jstreams' search driver (DESIGN.md §12):
//!
//! * a run-private [`jstreams::SearchSession`] — a decisive hit trips
//!   its token with `CancelReason::Found` *after* the hit is recorded
//!   (record-before-cancel), and sibling subtrees observe the trip at
//!   their next node-entry checkpoint, counting one
//!   [`plobs::Event::EarlyExit`] per pruned subtree root;
//! * for `find_first`, a shared [`jstreams::FirstHit`] cell keyed by
//!   **physical index**. A `PowerView` addresses element `j` at physical
//!   index `start + j·incr`, and physical order *is* the original list's
//!   encounter order, so the minimal physical hit is the logical
//!   `find_first` answer under both decompositions — including zip,
//!   where the two halves interleave but every index in a view is still
//!   ≥ `view.start()`, which keeps the `bound ≤ start` pruning test
//!   sound.
//!
//! [`PowerFunction`]: crate::function::PowerFunction

use crate::executor::{ExecConfig, ExecError, ForkJoinExecutor, SequentialExecutor};
use crate::function::Decomp;
use forkjoin::{demand_split, join, CancelReason, SplitPolicy};
use jstreams::{FirstHit, Interrupt, SearchSession};
use parking_lot::Mutex;
use plobs::{Event, FallbackReason, LeafRoute};
use powerlist::PowerView;
use std::sync::Arc;
use std::time::Instant;

/// A searchable predicate over PowerList elements, with the
/// decomposition choice that directs how the search tree splits (the
/// result is decomposition-independent; the traversal order is not).
pub trait PowerSearchFunction: Send + Sync + 'static {
    /// Element type of the searched PowerList.
    type Elem: Clone + Send + Sync + 'static;

    /// How the search deconstructs its input: `tie` (halves) or `zip`
    /// (interleave). Defaults to tie — contiguous halves give
    /// `find_first` the best pruning locality.
    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    /// The predicate.
    fn matches(&self, value: &Self::Elem) -> bool;
}

/// Logical negation of a search function: matches exactly when the
/// wrapped function does not. `all_match(f)` runs as
/// `!any_match(Not(f))`, so one counterexample short-circuits.
#[derive(Clone, Copy, Debug, Default)]
pub struct Not<F>(pub F);

impl<F: PowerSearchFunction> PowerSearchFunction for Not<F> {
    type Elem = F::Elem;

    fn decomposition(&self) -> Decomp {
        self.0.decomposition()
    }

    fn matches(&self, value: &Self::Elem) -> bool {
        !self.0.matches(value)
    }
}

/// Where hits land, and whether they are decisive.
enum PowerSink<T> {
    /// First-hit-wins (`find_any` and the quantifiers): the first
    /// recorded element cancels the whole run.
    Any(Mutex<Option<T>>),
    /// Encounter-order (`find_first`): hits only tighten the shared
    /// physical-index bound; pruning does the short-circuiting.
    First(FirstHit<T>),
}

impl<T: Clone> PowerSink<T> {
    /// Records a hit at physical index `idx`; returns `true` when the
    /// hit is decisive and should trip `Found`.
    fn hit(&self, idx: usize, value: &T) -> bool {
        match self {
            PowerSink::Any(slot) => {
                let mut slot = slot.lock();
                if slot.is_none() {
                    *slot = Some(value.clone());
                }
                true
            }
            PowerSink::First(cell) => {
                cell.offer(idx, value.clone());
                false
            }
        }
    }

    /// The pruning bound (`usize::MAX` disables pruning).
    fn bound(&self) -> usize {
        match self {
            PowerSink::Any(_) => usize::MAX,
            PowerSink::First(cell) => cell.bound(),
        }
    }

    /// The recorded answer, once the tree has quiesced.
    fn take(&self) -> Option<T> {
        match self {
            PowerSink::Any(slot) => slot.lock().take(),
            PowerSink::First(cell) => cell.take().map(|(_, v)| v),
        }
    }
}

/// Scans one view left to right, recording the first match. Returns the
/// number of elements scanned (for the leaf event).
fn scan_leaf<F>(f: &F, input: &PowerView<F::Elem>, sink: &PowerSink<F::Elem>) -> (u64, bool)
where
    F: PowerSearchFunction,
{
    let (start, incr) = (input.start(), input.incr());
    let mut scanned: u64 = 0;
    for (j, v) in input.iter().enumerate() {
        scanned += 1;
        if f.matches(v) {
            // Within a view, j (hence the physical index) is increasing,
            // so the first match is the view's earliest — no sink needs
            // the rest of the leaf.
            return (scanned, sink.hit(start + j * incr, v));
        }
    }
    (scanned, false)
}

/// One leaf of the search recursion: predicate under panic containment,
/// a decisive hit trips `Found` strictly after the sink recorded it.
fn search_leaf<F>(
    f: &F,
    input: &PowerView<F::Elem>,
    sink: &PowerSink<F::Elem>,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    F: PowerSearchFunction,
{
    let observe = plobs::enabled();
    let t0 = if observe { Some(Instant::now()) } else { None };
    let token = session.token().clone();
    let scanned = session.run(|| {
        let (scanned, decisive) = scan_leaf(f, input, sink);
        if decisive {
            token.cancel(CancelReason::Found);
        }
        scanned
    })?;
    if let Some(t0) = t0 {
        plobs::emit(Event::Leaf {
            route: LeafRoute::Template,
            items: scanned,
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    Ok(())
}

/// The guarded whole-input scan: the sequential strategy, and the
/// degradation target when the fork-join route's pool is unavailable.
fn try_search_sequential<F>(
    f: &F,
    input: &PowerView<F::Elem>,
    sink: &PowerSink<F::Elem>,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    F: PowerSearchFunction,
{
    if session.check()? {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    search_leaf(f, input, sink, session)
}

/// The parallel search recursion — [`ForkJoinExecutor`]'s
/// `try_par_compute` skeleton with search checkpoints in place of the
/// combine phase.
#[allow(clippy::too_many_arguments)] // mirrors try_par_compute's frame
fn try_search_par<F>(
    f: Arc<F>,
    input: PowerView<F::Elem>,
    sink: Arc<PowerSink<F::Elem>>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    F: PowerSearchFunction,
{
    // Node-entry checkpoint: a Found trip prunes the subtree as success.
    if session.check()? {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    // Encounter-order pruning: every physical index in this view is
    // ≥ start (incr ≥ 1), under zip interleaving too.
    if sink.bound() <= input.start() {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    let observe = plobs::enabled();
    let mut steals_next = steals_seen;
    let stop = input.is_singleton()
        || match policy {
            SplitPolicy::Fixed(leaf) => input.len() <= leaf,
            SplitPolicy::Adaptive(a) => {
                if depth >= cap || input.len() <= a.min_leaf {
                    true
                } else {
                    let (wants_split, now) = demand_split(a.surplus, steals_seen);
                    steals_next = now;
                    !wants_split
                }
            }
        };
    if stop {
        return search_leaf(&*f, &input, &*sink, session);
    }
    let t0 = if observe { Some(Instant::now()) } else { None };
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    if let Some(t0) = t0 {
        plobs::emit(Event::Split {
            depth,
            adaptive: policy.is_adaptive(),
        });
        plobs::emit(Event::DescendNs {
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    let f_r = Arc::clone(&f);
    let sink_r = Arc::clone(&sink);
    let s_left = session.clone();
    let s_right = session.clone();
    let (lo, ro) = join(
        move || try_search_par(f, l, sink, policy, cap, depth + 1, steals_next, &s_left),
        move || {
            try_search_par(
                f_r,
                r,
                sink_r,
                policy,
                cap,
                depth + 1,
                steals_next,
                &s_right,
            )
        },
    );
    match (lo, ro) {
        (Ok(()), Ok(())) => Ok(()),
        (Err(a), Err(b)) => Err(a.merge(b)),
        (Err(a), Ok(())) | (Ok(()), Err(a)) => Err(a),
    }
}

/// Resumes a contained panic, panics on other failures — the infallible
/// shims' finishing move (mirrors the streams front-end).
fn finish<R>(result: Result<R, ExecError>, op: &str) -> R {
    match result {
        Ok(v) => v,
        Err(ExecError::Panicked(payload)) => std::panic::resume_unwind(payload),
        Err(e) => {
            panic!("power search {op} failed: {e}; use the try_ variant for fallible execution")
        }
    }
}

/// An execution strategy for [`PowerSearchFunction`]s: the quantifier
/// and find terminals over a `PowerView`, each in an infallible and a
/// fallible (`try_`) form. Only the two find primitives are
/// strategy-specific; the quantifiers are provided on top of them.
pub trait SearchExecutor {
    /// Fallible `find_first`: the logically-first matching element of
    /// the view, deterministic under every strategy and schedule.
    fn try_find_first<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync;

    /// Fallible `find_any`: some matching element, first-hit-wins —
    /// schedule-dependent under parallel execution, with the strongest
    /// short-circuit (the first hit anywhere cancels all remaining
    /// work).
    fn try_find_any<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync;

    /// Fallible `any_match`: `Ok(true)` iff some element matches.
    fn try_any_match<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<bool, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        self.try_find_any(f, input, cfg).map(|hit| hit.is_some())
    }

    /// Fallible `all_match`: `Ok(true)` iff every element matches
    /// (vacuously true on a singleton-free... never — PowerLists are
    /// non-empty, so this is `true` only when no counterexample exists).
    fn try_all_match<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<bool, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        self.try_any_match(&Not(f.clone()), input, cfg)
            .map(|any_fails| !any_fails)
    }

    /// Fallible `none_match`: `Ok(true)` iff no element matches.
    fn try_none_match<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<bool, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        self.try_any_match(f, input, cfg).map(|any| !any)
    }

    /// Infallible `find_first` (panics are resumed, like
    /// [`Executor::execute`](crate::executor::Executor::execute)).
    fn find_first<F>(&self, f: &F, input: &PowerView<F::Elem>) -> Option<F::Elem>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        finish(
            self.try_find_first(f, input, &ExecConfig::par()),
            "find_first",
        )
    }

    /// Infallible `find_any`.
    fn find_any<F>(&self, f: &F, input: &PowerView<F::Elem>) -> Option<F::Elem>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        finish(self.try_find_any(f, input, &ExecConfig::par()), "find_any")
    }

    /// Infallible `any_match`.
    fn any_match<F>(&self, f: &F, input: &PowerView<F::Elem>) -> bool
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        finish(
            self.try_any_match(f, input, &ExecConfig::par()),
            "any_match",
        )
    }

    /// Infallible `all_match`.
    fn all_match<F>(&self, f: &F, input: &PowerView<F::Elem>) -> bool
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        finish(
            self.try_all_match(f, input, &ExecConfig::par()),
            "all_match",
        )
    }

    /// Infallible `none_match`.
    fn none_match<F>(&self, f: &F, input: &PowerView<F::Elem>) -> bool
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        finish(
            self.try_none_match(f, input, &ExecConfig::par()),
            "none_match",
        )
    }
}

impl SequentialExecutor {
    fn try_search<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        sink: &PowerSink<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<(), ExecError>
    where
        F: PowerSearchFunction,
    {
        let session = SearchSession::new(cfg);
        try_search_sequential(f, input, sink, &session).map_err(|i| session.error_of(i))
    }
}

impl SearchExecutor for SequentialExecutor {
    fn try_find_first<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        let sink = PowerSink::First(FirstHit::new());
        self.try_search(f, input, &sink, cfg)?;
        Ok(sink.take())
    }

    fn try_find_any<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        // A sequential scan's first hit is also the logically first.
        let sink = PowerSink::Any(Mutex::new(None));
        self.try_search(f, input, &sink, cfg)?;
        Ok(sink.take())
    }
}

impl ForkJoinExecutor {
    /// Shared driver for both find terminals: graceful degradation and
    /// pool submission exactly as
    /// [`Executor::try_execute`](crate::executor::Executor::try_execute),
    /// with the search recursion in place of the reduction.
    fn try_search<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        sink: Arc<PowerSink<F::Elem>>,
        cfg: &ExecConfig,
    ) -> Result<(), ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        let session = SearchSession::new(cfg);
        let fallback = if self.pool().is_shut_down() {
            Some(FallbackReason::SubmitFailed)
        } else if cfg
            .fallback_threshold()
            .is_some_and(|t| self.pool().queued_tasks() > t)
        {
            Some(FallbackReason::PoolSaturated)
        } else {
            None
        };
        let result = match fallback {
            Some(reason) => {
                plobs::emit(Event::Fallback { reason });
                try_search_sequential(f, input, &sink, &session)
            }
            None => {
                let policy = self.resolve_policy(std::any::type_name::<F>(), input.len());
                let f = Arc::new(f.clone());
                let input = input.clone();
                let s2 = session.clone();
                match self.pool().try_install(move || {
                    let probe = forkjoin::current_probe();
                    let threads = probe
                        .as_ref()
                        .map_or_else(|| forkjoin::global_pool().threads(), |p| p.threads());
                    let cap = policy.depth_cap(threads);
                    let steals = probe.map_or(0, |p| p.steal_pressure());
                    try_search_par(f, input, sink, policy, cap, 0, steals, &s2)
                }) {
                    Ok(r) => r,
                    Err(g) => {
                        plobs::emit(Event::Fallback {
                            reason: FallbackReason::SubmitFailed,
                        });
                        g()
                    }
                }
            }
        };
        result.map_err(|i| session.error_of(i))
    }
}

impl SearchExecutor for ForkJoinExecutor {
    fn try_find_first<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        let sink = Arc::new(PowerSink::First(FirstHit::new()));
        self.try_search(f, input, Arc::clone(&sink), cfg)?;
        Ok(sink.take())
    }

    fn try_find_any<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<Option<F::Elem>, ExecError>
    where
        F: PowerSearchFunction + Clone + Sync,
    {
        let sink = Arc::new(PowerSink::Any(Mutex::new(None)));
        self.try_search(f, input, Arc::clone(&sink), cfg)?;
        Ok(sink.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkjoin::ForkJoinPool;
    use powerlist::tabulate;

    /// Matches one specific value.
    #[derive(Clone)]
    struct Equals(i64, Decomp);

    impl PowerSearchFunction for Equals {
        type Elem = i64;

        fn decomposition(&self) -> Decomp {
            self.1
        }

        fn matches(&self, value: &i64) -> bool {
            *value == self.0
        }
    }

    fn fj() -> ForkJoinExecutor {
        ForkJoinExecutor::new(3, 16)
    }

    #[test]
    fn quantifiers_agree_with_sequential_under_both_decompositions() {
        let p = tabulate(1 << 10, |i| (i as i64 * 37) % 1009).unwrap();
        let seq = SequentialExecutor::new();
        let par = fj();
        for decomp in [Decomp::Tie, Decomp::Zip] {
            for needle in [0i64, 500, 1008, -7] {
                let f = Equals(needle, decomp);
                let v = p.clone().view();
                assert_eq!(seq.any_match(&f, &v), par.any_match(&f, &v));
                assert_eq!(seq.none_match(&f, &v), par.none_match(&f, &v));
            }
        }
        let all_pos = Equals(0, Decomp::Tie);
        let v = p.view();
        assert_eq!(
            seq.all_match(&Not(all_pos.clone()), &v),
            par.all_match(&Not(all_pos), &v)
        );
    }

    #[test]
    fn find_first_returns_the_minimal_physical_index_hit() {
        // v[i] = i % 19: the first multiple-free... matches of `== 7`
        // occur at i = 7, 26, 45, …; find_first must return the value
        // (7) from physical index 7 under both decompositions, even
        // though zip's left half sees index 26 before index 7's half
        // finishes.
        let p = tabulate(1 << 9, |i| (i % 19) as i64).unwrap();
        for decomp in [Decomp::Tie, Decomp::Zip] {
            let f = Equals(7, decomp);
            assert_eq!(fj().find_first(&f, &p.clone().view()), Some(7));
            assert_eq!(
                SequentialExecutor::new().find_first(&f, &p.clone().view()),
                Some(7)
            );
        }
        assert_eq!(fj().find_first(&Equals(100, Decomp::Tie), &p.view()), None);
    }

    #[test]
    fn find_any_returns_some_match_and_records_prunes() {
        let p = tabulate(1 << 12, |i| i as i64).unwrap();
        let exec = ForkJoinExecutor::new(3, 8);
        // Whether subtrees are still pending when Found trips is
        // schedule-dependent (one hardware thread can drain in pure DFS
        // order), so the pruning assertion accepts any of a few runs.
        let mut pruned = false;
        for _ in 0..20 {
            let (hit, report) = plobs::recorded(|| {
                exec.try_find_any(
                    &Equals((1 << 12) - 3, Decomp::Tie),
                    &p.clone().view(),
                    &ExecConfig::par(),
                )
            });
            assert_eq!(hit.unwrap(), Some((1 << 12) - 3));
            assert!(report.cancels_found >= 1);
            if report.early_exits >= 1 {
                pruned = true;
                break;
            }
        }
        assert!(pruned, "no schedule in 20 runs pruned on a late needle");
    }

    #[test]
    fn panicking_predicate_is_contained() {
        #[derive(Clone)]
        struct Poison;
        impl PowerSearchFunction for Poison {
            type Elem = i64;
            fn matches(&self, value: &i64) -> bool {
                assert!(*value != 97, "poisoned value {value}");
                false
            }
        }
        let p = tabulate(256, |i| i as i64).unwrap();
        let err = fj()
            .try_any_match(&Poison, &p.clone().view(), &ExecConfig::par())
            .expect_err("panic must surface as an error");
        assert_eq!(err.panic_message(), Some("poisoned value 97"));
        // The executor's pool survives for a follow-up search.
        assert!(fj().any_match(&Equals(9, Decomp::Tie), &p.view()));
    }

    #[test]
    fn shut_down_pool_degrades_to_sequential_scan() {
        let pool = Arc::new(ForkJoinPool::new(1));
        let exec = ForkJoinExecutor::with_pool(Arc::clone(&pool), 16);
        pool.shutdown();
        let p = tabulate(64, |i| i as i64).unwrap();
        let (out, report) = plobs::recorded(|| {
            exec.try_any_match(&Equals(9, Decomp::Tie), &p.view(), &ExecConfig::par())
        });
        assert_eq!(out.ok(), Some(true));
        assert_eq!(report.fallbacks_submit, 1);
        assert_eq!(report.splits, 0, "fallback route must not fork");
    }
}
