//! Multi-way divide-and-conquer: JPLF's PList functions.
//!
//! "The JPLF also includes PList functions, that express multi-way
//! divide-and-conquer computations \[21\]" (paper, Section III). A
//! [`PListFunction`] generalises [`PowerFunction`](crate::PowerFunction)
//! to recursions that split into *n* sub-problems per level, where *n*
//! may differ from level to level (chosen by [`PListFunction::arity`]
//! from the current length).

use crate::function::Decomp;
use forkjoin::{join, ForkJoinPool};
use powerlist::PList;
use std::sync::Arc;

/// A shareable associative binary operator over `T`.
pub type BinOp<T> = Arc<dyn Fn(&T, &T) -> T + Send + Sync>;

/// A multi-way divide-and-conquer function over [`PList`]s.
pub trait PListFunction: Send + Sized + 'static {
    /// Element type of the input.
    type Elem: Clone + Send + Sync + 'static;
    /// Result type.
    type Out: Send + 'static;

    /// The arity to split a list of length `len` with at this level.
    /// Returning `< 2` — or a non-divisor of `len` — stops the
    /// decomposition and sends the list to [`PListFunction::leaf_case`].
    fn arity(&self, len: usize) -> usize;

    /// Which *n*-way operator deconstructs the input.
    fn decomposition(&self) -> Decomp;

    /// Value on singletons.
    fn basic_case(&self, value: &Self::Elem) -> Self::Out;

    /// Descending phase: the function instance for child `index` of an
    /// `arity`-way split.
    fn create_child(&self, index: usize, arity: usize) -> Self;

    /// Ascending phase: merges the children's results in order.
    fn combine_n(&self, parts: Vec<Self::Out>) -> Self::Out;

    /// Value on an undecomposable non-singleton list. The default
    /// treats the elements as an all-the-way split — `combine_n` over
    /// the per-element basic cases — which is correct whenever
    /// `combine_n` is associative across regroupings (true for the
    /// reduce/map-shaped functions PLists are used for). Override for
    /// functions with stricter structure.
    fn leaf_case(&self, list: &PList<Self::Elem>) -> Self::Out {
        if list.is_singleton() {
            return self.basic_case(&list[0]);
        }
        let outs = list.iter().map(|e| self.basic_case(e)).collect();
        self.combine_n(outs)
    }
}

/// Sequential template-method recursion for PList functions — the
/// reference semantics.
pub fn compute_plist_sequential<F: PListFunction>(f: &F, input: &PList<F::Elem>) -> F::Out {
    if input.is_singleton() {
        return f.basic_case(&input[0]);
    }
    let k = f.arity(input.len());
    if k < 2 || input.len() % k != 0 {
        return f.leaf_case(input);
    }
    let parts = match f.decomposition() {
        Decomp::Tie => input.clone().untie_n(k),
        Decomp::Zip => input.clone().unzip_n(k),
    }
    .expect("divisibility checked above");
    let outs = parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| compute_plist_sequential(&f.create_child(i, k), &part))
        .collect();
    f.combine_n(outs)
}

/// Fork-join parallel execution of a PList function: each level's `k`
/// sub-problems fan out on the pool (binary join tree over the part
/// list), with sequential computation below `leaf_size`.
pub fn compute_plist_parallel<F>(
    pool: &ForkJoinPool,
    f: &F,
    input: &PList<F::Elem>,
    leaf_size: usize,
) -> F::Out
where
    F: PListFunction + Clone + Sync,
{
    let f = f.clone();
    let input = input.clone();
    let leaf = leaf_size.max(1);
    pool.install(move || par_rec(f, input, leaf))
}

fn par_rec<F>(f: F, input: PList<F::Elem>, leaf: usize) -> F::Out
where
    F: PListFunction + Clone + Sync,
{
    if input.len() <= leaf || input.is_singleton() {
        return compute_plist_sequential(&f, &input);
    }
    let k = f.arity(input.len());
    if k < 2 || input.len() % k != 0 {
        return f.leaf_case(&input);
    }
    let parts = match f.decomposition() {
        Decomp::Tie => input.untie_n(k),
        Decomp::Zip => input.unzip_n(k),
    }
    .expect("divisibility checked above");
    let tasks: Vec<(F, PList<F::Elem>)> = parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| (f.create_child(i, k), part))
        .collect();
    let outs = par_map(tasks, leaf);
    f.combine_n(outs)
}

fn par_map<F>(mut tasks: Vec<(F, PList<F::Elem>)>, leaf: usize) -> Vec<F::Out>
where
    F: PListFunction + Clone + Sync,
{
    match tasks.len() {
        0 => Vec::new(),
        1 => {
            let (f, p) = tasks.pop().expect("len 1");
            vec![par_rec(f, p, leaf)]
        }
        _ => {
            let right = tasks.split_off(tasks.len() / 2);
            let (mut l, mut r) = join(move || par_map(tasks, leaf), move || par_map(right, leaf));
            l.append(&mut r);
            l
        }
    }
}

/// Multi-way reduce: the canonical PList function (associative operator
/// over `arity`-way tie splits).
pub struct NWayReduce<T> {
    arity: usize,
    op: BinOp<T>,
}

impl<T> Clone for NWayReduce<T> {
    fn clone(&self) -> Self {
        NWayReduce {
            arity: self.arity,
            op: Arc::clone(&self.op),
        }
    }
}

impl<T> NWayReduce<T> {
    /// Reduce with the given associative operator, splitting `arity`
    /// ways per level.
    pub fn new(arity: usize, op: impl Fn(&T, &T) -> T + Send + Sync + 'static) -> Self {
        NWayReduce {
            arity: arity.max(2),
            op: Arc::new(op),
        }
    }
}

impl<T> PListFunction for NWayReduce<T>
where
    T: Clone + Send + Sync + 'static,
{
    type Elem = T;
    type Out = T;

    fn arity(&self, len: usize) -> usize {
        if len.is_multiple_of(self.arity) {
            self.arity
        } else if len.is_multiple_of(2) {
            2 // degrade gracefully for lengths the arity does not divide
        } else {
            1
        }
    }

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, v: &T) -> T {
        v.clone()
    }

    fn create_child(&self, _index: usize, _arity: usize) -> Self {
        self.clone()
    }

    fn combine_n(&self, parts: Vec<T>) -> T {
        let mut it = parts.into_iter();
        let first = it.next().expect("combine_n of at least one part");
        it.fold(first, |a, b| (self.op)(&a, &b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plist(n: usize) -> PList<i64> {
        PList::from_vec((1..=n as i64).collect()).unwrap()
    }

    #[test]
    fn three_way_reduce_sums() {
        let f = NWayReduce::new(3, |a: &i64, b: &i64| a + b);
        let p = plist(27);
        assert_eq!(compute_plist_sequential(&f, &p), 27 * 28 / 2);
    }

    #[test]
    fn arity_degrades_for_awkward_lengths() {
        let f = NWayReduce::new(3, |a: &i64, b: &i64| a + b);
        // 20 = 2·2·5: levels fall back to 2-way, then a leaf of 5.
        let p = plist(20);
        assert_eq!(compute_plist_sequential(&f, &p), 210);
        // A prime length is a single leaf.
        let p = plist(13);
        assert_eq!(compute_plist_sequential(&f, &p), 91);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ForkJoinPool::new(3);
        let f = NWayReduce::new(4, |a: &i64, b: &i64| a + b);
        for n in [1usize, 4, 16, 64, 256, 20, 100] {
            let p = plist(n);
            let seq = compute_plist_sequential(&f, &p);
            let par = compute_plist_parallel(&pool, &f, &p, 8);
            assert_eq!(seq, par, "n={n}");
        }
    }

    #[test]
    fn noncommutative_order_preserved() {
        let f = NWayReduce::new(3, |a: &String, b: &String| format!("{a}{b}"));
        let p = PList::from_vec((0..9).map(|i| i.to_string()).collect()).unwrap();
        assert_eq!(compute_plist_sequential(&f, &p), "012345678");
        let pool = ForkJoinPool::new(2);
        assert_eq!(compute_plist_parallel(&pool, &f, &p, 1), "012345678");
    }

    #[test]
    fn zip_decomposition_commutative_ok() {
        // With a commutative op, zip regrouping yields the same sum.
        #[derive(Clone)]
        struct ZipSum;
        impl PListFunction for ZipSum {
            type Elem = i64;
            type Out = i64;
            fn arity(&self, len: usize) -> usize {
                if len.is_multiple_of(3) {
                    3
                } else {
                    1
                }
            }
            fn decomposition(&self) -> Decomp {
                Decomp::Zip
            }
            fn basic_case(&self, v: &i64) -> i64 {
                *v
            }
            fn create_child(&self, _: usize, _: usize) -> Self {
                ZipSum
            }
            fn combine_n(&self, parts: Vec<i64>) -> i64 {
                parts.into_iter().sum()
            }
        }
        let p = plist(27);
        assert_eq!(compute_plist_sequential(&ZipSum, &p), 27 * 28 / 2);
    }

    #[test]
    fn singleton_plist() {
        let f = NWayReduce::new(3, |a: &i64, b: &i64| a + b);
        assert_eq!(compute_plist_sequential(&f, &plist(1)), 1);
    }
}
