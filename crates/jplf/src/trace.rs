//! Phase instrumentation: measuring the three phases of a PowerList
//! function execution.
//!
//! Section III distinguishes the *descending/splitting*, *leaf*, and
//! *ascending/combining* phases; the paper's analysis (Section V) hinges
//! on where a function does its work — `map`/`reduce`/`fft` do nothing
//! on the way down, the polynomial evaluation squares `x` per level,
//! Eq.-5 functions transform whole sublists.
//!
//! The instrumented recursion is [`compute_with_sink`]: it publishes one
//! structured [`plobs::Event`] per split, leaf and combine to any
//! [`EventSink`] — the same event vocabulary the streams collect driver
//! and the fork-join pool use, so JPLF executions aggregate into the
//! same [`plobs::RunReport`]. [`compute_traced`] (the historical entry
//! point) feeds a recorder that is **local to the call** — it is never
//! installed globally, so concurrent traced runs cannot cross-talk —
//! and condenses the report into the small [`PhaseTrace`] summary.

use crate::function::{Decomp, PowerFunction};
use plobs::{Event, EventSink, LeafRoute, RunRecorder, RunReport};
use powerlist::PowerView;
use std::time::Instant;

/// Counts and cumulative times of the three execution phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTrace {
    /// Deconstruction steps performed (interior nodes).
    pub splits: u64,
    /// Basic cases evaluated (singletons reached).
    pub leaves: u64,
    /// Combine steps performed (interior nodes).
    pub combines: u64,
    /// Nanoseconds in the descending phase (deconstruction +
    /// `create_*` + `transform_halves`).
    pub descend_ns: u64,
    /// Nanoseconds in the leaf phase (`basic_case`).
    pub leaf_ns: u64,
    /// Nanoseconds in the ascending phase (`combine`).
    pub ascend_ns: u64,
}

impl PhaseTrace {
    /// Fraction of traced time spent descending — near zero for
    /// map/reduce/FFT, substantial for Eq.-5 data-transforming
    /// functions.
    pub fn descend_share(&self) -> f64 {
        let total = (self.descend_ns + self.leaf_ns + self.ascend_ns) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.descend_ns as f64 / total
        }
    }

    /// Fraction of traced time spent combining.
    pub fn ascend_share(&self) -> f64 {
        let total = (self.descend_ns + self.leaf_ns + self.ascend_ns) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.ascend_ns as f64 / total
        }
    }

    /// Condenses a full [`RunReport`] into the per-phase summary. JPLF
    /// leaves are singleton basic cases, recorded under the
    /// [`LeafRoute::Template`] route.
    pub fn from_report(report: &RunReport) -> PhaseTrace {
        PhaseTrace {
            splits: report.splits,
            leaves: report.routes.total_leaves(),
            combines: report.combines,
            descend_ns: report.descend_ns,
            leaf_ns: report.leaf_ns,
            ascend_ns: report.ascend_ns,
        }
    }
}

/// Runs the sequential template while tracing the three phases into a
/// call-local recorder (never installed globally).
pub fn compute_traced<F: PowerFunction>(f: &F, input: &PowerView<F::Elem>) -> (F::Out, PhaseTrace) {
    let recorder = RunRecorder::new();
    let out = compute_with_sink(f, input, &recorder);
    (out, PhaseTrace::from_report(&recorder.finish()))
}

/// Runs the sequential template, publishing one event per split, leaf
/// and combine to `sink`. Pass [`plobs::GlobalSink`] to forward into
/// whatever sink is globally installed, or a local
/// [`RunRecorder`] for an isolated trace.
pub fn compute_with_sink<F: PowerFunction>(
    f: &F,
    input: &PowerView<F::Elem>,
    sink: &dyn EventSink,
) -> F::Out {
    go(f, input, 0, sink)
}

fn go<F: PowerFunction>(
    f: &F,
    input: &PowerView<F::Elem>,
    depth: u32,
    sink: &dyn EventSink,
) -> F::Out {
    if input.is_singleton() {
        let t0 = Instant::now();
        let out = f.basic_case(input.singleton_value());
        sink.record(&Event::Leaf {
            route: LeafRoute::Template,
            items: 1,
            ns: t0.elapsed().as_nanos() as u64,
        });
        return out;
    }

    // Descending phase.
    let t0 = Instant::now();
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = (f.create_left(), f.create_right());
    let transformed = f.transform_halves(&l, &r);
    sink.record(&Event::Split {
        depth,
        adaptive: false,
    });
    sink.record(&Event::DescendNs {
        ns: t0.elapsed().as_nanos() as u64,
    });

    let (lo, ro) = match transformed {
        None => (go(&fl, &l, depth + 1, sink), go(&fr, &r, depth + 1, sink)),
        Some((l2, r2)) => (
            go(&fl, &l2.view(), depth + 1, sink),
            go(&fr, &r2.view(), depth + 1, sink),
        ),
    };

    // Ascending phase.
    let t0 = Instant::now();
    let out = f.combine(lo, ro);
    sink.record(&Event::Combine {
        depth,
        ns: t0.elapsed().as_nanos() as u64,
        placement: false,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlist::{tabulate, PowerList, PowerView};

    #[derive(Clone)]
    struct Sum;

    impl PowerFunction for Sum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Sum
        }
        fn create_right(&self) -> Self {
            Sum
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Eq.-5 style: heavy descending phase.
    #[derive(Clone)]
    struct HeavyDescent;

    impl PowerFunction for HeavyDescent {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(*v)
        }
        fn create_left(&self) -> Self {
            HeavyDescent
        }
        fn create_right(&self) -> Self {
            HeavyDescent
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::tie(l, r)
        }
        fn transform_halves(
            &self,
            l: &PowerView<i64>,
            r: &PowerView<i64>,
        ) -> crate::TransformedHalves<i64> {
            let a = powerlist::ops::zip_with(&l.to_powerlist(), &r.to_powerlist(), |x, y| x + y)
                .unwrap();
            let b = powerlist::ops::zip_with(&l.to_powerlist(), &r.to_powerlist(), |x, y| x - y)
                .unwrap();
            Some((a, b))
        }
    }

    #[test]
    fn counts_match_tree_shape() {
        let p = tabulate(64, |i| i as i64).unwrap();
        let (out, t) = compute_traced(&Sum, &p.view());
        assert_eq!(out, (0..64).sum::<i64>());
        assert_eq!(t.leaves, 64);
        assert_eq!(t.splits, 63);
        assert_eq!(t.combines, 63);
    }

    #[test]
    fn singleton_has_no_interior_phases() {
        let p = PowerList::singleton(5i64);
        let (out, t) = compute_traced(&Sum, &p.view());
        assert_eq!(out, 5);
        assert_eq!(
            t,
            PhaseTrace {
                leaves: 1,
                leaf_ns: t.leaf_ns,
                ..Default::default()
            }
        );
    }

    #[test]
    fn traced_result_matches_untraced() {
        let p = tabulate(128, |i| (i as i64 * 7) % 13).unwrap();
        let v = p.view();
        let plain = crate::compute_sequential(&Sum, &v);
        let (traced, _) = compute_traced(&Sum, &v);
        assert_eq!(plain, traced);
    }

    #[test]
    fn descent_share_distinguishes_function_classes() {
        // The Section V claim, measured: map/reduce-style functions do
        // ~no descending work; Eq.-5 functions do a lot.
        let p = tabulate(1 << 12, |i| i as i64).unwrap();
        let v = p.view();
        let (_, light) = compute_traced(&Sum, &v);
        let (_, heavy) = compute_traced(&HeavyDescent, &v);
        assert!(
            heavy.descend_share() > light.descend_share(),
            "heavy {} vs light {}",
            heavy.descend_share(),
            light.descend_share()
        );
        assert!(heavy.descend_share() > 0.3, "{}", heavy.descend_share());
    }

    #[test]
    fn shares_sum_to_one() {
        let p = tabulate(256, |i| i as i64).unwrap();
        let (_, t) = compute_traced(&Sum, &p.view());
        let leaf_share = t.leaf_ns as f64 / (t.descend_ns + t.leaf_ns + t.ascend_ns).max(1) as f64;
        let total = t.descend_share() + t.ascend_share() + leaf_share;
        assert!((total - 1.0).abs() < 1e-9 || t.descend_ns + t.leaf_ns + t.ascend_ns == 0);
    }
}
