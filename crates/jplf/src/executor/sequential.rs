//! The sequential executor: the reference semantics.

use crate::executor::{ExecConfig, ExecError, Executor};
use crate::function::{compute_sequential, try_compute_sequential, PowerFunction};
use jstreams::ExecSession;
use powerlist::PowerView;

/// Runs the template-method recursion on the calling thread.
///
/// Every other executor is tested against this one: for any function and
/// input, all executors must return the same value (the determinism
/// property of the PowerList algebra).
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialExecutor;

impl SequentialExecutor {
    /// Creates the executor.
    pub fn new() -> Self {
        SequentialExecutor
    }

    /// Unified-config constructor. The sequential strategy has no
    /// pool/policy knobs, so every configuration maps to the same
    /// executor; the constructor exists so all three executors share the
    /// `from_config` surface (the per-call session limits of a config
    /// are honoured by [`Executor::try_execute`], not stored here).
    pub fn from_config(_cfg: &ExecConfig) -> Self {
        SequentialExecutor
    }
}

impl Executor for SequentialExecutor {
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync,
    {
        if plobs::enabled() {
            // Same recursion, but publishing split/leaf/combine events
            // to the globally installed sink.
            crate::trace::compute_with_sink(f, input, &plobs::GlobalSink)
        } else {
            compute_sequential(f, input)
        }
    }

    fn try_execute<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<F::Out, ExecError>
    where
        F: PowerFunction + Clone + Sync,
    {
        let session = ExecSession::new(cfg);
        try_compute_sequential(f, input, &session).map_err(|i| session.error_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Decomp;
    use powerlist::{tabulate, PowerList};

    #[derive(Clone)]
    struct Max;

    impl PowerFunction for Max {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Zip
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Max
        }
        fn create_right(&self) -> Self {
            Max
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l.max(r)
        }
    }

    #[test]
    fn computes_max() {
        let p = tabulate(32, |i| ((i * 37) % 61) as i64).unwrap();
        let expected = *p.iter().max().unwrap();
        assert_eq!(
            SequentialExecutor::new().execute(&Max, &p.clone().view()),
            expected
        );
    }

    #[test]
    fn singleton_is_basic_case() {
        let p = PowerList::singleton(-5i64);
        assert_eq!(
            SequentialExecutor::new().execute(&Max, &p.clone().view()),
            -5
        );
    }
}
