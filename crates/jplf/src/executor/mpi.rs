//! The simulated-MPI executor: SPMD divide-and-conquer.
//!
//! JPLF's MPI executors distribute a PowerList function over cluster
//! ranks (paper, Section III; \[20\] details the scaling study). The
//! execution plan is the classical one for tree-shaped computations:
//!
//! 1. **Plan (rank 0)** — descend the deconstruction tree `log2(ranks)`
//!    levels, applying the descending-phase primitives
//!    (`create_left`/`create_right`, `transform_halves`) along every
//!    path; this yields one *leaf problem* (sub-list + descended function
//!    instance + combine-function stack) per rank, in rank order.
//! 2. **Scatter** — leaf problems travel point-to-point to their ranks
//!    (real data movement through the message substrate, as on a real
//!    cluster).
//! 3. **Local leaf phase** — every rank runs the sequential template on
//!    its sub-problem.
//! 4. **Combine tree** — a binomial tree mirrors the deconstruction
//!    tree: at step `s`, ranks whose low `s+1` bits are zero receive
//!    their partner's result and apply the `combine` of the tree node at
//!    depth `k-1-s` of their path. Rank 0 finishes with the result.

use crate::executor::{ExecConfig, ExecError, Executor};
use crate::function::{compute_sequential, try_compute_sequential, Decomp, PowerFunction};
use crate::mpisim::collective::scatter;
use crate::mpisim::comm::run_mpi;
use jstreams::{ExecSession, Interrupt};
use parking_lot::Mutex;
use powerlist::{PowerList, PowerView};
use std::sync::Arc;

/// Tag base for the combine-tree messages.
const COMBINE_TAG_BASE: u64 = 1_000;

/// SPMD executor over simulated MPI ranks.
#[derive(Debug, Clone, Copy)]
pub struct MpiExecutor {
    ranks: usize,
}

impl MpiExecutor {
    /// Executor with `ranks` simulated processes; rounded down to a
    /// power of two (the deconstruction tree is binary), minimum 1.
    pub fn new(ranks: usize) -> Self {
        let ranks = ranks.max(1);
        // Largest power of two ≤ ranks.
        let ranks = 1usize << (usize::BITS - 1 - ranks.leading_zeros());
        MpiExecutor { ranks }
    }

    /// Unified-config constructor: takes the rank count from the
    /// config's `ranks` knob (default: the machine's available
    /// parallelism), with the same power-of-two rounding as
    /// [`MpiExecutor::new`].
    pub fn from_config(cfg: &ExecConfig) -> Self {
        let ranks = cfg.ranks().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Self::new(ranks)
    }

    /// Number of simulated ranks actually used.
    pub fn ranks(&self) -> usize {
        self.ranks
    }
}

/// One rank's work order: the leaf sub-problem plus the stack of function
/// instances along its path (stack[d] = instance at tree depth d; the
/// last entry computes the leaf).
struct LeafProblem<F: PowerFunction> {
    leaf: PowerList<F::Elem>,
    stack: Vec<F>,
}

/// Builds the per-rank leaf problems by descending `depth` levels, in
/// path (= rank) order.
fn plan<F>(f: &F, input: &PowerView<F::Elem>, depth: u32) -> Vec<LeafProblem<F>>
where
    F: PowerFunction + Clone,
{
    fn go<F>(
        f: F,
        view: PowerView<F::Elem>,
        mut stack: Vec<F>,
        depth: u32,
        out: &mut Vec<LeafProblem<F>>,
    ) where
        F: PowerFunction + Clone,
    {
        if depth == 0 {
            stack.push(f);
            out.push(LeafProblem {
                leaf: view.to_powerlist(),
                stack,
            });
            return;
        }
        let (l, r) = match f.decomposition() {
            Decomp::Tie => view.untie().expect("depth bounded by log2(len)"),
            Decomp::Zip => view.unzip().expect("depth bounded by log2(len)"),
        };
        let (fl, fr) = (f.create_left(), f.create_right());
        let (lv, rv) = match f.transform_halves(&l, &r) {
            None => (l, r),
            Some((l2, r2)) => (l2.view(), r2.view()),
        };
        stack.push(f);
        // Both subtrees share the path prefix (including this node).
        let right_stack = stack.clone();
        go(fl, lv, stack, depth - 1, out);
        go(fr, rv, right_stack, depth - 1, out);
    }

    let mut out = Vec::with_capacity(1 << depth);
    go(f.clone(), input.clone(), Vec::new(), depth, &mut out);
    out
}

impl Executor for MpiExecutor {
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync,
    {
        // Cannot use more ranks than elements.
        let ranks = self.ranks.min(input.len());
        let k = powerlist::log2_exact(ranks);

        if ranks == 1 {
            return compute_sequential(f, input);
        }

        // Rank 0 consumes the plan; hand it through a Mutex'd Option so
        // the SPMD closure stays `Fn`.
        let problems = plan(f, input, k);
        let plan_slot: Arc<Mutex<Option<Vec<LeafProblem<F>>>>> =
            Arc::new(Mutex::new(Some(problems)));

        let results = run_mpi(ranks, move |comm| {
            let rank = comm.rank();
            // Phase 2: scatter the leaf problems.
            let parts = if rank == 0 {
                plan_slot.lock().take()
            } else {
                None
            };
            let LeafProblem { leaf, stack } = scatter(&comm, 0, parts);

            // Phase 3: local leaf computation with the descended
            // function (specialised leaf kernel where the function
            // provides one).
            let leaf_fn = stack.last().expect("stack holds the leaf function");
            let mut acc = leaf_fn.leaf_case(&leaf.view());

            // Phase 4: binomial combine tree.
            for s in 0..k {
                let bit = 1usize << s;
                if rank & ((bit << 1) - 1) == 0 {
                    let partner = rank + bit;
                    if partner < comm.size() {
                        let theirs: F::Out = comm.recv(partner, COMBINE_TAG_BASE + s as u64);
                        // The node at depth k-1-s along this rank's path.
                        let node_fn = &stack[(k - 1 - s) as usize];
                        acc = node_fn.combine(acc, theirs);
                    }
                } else if rank & ((bit << 1) - 1) == bit {
                    comm.send(rank - bit, COMBINE_TAG_BASE + s as u64, acc);
                    return None;
                }
            }
            if rank == 0 {
                Some(acc)
            } else {
                None
            }
        });

        results
            .into_iter()
            .next()
            .expect("rank 0 exists")
            .expect("rank 0 holds the combined result")
    }

    fn try_execute<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<F::Out, ExecError>
    where
        F: PowerFunction + Clone + Sync,
    {
        let session = ExecSession::new(cfg);
        let ranks = self.ranks.min(input.len());
        let k = powerlist::log2_exact(ranks);

        let acc: Result<F::Out, Interrupt> = (|| {
            session.check()?;
            if ranks == 1 {
                return try_compute_sequential(f, input, &session);
            }

            // Planning runs user primitives, so it too is contained; a
            // panic here never reaches the ranks.
            let problems = session.run(|| plan(f, input, k))?;
            let plan_slot: Arc<Mutex<Option<Vec<LeafProblem<F>>>>> =
                Arc::new(Mutex::new(Some(problems)));

            let s2 = session.clone();
            let results = run_mpi(ranks, move |comm| {
                let rank = comm.rank();
                let parts = if rank == 0 {
                    plan_slot.lock().take()
                } else {
                    None
                };
                let LeafProblem { leaf, stack } = scatter(&comm, 0, parts);

                let leaf_fn = stack.last().expect("stack holds the leaf function");
                let mut acc: Result<F::Out, Interrupt> = s2
                    .check()
                    .and_then(|()| s2.run(|| leaf_fn.leaf_case(&leaf.view())));

                // The combine tree carries `Result`s: a failed rank still
                // sends its `Err` upward, so no partner ever hangs waiting
                // for a rank that panicked or observed cancellation.
                for s in 0..k {
                    let bit = 1usize << s;
                    if rank & ((bit << 1) - 1) == 0 {
                        let partner = rank + bit;
                        if partner < comm.size() {
                            let theirs: Result<F::Out, Interrupt> =
                                comm.recv(partner, COMBINE_TAG_BASE + s as u64);
                            let node_fn = &stack[(k - 1 - s) as usize];
                            acc = match (acc, theirs) {
                                (Ok(l), Ok(r)) => {
                                    s2.check().and_then(|()| s2.run(|| node_fn.combine(l, r)))
                                }
                                (Err(a), Err(b)) => Err(a.merge(b)),
                                (Err(a), Ok(_)) | (Ok(_), Err(a)) => Err(a),
                            };
                        }
                    } else if rank & ((bit << 1) - 1) == bit {
                        comm.send(rank - bit, COMBINE_TAG_BASE + s as u64, acc);
                        return None;
                    }
                }
                if rank == 0 {
                    Some(acc)
                } else {
                    None
                }
            });

            results
                .into_iter()
                .next()
                .expect("rank 0 exists")
                .expect("rank 0 holds the combined result")
        })();
        acc.map_err(|i| session.error_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SequentialExecutor;
    use powerlist::tabulate;

    #[derive(Clone)]
    struct Sum;

    impl PowerFunction for Sum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Sum
        }
        fn create_right(&self) -> Self {
            Sum
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Non-commutative but associative: catches wrong combine ordering.
    #[derive(Clone)]
    struct Concat;

    impl PowerFunction for Concat {
        type Elem = u8;
        type Out = String;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &u8) -> String {
            format!("{v},")
        }
        fn create_left(&self) -> Self {
            Concat
        }
        fn create_right(&self) -> Self {
            Concat
        }
        fn combine(&self, l: String, r: String) -> String {
            l + &r
        }
    }

    /// Zip-decomposed map: the scatter must follow parity classes.
    #[derive(Clone)]
    struct Neg;

    impl PowerFunction for Neg {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Zip
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(-v)
        }
        fn create_left(&self) -> Self {
            Neg
        }
        fn create_right(&self) -> Self {
            Neg
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::zip(l, r)
        }
    }

    #[test]
    fn rank_rounding() {
        assert_eq!(MpiExecutor::new(1).ranks(), 1);
        assert_eq!(MpiExecutor::new(2).ranks(), 2);
        assert_eq!(MpiExecutor::new(3).ranks(), 2);
        assert_eq!(MpiExecutor::new(7).ranks(), 4);
        assert_eq!(MpiExecutor::new(8).ranks(), 8);
        assert_eq!(MpiExecutor::new(0).ranks(), 1);
    }

    #[test]
    fn sum_matches_sequential_across_rank_counts() {
        let p = tabulate(256, |i| i as i64 * 3 - 100).unwrap();
        let expected = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        for ranks in [1, 2, 4, 8] {
            assert_eq!(
                MpiExecutor::new(ranks).execute(&Sum, &p.clone().view()),
                expected,
                "ranks={ranks}"
            );
        }
    }

    #[test]
    fn noncommutative_combine_order_is_correct() {
        let p = tabulate(16, |i| i as u8).unwrap();
        let expected = SequentialExecutor::new().execute(&Concat, &p.clone().view());
        for ranks in [2, 4, 8] {
            assert_eq!(
                MpiExecutor::new(ranks).execute(&Concat, &p.clone().view()),
                expected,
                "ranks={ranks}"
            );
        }
    }

    #[test]
    fn zip_decomposition_scatters_parity_classes() {
        let p = tabulate(64, |i| i as i64).unwrap();
        let expected = SequentialExecutor::new().execute(&Neg, &p.clone().view());
        for ranks in [2, 4] {
            let out = MpiExecutor::new(ranks).execute(&Neg, &p.clone().view());
            assert_eq!(out, expected, "ranks={ranks}");
        }
    }

    #[test]
    fn more_ranks_than_elements_clamps() {
        let p = tabulate(4, |i| i as i64).unwrap();
        assert_eq!(MpiExecutor::new(16).execute(&Sum, &p.clone().view()), 6);
    }

    #[test]
    fn singleton_input_short_circuits() {
        let p = PowerList::singleton(11i64);
        assert_eq!(MpiExecutor::new(8).execute(&Sum, &p.clone().view()), 11);
    }

    #[test]
    fn from_config_takes_ranks_knob() {
        assert_eq!(
            MpiExecutor::from_config(&ExecConfig::par().with_ranks(6)).ranks(),
            4
        );
        assert!(MpiExecutor::from_config(&ExecConfig::par()).ranks() >= 1);
    }

    #[test]
    fn try_execute_happy_path_matches_execute() {
        let p = tabulate(128, |i| i as i64 * 7 - 50).unwrap();
        for ranks in [1, 2, 4] {
            let exec = MpiExecutor::new(ranks);
            let plain = exec.execute(&Sum, &p.clone().view());
            assert_eq!(
                exec.try_execute(&Sum, &p.clone().view(), &ExecConfig::par())
                    .ok(),
                Some(plain),
                "ranks={ranks}"
            );
        }
    }

    /// Sum whose basic case panics on one poisoned value — the leaf
    /// phase of exactly one rank fails; its `Err` must travel the
    /// combine tree without deadlocking any partner.
    #[derive(Clone)]
    struct PoisonSum(i64);

    impl PowerFunction for PoisonSum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            assert!(*v != self.0, "rank hit poison {v}");
            *v
        }
        fn create_left(&self) -> Self {
            self.clone()
        }
        fn create_right(&self) -> Self {
            self.clone()
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    #[test]
    fn try_execute_contains_rank_panics() {
        let p = tabulate(64, |i| i as i64).unwrap();
        for ranks in [2, 4, 8] {
            let err = MpiExecutor::new(ranks)
                .try_execute(&PoisonSum(40), &p.clone().view(), &ExecConfig::par())
                .expect_err("poisoned leaf must surface as an error");
            assert_eq!(
                err.panic_message(),
                Some("rank hit poison 40"),
                "ranks={ranks}"
            );
        }
    }

    #[test]
    fn try_execute_honours_pre_cancelled_token() {
        let token = jstreams::CancelToken::new();
        token.cancel(jstreams::CancelReason::User);
        let p = tabulate(32, |i| i as i64).unwrap();
        let err = MpiExecutor::new(4)
            .try_execute(&Sum, &p.view(), &ExecConfig::par().with_cancel_token(token))
            .err();
        assert!(matches!(err, Some(ExecError::Cancelled)), "got {err:?}");
    }
}
