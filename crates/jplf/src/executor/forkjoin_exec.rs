//! The multithreading executor: fork-join parallel recursion.
//!
//! This is JPLF's tested executor (paper, Section III: "the tested
//! implementation uses the ForkJoinPool executor, as is the
//! parallelisation of Java Streams"). Each deconstruction forks the two
//! half-computations with [`forkjoin::join`]; below a size threshold the
//! recursion continues sequentially on the worker (the descending phase —
//! including `create_left`/`create_right` parameter descent and
//! `transform_halves` data transforms — still runs, only the forking
//! stops).

use crate::executor::Executor;
use crate::function::{Decomp, PowerFunction};
use forkjoin::{demand_split, join, ForkJoinPool, SplitPolicy};
use plobs::{Event, LeafRoute};
use powerlist::PowerView;
use std::sync::Arc;
use std::time::Instant;

/// Fork-join executor with an explicit pool and split policy.
pub struct ForkJoinExecutor {
    pool: Arc<ForkJoinPool>,
    policy: SplitPolicy,
}

impl ForkJoinExecutor {
    /// Executor on a dedicated pool of `threads` workers; forking stops
    /// at sublists of `leaf_size` elements ([`SplitPolicy::Fixed`]).
    pub fn new(threads: usize, leaf_size: usize) -> Self {
        ForkJoinExecutor {
            pool: Arc::new(ForkJoinPool::new(threads)),
            policy: SplitPolicy::Fixed(leaf_size.max(1)),
        }
    }

    /// Executor on a dedicated pool of `threads` workers with
    /// demand-driven forking ([`SplitPolicy::adaptive`]).
    pub fn adaptive(threads: usize) -> Self {
        ForkJoinExecutor {
            pool: Arc::new(ForkJoinPool::new(threads)),
            policy: SplitPolicy::adaptive(),
        }
    }

    /// Executor over an existing pool with a fixed leaf threshold.
    pub fn with_pool(pool: Arc<ForkJoinPool>, leaf_size: usize) -> Self {
        ForkJoinExecutor {
            pool,
            policy: SplitPolicy::Fixed(leaf_size.max(1)),
        }
    }

    /// Executor over an existing pool under an explicit [`SplitPolicy`].
    pub fn with_policy(pool: Arc<ForkJoinPool>, policy: SplitPolicy) -> Self {
        ForkJoinExecutor { pool, policy }
    }

    /// The underlying pool (for metrics inspection).
    pub fn pool(&self) -> &Arc<ForkJoinPool> {
        &self.pool
    }

    /// The sequential cutoff: the fixed threshold, or the adaptive
    /// policy's minimum leaf.
    pub fn leaf_size(&self) -> usize {
        match self.policy {
            SplitPolicy::Fixed(n) => n,
            SplitPolicy::Adaptive(a) => a.min_leaf,
        }
    }

    /// The split policy in force.
    pub fn policy(&self) -> SplitPolicy {
        self.policy
    }
}

fn par_compute<F>(
    f: F,
    input: PowerView<F::Elem>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
) -> F::Out
where
    F: PowerFunction + Clone + Sync,
{
    // Timing and event emission are gated on an installed sink — the
    // zero-cost-when-disabled contract.
    let observe = plobs::enabled();
    // PowerViews are always exactly sized, so the size cutoff is sound
    // under both policies; the adaptive policy additionally stops at the
    // depth cap or when the worker has surplus queued work and no steals
    // are observed.
    let mut steals_next = steals_seen;
    let stop = input.is_singleton()
        || match policy {
            SplitPolicy::Fixed(leaf) => input.len() <= leaf,
            SplitPolicy::Adaptive(a) => {
                if depth >= cap || input.len() <= a.min_leaf {
                    true
                } else {
                    let (wants_split, now) = demand_split(a.surplus, steals_seen);
                    steals_next = now;
                    !wants_split
                }
            }
        };
    if stop {
        // The leaf kernel (paper §V: the basic case applied to a whole
        // sub-list); defaults to the template recursion.
        let items = input.len() as u64;
        let t0 = if observe { Some(Instant::now()) } else { None };
        let out = f.leaf_case(&input);
        if let Some(t0) = t0 {
            plobs::emit(Event::Leaf {
                route: LeafRoute::Template,
                items,
                ns: t0.elapsed().as_nanos() as u64,
            });
        }
        return out;
    }
    let t0 = if observe { Some(Instant::now()) } else { None };
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = (f.create_left(), f.create_right());
    let transformed = f.transform_halves(&l, &r);
    if let Some(t0) = t0 {
        plobs::emit(Event::Split {
            depth,
            adaptive: policy.is_adaptive(),
        });
        plobs::emit(Event::DescendNs {
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    let (lo, ro) = match transformed {
        None => join(
            move || par_compute(fl, l, policy, cap, depth + 1, steals_next),
            move || par_compute(fr, r, policy, cap, depth + 1, steals_next),
        ),
        Some((l2, r2)) => join(
            move || par_compute(fl, l2.view(), policy, cap, depth + 1, steals_next),
            move || par_compute(fr, r2.view(), policy, cap, depth + 1, steals_next),
        ),
    };
    let t0 = if observe { Some(Instant::now()) } else { None };
    let out = f.combine(lo, ro);
    if let Some(t0) = t0 {
        plobs::emit(Event::Combine {
            depth,
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    out
}

impl Executor for ForkJoinExecutor {
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync,
    {
        let f = f.clone();
        let input = input.clone();
        let policy = self.policy;
        let cap = policy.depth_cap(self.pool.threads());
        self.pool.install(move || {
            let steals = forkjoin::current_probe().map_or(0, |p| p.steal_pressure());
            par_compute(f, input, policy, cap, 0, steals)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SequentialExecutor;
    use powerlist::{tabulate, PowerList};

    #[derive(Clone)]
    struct Sum;

    impl PowerFunction for Sum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Sum
        }
        fn create_right(&self) -> Self {
            Sum
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Map returning a PowerList via zip recombination — checks result
    /// ordering under parallel execution.
    #[derive(Clone)]
    struct Square;

    impl PowerFunction for Square {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Zip
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(v * v)
        }
        fn create_left(&self) -> Self {
            Square
        }
        fn create_right(&self) -> Self {
            Square
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::zip(l, r)
        }
    }

    #[test]
    fn matches_sequential_sum() {
        let p = tabulate(1 << 12, |i| i as i64).unwrap();
        let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        for threads in [1, 2, 4] {
            let exec = ForkJoinExecutor::new(threads, 64);
            assert_eq!(
                exec.execute(&Sum, &p.clone().view()),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_order_preserved() {
        let p = tabulate(256, |i| i as i64).unwrap();
        let exec = ForkJoinExecutor::new(3, 8);
        let out = exec.execute(&Square, &p.clone().view());
        let expected: Vec<i64> = (0..256).map(|i: i64| i * i).collect();
        assert_eq!(out.into_vec(), expected);
    }

    #[test]
    fn leaf_size_extremes_agree() {
        let p = tabulate(128, |i| i as i64 % 13).unwrap();
        let a = ForkJoinExecutor::new(2, 1).execute(&Sum, &p.clone().view());
        let b = ForkJoinExecutor::new(2, 128).execute(&Sum, &p.clone().view());
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_input() {
        let p = PowerList::singleton(9i64);
        assert_eq!(
            ForkJoinExecutor::new(2, 4).execute(&Sum, &p.clone().view()),
            9
        );
    }

    #[test]
    fn adaptive_matches_sequential() {
        let p = tabulate(1 << 10, |i| i as i64 % 17).unwrap();
        let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        let exec = ForkJoinExecutor::adaptive(2);
        assert!(exec.policy().is_adaptive());
        assert_eq!(exec.execute(&Sum, &p.clone().view()), seq);
        // Adaptive zip recombination preserves order too.
        let q = tabulate(256, |i| i as i64).unwrap();
        let small_cutoff = forkjoin::SplitPolicy::Adaptive(forkjoin::AdaptiveSplit {
            min_leaf: 8,
            ..Default::default()
        });
        let exec = ForkJoinExecutor::with_policy(Arc::new(ForkJoinPool::new(3)), small_cutoff);
        let out = exec.execute(&Square, &q.view());
        let expected: Vec<i64> = (0..256).map(|i: i64| i * i).collect();
        assert_eq!(out.into_vec(), expected);
    }

    #[test]
    fn shared_pool_reuse() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let e1 = ForkJoinExecutor::with_pool(Arc::clone(&pool), 16);
        let e2 = ForkJoinExecutor::with_pool(Arc::clone(&pool), 4);
        let p = tabulate(64, |i| i as i64).unwrap();
        assert_eq!(
            e1.execute(&Sum, &p.clone().view()),
            e2.execute(&Sum, &p.clone().view())
        );
        assert!(pool.metrics().executed > 0);
    }
}
