//! The multithreading executor: fork-join parallel recursion.
//!
//! This is JPLF's tested executor (paper, Section III: "the tested
//! implementation uses the ForkJoinPool executor, as is the
//! parallelisation of Java Streams"). Each deconstruction forks the two
//! half-computations with [`forkjoin::join`]; below a size threshold the
//! recursion continues sequentially on the worker (the descending phase —
//! including `create_left`/`create_right` parameter descent and
//! `transform_halves` data transforms — still runs, only the forking
//! stops).

use crate::executor::{ExecConfig, ExecError, Executor};
use crate::function::{try_compute_sequential, Decomp, PowerFunction};
use forkjoin::{demand_split, join, ForkJoinPool, SplitPolicy};
use jstreams::{ExecSession, Interrupt};
use plobs::{Event, FallbackReason, LeafRoute};
use powerlist::PowerView;
use std::sync::Arc;
use std::time::Instant;

/// Fork-join executor with an explicit pool and split policy.
pub struct ForkJoinExecutor {
    pool: Arc<ForkJoinPool>,
    policy: SplitPolicy,
    tuner: Option<Arc<pltune::PlanCache>>,
}

impl ForkJoinExecutor {
    /// Unified-config constructor: takes the config's pool (default: a
    /// dedicated pool sized to the machine) and split policy (default:
    /// [`SplitPolicy::adaptive`]) — the same resolution the streams
    /// front-end applies. The historical constructors are shims over
    /// this one.
    ///
    /// When the config carries a tuner ([`ExecConfig::auto_tune`]) and
    /// no explicit policy, each execution resolves its policy from the
    /// shared plan cache (calibrating on first sight of a
    /// function-shape/size/pool fingerprint); [`Self::policy`] then
    /// reports the untuned default. An explicit policy disables tuning,
    /// same as the streams driver.
    pub fn from_config(cfg: &ExecConfig) -> Self {
        ForkJoinExecutor {
            pool: cfg
                .pool()
                .cloned()
                .unwrap_or_else(|| Arc::new(ForkJoinPool::with_default_parallelism())),
            policy: cfg.policy().unwrap_or_else(SplitPolicy::adaptive),
            tuner: if cfg.policy().is_some() {
                None
            } else {
                cfg.tuner().cloned()
            },
        }
    }

    /// Executor on a dedicated pool of `threads` workers; forking stops
    /// at sublists of `leaf_size` elements ([`SplitPolicy::Fixed`]).
    pub fn new(threads: usize, leaf_size: usize) -> Self {
        Self::from_config(
            &ExecConfig::par()
                .with_pool(Arc::new(ForkJoinPool::new(threads)))
                .with_leaf_size(leaf_size),
        )
    }

    /// Executor on a dedicated pool of `threads` workers with
    /// demand-driven forking ([`SplitPolicy::adaptive`]).
    pub fn adaptive(threads: usize) -> Self {
        Self::from_config(&ExecConfig::par().with_pool(Arc::new(ForkJoinPool::new(threads))))
    }

    /// Executor over an existing pool with a fixed leaf threshold.
    pub fn with_pool(pool: Arc<ForkJoinPool>, leaf_size: usize) -> Self {
        Self::from_config(&ExecConfig::par().with_pool(pool).with_leaf_size(leaf_size))
    }

    /// Executor over an existing pool under an explicit [`SplitPolicy`].
    pub fn with_policy(pool: Arc<ForkJoinPool>, policy: SplitPolicy) -> Self {
        Self::from_config(&ExecConfig::par().with_pool(pool).with_split_policy(policy))
    }

    /// The underlying pool (for metrics inspection).
    pub fn pool(&self) -> &Arc<ForkJoinPool> {
        &self.pool
    }

    /// The sequential cutoff: the fixed threshold, or the adaptive
    /// policy's minimum leaf.
    pub fn leaf_size(&self) -> usize {
        match self.policy {
            SplitPolicy::Fixed(n) => n,
            SplitPolicy::Adaptive(a) => a.min_leaf,
        }
    }

    /// The split policy in force.
    pub fn policy(&self) -> SplitPolicy {
        self.policy
    }

    /// Resolves the policy for one execution: tuner plan (calibrated on
    /// first sight) when attached, else the configured policy.
    /// PowerViews are always exactly sized, so the fingerprint's size
    /// is exact by construction.
    pub(crate) fn resolve_policy(&self, pipe: &str, len: usize) -> SplitPolicy {
        self.tuner
            .as_ref()
            .and_then(|cache| {
                let fp = pltune::Fingerprint::new(
                    pipe,
                    "jplf::power_function",
                    len,
                    true,
                    self.pool.threads(),
                );
                pltune::resolve(cache, &self.pool, &fp)
            })
            .unwrap_or(self.policy)
    }
}

fn par_compute<F>(
    f: F,
    input: PowerView<F::Elem>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
) -> F::Out
where
    F: PowerFunction + Clone + Sync,
{
    // Timing and event emission are gated on an installed sink — the
    // zero-cost-when-disabled contract.
    let observe = plobs::enabled();
    // PowerViews are always exactly sized, so the size cutoff is sound
    // under both policies; the adaptive policy additionally stops at the
    // depth cap or when the worker has surplus queued work and no steals
    // are observed.
    let mut steals_next = steals_seen;
    let stop = input.is_singleton()
        || match policy {
            SplitPolicy::Fixed(leaf) => input.len() <= leaf,
            SplitPolicy::Adaptive(a) => {
                if depth >= cap || input.len() <= a.min_leaf {
                    true
                } else {
                    let (wants_split, now) = demand_split(a.surplus, steals_seen);
                    steals_next = now;
                    !wants_split
                }
            }
        };
    if stop {
        // The leaf kernel (paper §V: the basic case applied to a whole
        // sub-list); defaults to the template recursion.
        let items = input.len() as u64;
        let t0 = if observe { Some(Instant::now()) } else { None };
        let out = f.leaf_case(&input);
        if let Some(t0) = t0 {
            plobs::emit(Event::Leaf {
                route: LeafRoute::Template,
                items,
                ns: t0.elapsed().as_nanos() as u64,
            });
        }
        return out;
    }
    let t0 = if observe { Some(Instant::now()) } else { None };
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = (f.create_left(), f.create_right());
    let transformed = f.transform_halves(&l, &r);
    if let Some(t0) = t0 {
        plobs::emit(Event::Split {
            depth,
            adaptive: policy.is_adaptive(),
        });
        plobs::emit(Event::DescendNs {
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    let (lo, ro) = match transformed {
        None => join(
            move || par_compute(fl, l, policy, cap, depth + 1, steals_next),
            move || par_compute(fr, r, policy, cap, depth + 1, steals_next),
        ),
        Some((l2, r2)) => join(
            move || par_compute(fl, l2.view(), policy, cap, depth + 1, steals_next),
            move || par_compute(fr, r2.view(), policy, cap, depth + 1, steals_next),
        ),
    };
    let t0 = if observe { Some(Instant::now()) } else { None };
    let out = f.combine(lo, ro);
    if let Some(t0) = t0 {
        plobs::emit(Event::Combine {
            depth,
            ns: t0.elapsed().as_nanos() as u64,
            placement: false,
        });
    }
    out
}

/// Fallible mirror of [`par_compute`]: checkpoints at node entry and
/// before combine, user primitives under panic containment, sibling
/// interrupts merged after both halves quiesce.
fn try_par_compute<F>(
    f: F,
    input: PowerView<F::Elem>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
    session: &ExecSession,
) -> Result<F::Out, Interrupt>
where
    F: PowerFunction + Clone + Sync,
{
    session.check()?;
    let observe = plobs::enabled();
    let mut steals_next = steals_seen;
    let stop = input.is_singleton()
        || match policy {
            SplitPolicy::Fixed(leaf) => input.len() <= leaf,
            SplitPolicy::Adaptive(a) => {
                if depth >= cap || input.len() <= a.min_leaf {
                    true
                } else {
                    let (wants_split, now) = demand_split(a.surplus, steals_seen);
                    steals_next = now;
                    !wants_split
                }
            }
        };
    if stop {
        let items = input.len() as u64;
        let t0 = if observe { Some(Instant::now()) } else { None };
        let out = session.run(|| f.leaf_case(&input))?;
        if let Some(t0) = t0 {
            plobs::emit(Event::Leaf {
                route: LeafRoute::Template,
                items,
                ns: t0.elapsed().as_nanos() as u64,
            });
        }
        return Ok(out);
    }
    let t0 = if observe { Some(Instant::now()) } else { None };
    let (l, r) = match f.decomposition() {
        Decomp::Tie => input.untie().expect("non-singleton"),
        Decomp::Zip => input.unzip().expect("non-singleton"),
    };
    let (fl, fr) = session.run(|| (f.create_left(), f.create_right()))?;
    let transformed = session.run(|| f.transform_halves(&l, &r))?;
    if let Some(t0) = t0 {
        plobs::emit(Event::Split {
            depth,
            adaptive: policy.is_adaptive(),
        });
        plobs::emit(Event::DescendNs {
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    let s_left = session.clone();
    let s_right = session.clone();
    let (lo, ro) = match transformed {
        None => join(
            move || try_par_compute(fl, l, policy, cap, depth + 1, steals_next, &s_left),
            move || try_par_compute(fr, r, policy, cap, depth + 1, steals_next, &s_right),
        ),
        Some((l2, r2)) => join(
            move || try_par_compute(fl, l2.view(), policy, cap, depth + 1, steals_next, &s_left),
            move || try_par_compute(fr, r2.view(), policy, cap, depth + 1, steals_next, &s_right),
        ),
    };
    let (lo, ro) = match (lo, ro) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(a), Err(b)) => return Err(a.merge(b)),
        (Err(a), Ok(_)) | (Ok(_), Err(a)) => return Err(a),
    };
    session.check()?;
    let t0 = if observe { Some(Instant::now()) } else { None };
    let out = session.run(|| f.combine(lo, ro))?;
    if let Some(t0) = t0 {
        plobs::emit(Event::Combine {
            depth,
            ns: t0.elapsed().as_nanos() as u64,
            placement: false,
        });
    }
    Ok(out)
}

impl Executor for ForkJoinExecutor {
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync,
    {
        let policy = self.resolve_policy(std::any::type_name::<F>(), input.len());
        let f = f.clone();
        let input = input.clone();
        let cap = policy.depth_cap(self.pool.threads());
        self.pool.install(move || {
            let steals = forkjoin::current_probe().map_or(0, |p| p.steal_pressure());
            par_compute(f, input, policy, cap, 0, steals)
        })
    }

    fn try_execute<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<F::Out, ExecError>
    where
        F: PowerFunction + Clone + Sync,
    {
        let session = ExecSession::new(cfg);
        // Graceful degradation mirrors the streams driver: a shut-down
        // or saturated pool routes the whole computation through the
        // guarded sequential template instead of failing.
        let fallback = if self.pool.is_shut_down() {
            Some(FallbackReason::SubmitFailed)
        } else if cfg
            .fallback_threshold()
            .is_some_and(|t| self.pool.queued_tasks() > t)
        {
            Some(FallbackReason::PoolSaturated)
        } else {
            None
        };
        let acc = match fallback {
            Some(reason) => {
                plobs::emit(Event::Fallback { reason });
                try_compute_sequential(f, input, &session)
            }
            None => {
                let policy = self.resolve_policy(std::any::type_name::<F>(), input.len());
                let f = f.clone();
                let input = input.clone();
                let s2 = session.clone();
                match self.pool.try_install(move || {
                    // Like the streams driver, the depth cap budgets
                    // the pool that actually executes: installed
                    // normally that is this executor's pool, but on the
                    // shutdown-race fallback below the closure runs on
                    // the caller, whose joins stay on the caller's own
                    // pool or migrate to the global one.
                    let probe = forkjoin::current_probe();
                    let threads = probe
                        .as_ref()
                        .map_or_else(|| forkjoin::global_pool().threads(), |p| p.threads());
                    let cap = policy.depth_cap(threads);
                    let steals = probe.map_or(0, |p| p.steal_pressure());
                    try_par_compute(f, input, policy, cap, 0, steals, &s2)
                }) {
                    Ok(acc) => acc,
                    Err(g) => {
                        // Submission lost to a shutdown race: run on the
                        // calling thread (joins migrate to the global
                        // pool) and record the degradation.
                        plobs::emit(Event::Fallback {
                            reason: FallbackReason::SubmitFailed,
                        });
                        g()
                    }
                }
            }
        };
        acc.map_err(|i| session.error_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SequentialExecutor;
    use powerlist::{tabulate, PowerList};

    #[derive(Clone)]
    struct Sum;

    impl PowerFunction for Sum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            *v
        }
        fn create_left(&self) -> Self {
            Sum
        }
        fn create_right(&self) -> Self {
            Sum
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Map returning a PowerList via zip recombination — checks result
    /// ordering under parallel execution.
    #[derive(Clone)]
    struct Square;

    impl PowerFunction for Square {
        type Elem = i64;
        type Out = PowerList<i64>;
        fn decomposition(&self) -> Decomp {
            Decomp::Zip
        }
        fn basic_case(&self, v: &i64) -> PowerList<i64> {
            PowerList::singleton(v * v)
        }
        fn create_left(&self) -> Self {
            Square
        }
        fn create_right(&self) -> Self {
            Square
        }
        fn combine(&self, l: PowerList<i64>, r: PowerList<i64>) -> PowerList<i64> {
            PowerList::zip(l, r)
        }
    }

    #[test]
    fn matches_sequential_sum() {
        let p = tabulate(1 << 12, |i| i as i64).unwrap();
        let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        for threads in [1, 2, 4] {
            let exec = ForkJoinExecutor::new(threads, 64);
            assert_eq!(
                exec.execute(&Sum, &p.clone().view()),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_order_preserved() {
        let p = tabulate(256, |i| i as i64).unwrap();
        let exec = ForkJoinExecutor::new(3, 8);
        let out = exec.execute(&Square, &p.clone().view());
        let expected: Vec<i64> = (0..256).map(|i: i64| i * i).collect();
        assert_eq!(out.into_vec(), expected);
    }

    #[test]
    fn leaf_size_extremes_agree() {
        let p = tabulate(128, |i| i as i64 % 13).unwrap();
        let a = ForkJoinExecutor::new(2, 1).execute(&Sum, &p.clone().view());
        let b = ForkJoinExecutor::new(2, 128).execute(&Sum, &p.clone().view());
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_input() {
        let p = PowerList::singleton(9i64);
        assert_eq!(
            ForkJoinExecutor::new(2, 4).execute(&Sum, &p.clone().view()),
            9
        );
    }

    #[test]
    fn adaptive_matches_sequential() {
        let p = tabulate(1 << 10, |i| i as i64 % 17).unwrap();
        let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        let exec = ForkJoinExecutor::adaptive(2);
        assert!(exec.policy().is_adaptive());
        assert_eq!(exec.execute(&Sum, &p.clone().view()), seq);
        // Adaptive zip recombination preserves order too.
        let q = tabulate(256, |i| i as i64).unwrap();
        let small_cutoff = forkjoin::SplitPolicy::Adaptive(forkjoin::AdaptiveSplit {
            min_leaf: 8,
            ..Default::default()
        });
        let exec = ForkJoinExecutor::with_policy(Arc::new(ForkJoinPool::new(3)), small_cutoff);
        let out = exec.execute(&Square, &q.view());
        let expected: Vec<i64> = (0..256).map(|i: i64| i * i).collect();
        assert_eq!(out.into_vec(), expected);
    }

    #[test]
    fn shared_pool_reuse() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let e1 = ForkJoinExecutor::with_pool(Arc::clone(&pool), 16);
        let e2 = ForkJoinExecutor::with_pool(Arc::clone(&pool), 4);
        let p = tabulate(64, |i| i as i64).unwrap();
        assert_eq!(
            e1.execute(&Sum, &p.clone().view()),
            e2.execute(&Sum, &p.clone().view())
        );
        assert!(pool.metrics().executed > 0);
    }

    #[test]
    fn from_config_resolves_pool_and_policy() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let exec = ForkJoinExecutor::from_config(
            &ExecConfig::par()
                .with_pool(Arc::clone(&pool))
                .with_leaf_size(32),
        );
        assert!(Arc::ptr_eq(exec.pool(), &pool));
        assert_eq!(exec.leaf_size(), 32);
        // No policy in the config -> adaptive by default.
        assert!(ForkJoinExecutor::from_config(&ExecConfig::par())
            .policy()
            .is_adaptive());
    }

    #[test]
    fn auto_tuned_executor_calibrates_once_then_hits() {
        let cache = Arc::new(pltune::PlanCache::new());
        let exec = ForkJoinExecutor::from_config(
            &ExecConfig::par()
                .with_pool(Arc::new(ForkJoinPool::new(2)))
                .auto_tune(Arc::clone(&cache)),
        );
        let p = tabulate(1 << 11, |i| i as i64 % 7).unwrap();
        let seq = SequentialExecutor::new().execute(&Sum, &p.clone().view());
        let ((), report) = plobs::recorded(|| {
            assert_eq!(exec.execute(&Sum, &p.clone().view()), seq);
            assert_eq!(
                exec.try_execute(&Sum, &p.clone().view(), &ExecConfig::par())
                    .ok(),
                Some(seq)
            );
        });
        assert_eq!(report.tune_calibrations, 1, "first execution calibrates");
        assert_eq!(report.tune_hits, 1, "second execution reuses the plan");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn explicit_policy_disables_the_tuner() {
        let cache = Arc::new(pltune::PlanCache::new());
        let exec = ForkJoinExecutor::from_config(
            &ExecConfig::par()
                .with_pool(Arc::new(ForkJoinPool::new(2)))
                .with_leaf_size(32)
                .auto_tune(Arc::clone(&cache)),
        );
        let p = tabulate(256, |i| i as i64).unwrap();
        let (out, report) = plobs::recorded(|| exec.execute(&Sum, &p.clone().view()));
        assert_eq!(out, (0..256).sum());
        assert_eq!(
            report.tunes(),
            0,
            "explicit policies never consult the cache"
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn try_execute_happy_path_matches_execute() {
        let p = tabulate(1 << 10, |i| i as i64 % 23).unwrap();
        let exec = ForkJoinExecutor::new(2, 64);
        let plain = exec.execute(&Sum, &p.clone().view());
        let tried = exec.try_execute(&Sum, &p.clone().view(), &ExecConfig::par());
        assert_eq!(tried.ok(), Some(plain));
    }

    /// Sum whose basic case panics on one poisoned value.
    #[derive(Clone)]
    struct PoisonSum(i64);

    impl PowerFunction for PoisonSum {
        type Elem = i64;
        type Out = i64;
        fn decomposition(&self) -> Decomp {
            Decomp::Tie
        }
        fn basic_case(&self, v: &i64) -> i64 {
            assert!(*v != self.0, "poisoned value {v}");
            *v
        }
        fn create_left(&self) -> Self {
            self.clone()
        }
        fn create_right(&self) -> Self {
            self.clone()
        }
        fn combine(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    #[test]
    fn try_execute_contains_panics_and_pool_survives() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let exec = ForkJoinExecutor::with_pool(Arc::clone(&pool), 1);
        let p = tabulate(256, |i| i as i64).unwrap();
        let err = exec
            .try_execute(&PoisonSum(100), &p.clone().view(), &ExecConfig::par())
            .expect_err("panicking primitive must surface as an error");
        match err {
            ExecError::Panicked(_) => {
                assert_eq!(err.panic_message(), Some("poisoned value 100"));
            }
            other => panic!("expected Panicked, got {other}"),
        }
        // The same pool completes a clean follow-up run.
        assert_eq!(
            exec.try_execute(&Sum, &p.clone().view(), &ExecConfig::par())
                .ok(),
            Some((0..256).sum())
        );
    }

    #[test]
    fn try_execute_honours_pre_cancelled_token() {
        let token = jstreams::CancelToken::new();
        token.cancel(jstreams::CancelReason::User);
        let exec = ForkJoinExecutor::new(2, 64);
        let p = tabulate(128, |i| i as i64).unwrap();
        let err = exec
            .try_execute(&Sum, &p.view(), &ExecConfig::par().with_cancel_token(token))
            .err();
        assert!(matches!(err, Some(ExecError::Cancelled)), "got {err:?}");
    }

    #[test]
    fn try_execute_falls_back_on_shut_down_pool() {
        let pool = Arc::new(ForkJoinPool::new(1));
        let exec = ForkJoinExecutor::with_pool(Arc::clone(&pool), 16);
        pool.shutdown();
        let p = tabulate(64, |i| i as i64).unwrap();
        let (out, report) =
            plobs::recorded(|| exec.try_execute(&Sum, &p.clone().view(), &ExecConfig::par()));
        assert_eq!(out.ok(), Some((0..64).sum()));
        assert_eq!(report.fallbacks_submit, 1);
        assert_eq!(report.splits, 0, "fallback route must not fork");
    }
}
