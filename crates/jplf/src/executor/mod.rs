//! Executors: the separated execution strategies of JPLF.
//!
//! "An important advantage of the framework is the fact that the
//! execution is managed separately from the PowerList function
//! definition" (paper, Section III). The [`Executor`] trait captures
//! that separation: every executor runs any [`PowerFunction`] purely
//! through its four primitives.
//!
//! * [`SequentialExecutor`] — the reference template-method recursion;
//! * [`ForkJoinExecutor`] — multithreading on the work-stealing pool
//!   (JPLF's tested executor, like Java parallel streams);
//! * [`MpiExecutor`] — SPMD execution over the simulated MPI substrate:
//!   scatter of descended leaf problems, local computation, binomial
//!   combine tree.

pub mod forkjoin_exec;
pub mod mpi;
pub mod sequential;

pub use forkjoin_exec::ForkJoinExecutor;
pub use mpi::MpiExecutor;
pub use sequential::SequentialExecutor;

use crate::function::PowerFunction;
use powerlist::PowerView;

pub use jstreams::{ExecConfig, ExecError};

/// A strategy for running [`PowerFunction`]s.
///
/// `Clone + Sync` on the function lets executors replicate instances
/// across workers/ranks; all JPLF-style function objects are cheap
/// parameter carriers, so cloning is trivial.
///
/// Every executor offers two surfaces: the historical infallible
/// [`Executor::execute`], and the fault-tolerant
/// [`Executor::try_execute`] which runs under the session limits of a
/// [`jstreams::ExecConfig`] — the same configuration object the streams
/// front-end consumes — containing panics in the function's primitives
/// and honouring cancel tokens and deadlines at every split, leaf and
/// combine point.
pub trait Executor {
    /// Runs `f` on `input` and returns the function's result.
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync;

    /// Fallibly runs `f` on `input` under the deadline / cancel token of
    /// `cfg`. A panic in any primitive (`basic_case`, `combine`,
    /// `create_left`/`create_right`, `transform_halves`, `leaf_case`)
    /// surfaces as [`ExecError::Panicked`] instead of unwinding, and
    /// trips the run's token so sibling subtrees (or ranks) stop early.
    ///
    /// `cfg`'s pool/policy/rank knobs do **not** reconfigure an already
    /// constructed executor — build one with the `from_config`
    /// constructors for that; only the session limits (deadline, cancel
    /// token, fallback threshold) apply per call.
    fn try_execute<F>(
        &self,
        f: &F,
        input: &PowerView<F::Elem>,
        cfg: &ExecConfig,
    ) -> Result<F::Out, ExecError>
    where
        F: PowerFunction + Clone + Sync;
}
