//! Executors: the separated execution strategies of JPLF.
//!
//! "An important advantage of the framework is the fact that the
//! execution is managed separately from the PowerList function
//! definition" (paper, Section III). The [`Executor`] trait captures
//! that separation: every executor runs any [`PowerFunction`] purely
//! through its four primitives.
//!
//! * [`SequentialExecutor`] — the reference template-method recursion;
//! * [`ForkJoinExecutor`] — multithreading on the work-stealing pool
//!   (JPLF's tested executor, like Java parallel streams);
//! * [`MpiExecutor`] — SPMD execution over the simulated MPI substrate:
//!   scatter of descended leaf problems, local computation, binomial
//!   combine tree.

pub mod forkjoin_exec;
pub mod mpi;
pub mod sequential;

pub use forkjoin_exec::ForkJoinExecutor;
pub use mpi::MpiExecutor;
pub use sequential::SequentialExecutor;

use crate::function::PowerFunction;
use powerlist::PowerView;

/// A strategy for running [`PowerFunction`]s.
///
/// `Clone + Sync` on the function lets executors replicate instances
/// across workers/ranks; all JPLF-style function objects are cheap
/// parameter carriers, so cloning is trivial.
pub trait Executor {
    /// Runs `f` on `input` and returns the function's result.
    fn execute<F>(&self, f: &F, input: &PowerView<F::Elem>) -> F::Out
    where
        F: PowerFunction + Clone + Sync;
}
