//! Property tests of executor equivalence: for random inputs, random
//! leaf sizes, random thread/rank counts, every executor computes the
//! sequential template's answer.

use jplf::{
    compute_plist_parallel, compute_plist_sequential, Decomp, Executor, ForkJoinExecutor,
    MpiExecutor, NWayReduce, PowerFunction, SequentialExecutor,
};
use powerlist::{PList, PowerList};
use proptest::prelude::*;

#[derive(Clone)]
struct AffineThenSum {
    mul: i64,
    add: i64,
}

impl PowerFunction for AffineThenSum {
    type Elem = i64;
    type Out = i64;

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, v: &i64) -> i64 {
        v.wrapping_mul(self.mul).wrapping_add(self.add)
    }

    // Parameters descend unchanged — but through create_*, so a broken
    // descent path would corrupt results.
    fn create_left(&self) -> Self {
        self.clone()
    }

    fn create_right(&self) -> Self {
        self.clone()
    }

    fn combine(&self, l: i64, r: i64) -> i64 {
        l.wrapping_add(r)
    }
}

fn powerlist_i64(max_k: u32) -> impl Strategy<Value = PowerList<i64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1000i64..1000, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn executors_agree_on_random_functions(
        p in powerlist_i64(8),
        mul in -3i64..4,
        add in -10i64..10,
        threads in 1usize..4,
        leaf in 1usize..64,
        ranks in 1usize..9,
    ) {
        let f = AffineThenSum { mul, add };
        let v = p.view();
        let spec = SequentialExecutor::new().execute(&f, &v);
        prop_assert_eq!(ForkJoinExecutor::new(threads, leaf).execute(&f, &v), spec);
        prop_assert_eq!(MpiExecutor::new(ranks).execute(&f, &v), spec);
    }

    #[test]
    fn plist_parallel_equals_sequential(
        v in proptest::collection::vec(-100i64..100, 1..200),
        arity in 2usize..5,
        leaf in 1usize..32,
        threads in 1usize..4,
    ) {
        let p = PList::from_vec(v).unwrap();
        let f = NWayReduce::new(arity, |a: &i64, b: &i64| a + b);
        let seq = compute_plist_sequential(&f, &p);
        let pool = forkjoin::ForkJoinPool::new(threads);
        let par = compute_plist_parallel(&pool, &f, &p, leaf);
        prop_assert_eq!(seq, par);
        // And both equal the plain sum.
        prop_assert_eq!(seq, p.iter().sum::<i64>());
    }

    #[test]
    fn mpi_matches_on_noncommutative(
        v in proptest::collection::vec(0u8..10, 1..65),
        ranks in 1usize..9,
    ) {
        // Pad to the next power of two with a neutral marker digit.
        let mut v = v;
        let n = v.len().next_power_of_two();
        v.resize(n, 0);
        #[derive(Clone)]
        struct Digits;
        impl PowerFunction for Digits {
            type Elem = u8;
            type Out = String;
            fn decomposition(&self) -> Decomp { Decomp::Tie }
            fn basic_case(&self, v: &u8) -> String { v.to_string() }
            fn create_left(&self) -> Self { Digits }
            fn create_right(&self) -> Self { Digits }
            fn combine(&self, l: String, r: String) -> String { l + &r }
        }
        let p = PowerList::from_vec(v).unwrap();
        let view = p.view();
        let spec = SequentialExecutor::new().execute(&Digits, &view);
        prop_assert_eq!(MpiExecutor::new(ranks).execute(&Digits, &view), spec);
    }
}
