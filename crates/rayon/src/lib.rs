//! Offline stand-in for `rayon`.
//!
//! `par_iter()` here yields a plain sequential iterator, so downstream
//! adaptors (`enumerate`, `map`, `sum`, …) are the std ones. This keeps
//! the one bench row that references rayon compiling and honest on a
//! single-core container, where rayon's own pool would also degenerate
//! to sequential execution.

pub mod prelude {
    /// `&self` parallel iteration, sequential in this stand-in.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator `par_iter` returns.
        type Iter: Iterator;

        /// Iterates the collection by reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1.0f64, 2.0, 3.0];
        let sum: f64 = v
            .par_iter()
            .enumerate()
            .map(|(i, &a)| a * (i as f64 + 1.0))
            .sum();
        assert_eq!(sum, 1.0 + 4.0 + 9.0);
    }
}
