//! Emits `BENCH_search_{any,findfirst}.json`: short-circuiting search
//! terminals vs a full-drain equivalent, swept over needle positions.
//!
//! ```text
//! search [--runs R] [--exp K] [--out-dir DIR] [--min-front-speedup X]
//! ```
//!
//! * `BENCH_search_any.json` — `any_match(x == NEEDLE)` vs the
//!   full-drain spelling `filter(x == NEEDLE).count() > 0`, with the
//!   needle planted at the front, early (n/16), middle (n/2) and late
//!   (13n/16) positions, plus an absent row. The absent row also times
//!   a plain `reduce` over the same buffer and records
//!   `absent_overhead_ratio = search_ms / reduce_ms` — the price of the
//!   search driver's checkpoints when nothing ever short-circuits.
//! * `BENCH_search_findfirst.json` — `filter(x == NEEDLE).find_first()`
//!   vs draining `filter(..).to_vec()` and taking the head, same sweep.
//!
//! The bin asserts the observability contract on recorded runs: a
//! mid-or-later needle must record `Found` cancellations (for
//! `any_match`) and at least one pruned subtree (`early_exits` ≥ 1,
//! `leaves_pruned` ≥ 1), while the absent row must record none. With
//! `--min-front-speedup X` it additionally gates
//! `front_speedup ≥ X` (the ci.sh smoke gate passes 3).

use forkjoin::ForkJoinPool;
use jstreams::{stream_support, SliceSpliterator};
use plbench::{ms, random_ints, time_min, PAPER_RUNS};
use plobs::RunReport;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Outside `random_ints`' value range (−1 000 000‥1 000 000), so a
/// buffer contains the needle exactly where we plant it.
const NEEDLE: i64 = 2_000_000;

struct Args {
    runs: usize,
    exp: u32,
    out_dir: PathBuf,
    min_front_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 18,
        out_dir: PathBuf::from("."),
        min_front_speedup: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            "--min-front-speedup" => {
                args.min_front_speedup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-front-speedup needs a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times the search and full-drain arms and records one report each:
/// `(search_ms, drain_ms, search_report, drain_report)`. Panics when the
/// arms disagree.
fn ab<R: PartialEq + std::fmt::Debug>(
    runs: usize,
    want_prunes: bool,
    mut search: impl FnMut() -> R,
    mut drain: impl FnMut() -> R,
) -> (f64, f64, RunReport, RunReport) {
    for _ in 0..2 {
        let a = search();
        let b = drain();
        assert_eq!(a, b, "search and full-drain arms must agree");
    }
    // Minimum-of-runs: a front-needle arm finishes in microseconds, so
    // a single scheduler preemption would dominate an average.
    let (_, t_search) = time_min(runs, &mut search);
    let (_, t_drain) = time_min(runs, &mut drain);
    // Whether subtrees are still pending when the short-circuit fires
    // is schedule-dependent; when the sweep position should prune, keep
    // the report of the first schedule that did (bounded retries).
    let mut rep_search = plobs::recorded(&mut search).1;
    if want_prunes {
        for _ in 0..20 {
            if rep_search.early_exits >= 1 {
                break;
            }
            rep_search = plobs::recorded(&mut search).1;
        }
    }
    let (_, rep_drain) = plobs::recorded(&mut drain);
    (ms(t_search), ms(t_drain), rep_search, rep_drain)
}

/// One sweep entry as a JSON object.
#[allow(clippy::too_many_arguments)]
fn sweep_entry(
    pos: &str,
    needle_index: Option<usize>,
    found: bool,
    search_ms: f64,
    drain_ms: f64,
    search_report: &RunReport,
    drain_report: &RunReport,
) -> String {
    format!(
        concat!(
            "{{\"pos\":\"{}\",\"needle_index\":{},\"found\":{},",
            "\"search_ms\":{:.6},\"drain_ms\":{:.6},\"speedup\":{:.6},",
            "\"search_report\":{},\"drain_report\":{}}}"
        ),
        pos,
        needle_index.map_or_else(|| "null".to_string(), |i| i.to_string()),
        found,
        search_ms,
        drain_ms,
        drain_ms / search_ms.max(1e-12),
        search_report.to_json(),
        drain_report.to_json()
    )
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed search row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

/// Clones the base buffer and plants the needle (if any).
fn plant(base: &[i64], at: Option<usize>) -> Arc<Vec<i64>> {
    let mut v = base.to_vec();
    if let Some(i) = at {
        v[i] = NEEDLE;
    }
    Arc::new(v)
}

/// The sweep positions: label → planted index (None = absent).
fn positions(n: usize) -> Vec<(&'static str, Option<usize>)> {
    vec![
        ("front", Some(0)),
        ("early", Some(n / 16)),
        ("middle", Some(n / 2)),
        // 13n/16 — late, but with at least one whole leaf still ahead
        // on any power-of-two leaf grid of 16+ leaves. A needle at the
        // very tail (say 15n/16 on a 16-leaf split) leaves nothing
        // behind it to prune, so the observability asserts below could
        // never hold there, even though the short-circuit fires.
        ("late", Some(n / 16 * 13)),
        ("absent", None),
    ]
}

/// Asserts the pruning observability contract for one sweep entry.
fn check_pruning(bench: &str, pos: &str, planted: Option<usize>, n: usize, rep: &RunReport) {
    let late_enough = planted.is_some_and(|i| i >= n / 2);
    if late_enough {
        assert!(
            rep.early_exits >= 1,
            "{bench}/{pos}: a needle at {planted:?} must prune subtrees, got {rep:?}"
        );
        assert!(
            rep.leaves_pruned >= 1,
            "{bench}/{pos}: pruned-leaf counter must move, got {rep:?}"
        );
    }
    if planted.is_none() {
        assert_eq!(
            rep.cancels_found, 0,
            "{bench}/{pos}: an absent needle must not record Found"
        );
        assert_eq!(
            rep.early_exits, 0,
            "{bench}/{pos}: an absent needle must not prune"
        );
    }
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    // A single worker drains leaves in pure depth-first encounter
    // order, which is fine: the late needle sits at 13n/16 so the tail
    // subtrees behind it still get pruned at their entry checkpoints,
    // and oversubscribing a small box would only let leaves run out of
    // encounter order (a front needle could then fire after most of the
    // buffer had already been scanned, destroying the measurement).
    let threads = num_cpus::get();
    let pool = Arc::new(ForkJoinPool::new(threads));
    // Pin the leaf grid so the sweep positions mean the same thing on
    // every box: the default policy scales leaves with the thread count
    // (a 1-thread pool would carve 2^18 into just 4 leaves, putting the
    // 13n/16 "late" needle inside the final leaf with nothing behind it
    // to prune). 64 leaves keep every planted position strictly inside
    // the tree.
    let leaf = (n / 64).max(64);
    println!(
        "search: n = 2^{} = {n}, {} runs per arm, {threads} threads",
        args.exp, args.runs
    );

    let base: Vec<i64> = random_ints(n, 0x5EED_F00D).into_vec();

    // ---- BENCH_search_any.json -------------------------------------
    let mut entries = Vec::new();
    let mut front_speedup = 0.0;
    let mut absent_overhead_ratio = 0.0;
    for (pos, at) in positions(n) {
        let data = plant(&base, at);
        let d1 = Arc::clone(&data);
        let p1 = Arc::clone(&pool);
        let search = move || {
            stream_support(SliceSpliterator::shared(Arc::clone(&d1)), true)
                .with_pool(Arc::clone(&p1))
                .with_leaf_size(leaf)
                .any_match(|x: &i64| *x == NEEDLE)
        };
        let d2 = Arc::clone(&data);
        let p2 = Arc::clone(&pool);
        let drain = move || {
            stream_support(SliceSpliterator::shared(Arc::clone(&d2)), true)
                .with_pool(Arc::clone(&p2))
                .with_leaf_size(leaf)
                .filter(|x: &i64| *x == NEEDLE)
                .count()
                > 0
        };
        let late_enough = at.is_some_and(|i| i >= n / 2);
        let (search_ms, drain_ms, rep_s, rep_d) = ab(args.runs, late_enough, search, drain);
        check_pruning("any_match", pos, at, n, &rep_s);
        if at.is_some() {
            assert!(
                rep_s.cancels_found >= 1,
                "any_match/{pos}: a hit must trip Found"
            );
        }
        if pos == "front" {
            front_speedup = drain_ms / search_ms.max(1e-12);
        }
        if pos == "absent" {
            // The driver's overhead when nothing short-circuits,
            // against a plain full reduction of the same buffer.
            let d3 = Arc::clone(&data);
            let p3 = Arc::clone(&pool);
            let (_, t_reduce) = time_min(args.runs, move || {
                stream_support(SliceSpliterator::shared(Arc::clone(&d3)), true)
                    .with_pool(Arc::clone(&p3))
                    .with_leaf_size(leaf)
                    .reduce(0i64, |a, b| a.wrapping_add(b))
            });
            absent_overhead_ratio = search_ms / ms(t_reduce).max(1e-12);
        }
        println!(
            "  any/{pos:<7} search {search_ms:>9.4} ms | drain {drain_ms:>9.4} ms | x{:.2} (pruned {} subtrees)",
            drain_ms / search_ms.max(1e-12),
            rep_s.early_exits
        );
        entries.push(sweep_entry(
            pos,
            at,
            at.is_some(),
            search_ms,
            drain_ms,
            &rep_s,
            &rep_d,
        ));
    }
    let row = format!(
        concat!(
            "{{\"schema\":\"plbench.search.v1\",\"bench\":\"any_match\",\"n\":{},",
            "\"runs\":{},\"threads\":{},\"needle\":{},",
            "\"front_speedup\":{:.6},\"absent_overhead_ratio\":{:.6},",
            "\"sweep\":[{}]}}"
        ),
        n,
        args.runs,
        threads,
        NEEDLE,
        front_speedup,
        absent_overhead_ratio,
        entries.join(",")
    );
    write_row(&args.out_dir, "BENCH_search_any.json", &row);
    println!(
        "  any_match: front speedup x{front_speedup:.2}, absent overhead x{absent_overhead_ratio:.3} of plain reduce"
    );
    if args.min_front_speedup > 0.0 {
        assert!(
            front_speedup >= args.min_front_speedup,
            "front-needle any_match speedup x{front_speedup:.2} below the x{:.2} gate",
            args.min_front_speedup
        );
    }

    // ---- BENCH_search_findfirst.json --------------------------------
    let mut entries = Vec::new();
    let mut ff_front_speedup = 0.0;
    for (pos, at) in positions(n) {
        let data = plant(&base, at);
        let d1 = Arc::clone(&data);
        let p1 = Arc::clone(&pool);
        let search = move || {
            stream_support(SliceSpliterator::shared(Arc::clone(&d1)), true)
                .with_pool(Arc::clone(&p1))
                .with_leaf_size(leaf)
                .filter(|x: &i64| *x == NEEDLE)
                .find_first()
        };
        let d2 = Arc::clone(&data);
        let p2 = Arc::clone(&pool);
        let drain = move || {
            stream_support(SliceSpliterator::shared(Arc::clone(&d2)), true)
                .with_pool(Arc::clone(&p2))
                .with_leaf_size(leaf)
                .filter(|x: &i64| *x == NEEDLE)
                .to_vec()
                .first()
                .cloned()
        };
        let late_enough = at.is_some_and(|i| i >= n / 2);
        let (search_ms, drain_ms, rep_s, rep_d) = ab(args.runs, late_enough, search, drain);
        check_pruning("find_first", pos, at, n, &rep_s);
        if pos == "front" {
            ff_front_speedup = drain_ms / search_ms.max(1e-12);
        }
        println!(
            "  first/{pos:<7} search {search_ms:>9.4} ms | drain {drain_ms:>9.4} ms | x{:.2} (pruned {} subtrees)",
            drain_ms / search_ms.max(1e-12),
            rep_s.early_exits
        );
        entries.push(sweep_entry(
            pos,
            at,
            at.is_some(),
            search_ms,
            drain_ms,
            &rep_s,
            &rep_d,
        ));
    }
    let row = format!(
        concat!(
            "{{\"schema\":\"plbench.search.v1\",\"bench\":\"find_first\",\"n\":{},",
            "\"runs\":{},\"threads\":{},\"needle\":{},",
            "\"front_speedup\":{:.6},",
            "\"sweep\":[{}]}}"
        ),
        n,
        args.runs,
        threads,
        NEEDLE,
        ff_front_speedup,
        entries.join(",")
    );
    write_row(&args.out_dir, "BENCH_search_findfirst.json", &row);
    println!("  find_first: front speedup x{ff_front_speedup:.2}");
}
