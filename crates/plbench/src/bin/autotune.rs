//! Emits `BENCH_autotune_*.json` A/B rows: self-tuned execution
//! (cold calibration, then warm cache hits) against the fixed-policy
//! candidate grid.
//!
//! ```text
//! autotune [--runs R] [--exp K] [--out-dir DIR]
//! ```
//!
//! Two rows are produced, one per workload shape:
//!
//! * `BENCH_autotune_reduce.json` — a uniform-cost reduce at `2^K`
//!   (default 2^18).
//! * `BENCH_autotune_fused_poly.json` — a fused map+reduce polynomial
//!   kernel (an LCG spin per element driven by the element value), the
//!   shape the adapter-fusion leaf route accelerates.
//!
//! Each workload runs four arms:
//!
//! 1. **fixed grid** — every fixed candidate from
//!    [`pltune::candidate_policies`] plus a deliberately pathological
//!    `Fixed(1)` (split down to single elements). The best and worst of
//!    these bound what tuning can achieve; the acceptance criteria are
//!    `warm_vs_best_ratio ≤ 1.1` (a cache hit is within 10% of the best
//!    fixed policy) and `warm_vs_worst_speedup ≥ 1.3` (it beats the
//!    worst fixed candidate by ≥1.3×), judged on the paper-scale
//!    release run.
//! 2. **cold** — a fresh [`PlanCache`] per run, so every run pays the
//!    first-sight calibration sweep. The embedded `cold_report` proves
//!    it (`tune.calibrations == 1`).
//! 3. **warm** — one shared cache, primed once, then timed: every run
//!    is a cache hit. The embedded `warm_report` proves run 2+ skipped
//!    calibration (`tune.hits ≥ 1`, `tune.calibrations == 0`) and the
//!    bin asserts it in-process (the `run-2 cache hit OK` marker the CI
//!    gate greps).
//! 4. **persisted** — the warm cache round-trips through
//!    [`PlanCache::save`]/[`PlanCache::load`] and the reloaded copy
//!    serves a hit without recalibrating — the cross-process story.
//!
//! Every row is checked against the strict JSON validator before being
//! written. Timings are honest wall-clock averages on the build
//! machine.

use forkjoin::SplitPolicy;
use jstreams::{stream_support, SliceSpliterator};
use plbench::{ms, time_avg, PAPER_RUNS};
use plobs::RunReport;
use pltune::PlanCache;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Spin iterations per element of the fused polynomial kernel.
const POLY_ITERS: u64 = 8;

struct Args {
    runs: usize,
    exp: u32,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 18,
        out_dir: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// A fixed-point LCG spin: `iters` dependent multiply-adds, so the
/// optimiser cannot elide the work and cost scales linearly with
/// `iters`.
fn spin(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

/// One timed fixed-policy arm: `(leaf_size, avg_ms)`.
struct FixedArm {
    leaf: usize,
    avg_ms: f64,
}

/// Times the workload under every fixed candidate leaf size (2 warm-ups
/// per arm, then the run average).
fn fixed_grid(
    runs: usize,
    leaves: &[usize],
    mut f: impl FnMut(SplitPolicy) -> u64,
) -> Vec<FixedArm> {
    leaves
        .iter()
        .map(|&leaf| {
            let policy = SplitPolicy::Fixed(leaf);
            for _ in 0..2 {
                f(policy);
            }
            let (_, t) = time_avg(runs, || f(policy));
            FixedArm {
                leaf,
                avg_ms: ms(t),
            }
        })
        .collect()
}

/// The result of the tuned arms of one workload.
struct TunedArms {
    cold_ms: f64,
    warm_ms: f64,
    cold_report: RunReport,
    warm_report: RunReport,
    winner: SplitPolicy,
}

/// Runs the cold arm (fresh cache per run — every run calibrates) and
/// the warm arm (one shared cache — every timed run hits), asserting
/// the deterministic tune-counter facts in-process.
fn tuned_arms(
    bench: &str,
    runs: usize,
    mut f: impl FnMut(Arc<PlanCache>) -> u64,
) -> (Arc<PlanCache>, TunedArms) {
    // Cold: a fresh cache every run, so each collect pays first-sight
    // calibration. Warm the pool itself first with a throwaway cache.
    f(Arc::new(PlanCache::new()));
    let (_, t_cold) = time_avg(runs, || f(Arc::new(PlanCache::new())));
    let ((), cold_report) = plobs::recorded(|| {
        f(Arc::new(PlanCache::new()));
    });
    assert_eq!(
        cold_report.tune_calibrations, 1,
        "{bench}: a cold cache must calibrate exactly once"
    );

    // Warm: prime one shared cache (run 1 calibrates), then every
    // further run must be served by the installed plan.
    let cache = Arc::new(PlanCache::new());
    let ((), prime_report) = plobs::recorded(|| {
        f(Arc::clone(&cache));
    });
    assert_eq!(
        prime_report.tune_calibrations, 1,
        "{bench}: priming run must calibrate"
    );
    for _ in 0..2 {
        f(Arc::clone(&cache));
    }
    let (_, t_warm) = time_avg(runs, || f(Arc::clone(&cache)));
    let ((), warm_report) = plobs::recorded(|| {
        f(Arc::clone(&cache));
    });
    assert!(
        warm_report.tune_hits >= 1 && warm_report.tune_calibrations == 0,
        "{bench}: warmed cache must hit without recalibrating: {warm_report:?}"
    );
    println!(
        "{bench}: run-2 cache hit OK (hits={}, calibrations=0)",
        warm_report.tune_hits
    );

    let winner = cache
        .ready_entries()
        .first()
        .expect("warm cache holds the installed plan")
        .1
        .policy;
    (
        cache,
        TunedArms {
            cold_ms: ms(t_cold),
            warm_ms: ms(t_warm),
            cold_report,
            warm_report,
            winner,
        },
    )
}

/// Round-trips `cache` through save/load and proves the reloaded copy
/// serves a hit without recalibrating (the cross-process persistence
/// story), returning the persisted path.
fn persistence_check(
    bench: &str,
    out_dir: &PathBuf,
    cache: &PlanCache,
    mut f: impl FnMut(Arc<PlanCache>) -> u64,
) -> PathBuf {
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(format!("autotune_plan_cache_{bench}.json"));
    cache.save(&path).expect("persist plan cache");
    let reloaded = Arc::new(PlanCache::load(&path).expect("reload plan cache"));
    let ((), report) = plobs::recorded(|| {
        f(Arc::clone(&reloaded));
    });
    assert!(
        report.tune_hits >= 1 && report.tune_calibrations == 0,
        "{bench}: a reloaded cache must hit without recalibrating: {report:?}"
    );
    println!(
        "{bench}: persisted cache reload hit OK ({})",
        path.display()
    );
    path
}

/// Renders one `plbench.autotune.v1` row.
#[allow(clippy::too_many_arguments)]
fn row_json(
    bench: &str,
    n: usize,
    runs: usize,
    threads: usize,
    grid: &[FixedArm],
    arms: &TunedArms,
) -> String {
    let best = grid
        .iter()
        .min_by(|a, b| a.avg_ms.total_cmp(&b.avg_ms))
        .expect("non-empty grid");
    let worst = grid
        .iter()
        .max_by(|a, b| a.avg_ms.total_cmp(&b.avg_ms))
        .expect("non-empty grid");
    let mut fixed = String::from("[");
    for (i, arm) in grid.iter().enumerate() {
        if i > 0 {
            fixed.push(',');
        }
        fixed.push_str(&format!(
            "{{\"leaf\":{},\"ms\":{:.6}}}",
            arm.leaf, arm.avg_ms
        ));
    }
    fixed.push(']');
    format!(
        concat!(
            "{{\"schema\":\"plbench.autotune.v1\",\"bench\":\"{}\",\"n\":{},\"runs\":{},",
            "\"threads\":{},\"fixed_arms\":{},",
            "\"best_fixed_leaf\":{},\"best_fixed_ms\":{:.6},",
            "\"worst_fixed_leaf\":{},\"worst_fixed_ms\":{:.6},",
            "\"cold_ms\":{:.6},\"warm_ms\":{:.6},",
            "\"warm_vs_best_ratio\":{:.6},\"warm_vs_worst_speedup\":{:.6},",
            "\"winner\":\"{}\",",
            "\"cold_report\":{},\"warm_report\":{}}}"
        ),
        bench,
        n,
        runs,
        threads,
        fixed,
        best.leaf,
        best.avg_ms,
        worst.leaf,
        worst.avg_ms,
        arms.cold_ms,
        arms.warm_ms,
        arms.warm_ms / best.avg_ms.max(1e-12),
        worst.avg_ms / arms.warm_ms.max(1e-12),
        plobs::json::escape(&format!("{:?}", arms.winner)),
        arms.cold_report.to_json(),
        arms.warm_report.to_json()
    )
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed autotune row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

fn print_arms(label: &str, grid: &[FixedArm], arms: &TunedArms) {
    println!("\n{label}:");
    for arm in grid {
        println!("  fixed leaf {:>8}: {:.3} ms", arm.leaf, arm.avg_ms);
    }
    println!(
        "  cold (calibrating) {:.3} ms | warm (cache hit) {:.3} ms | winner {:?}",
        arms.cold_ms, arms.warm_ms, arms.winner
    );
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    let threads = num_cpus::get();
    // The tuner's own fixed candidates, plus a deliberately pathological
    // single-element leaf as the grid's worst case: the split overhead
    // it pays per element is exactly what a tuned plan avoids.
    let mut leaves: Vec<usize> = pltune::candidate_policies(n, threads)
        .into_iter()
        .filter_map(|p| match p {
            SplitPolicy::Fixed(leaf) => Some(leaf),
            SplitPolicy::Adaptive(_) => None,
        })
        .collect();
    if !leaves.contains(&1) {
        leaves.push(1);
    }
    println!(
        "autotune: n = 2^{} = {n}, {} runs per arm, {} threads, fixed grid {leaves:?}",
        args.exp, args.runs, threads
    );

    // Workload 1: uniform-cost reduce.
    let ints: Vec<i64> = (0..n as i64)
        .map(|i| i.wrapping_mul(0x9E37) % 1009)
        .collect();
    let data = ints.clone();
    let grid = fixed_grid(args.runs, &leaves, move |policy| {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .with_split_policy(policy)
            .reduce(0i64, |a, b| a + b) as u64
    });
    let data = ints.clone();
    let tuned_reduce = move |cache: Arc<PlanCache>| {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .with_auto_tuning(cache)
            .reduce(0i64, |a, b| a + b) as u64
    };
    let (cache, arms) = tuned_arms("reduce", args.runs, tuned_reduce.clone());
    persistence_check("reduce", &args.out_dir, &cache, tuned_reduce);
    print_arms("uniform reduce", &grid, &arms);
    let row = row_json("reduce", n, args.runs, threads, &grid, &arms);
    write_row(&args.out_dir, "BENCH_autotune_reduce.json", &row);

    // Workload 2: fused polynomial kernel — map(spin) + reduce, the
    // shape the adapter-fusion leaf route runs without cloning drains.
    let work: Vec<u64> = (0..n as u64).collect();
    let data = work.clone();
    let grid = fixed_grid(args.runs, &leaves, move |policy| {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .with_split_policy(policy)
            .map(|x| spin(POLY_ITERS, x))
            .reduce(0u64, |a, b| a.wrapping_add(b))
    });
    let data = work.clone();
    let tuned_poly = move |cache: Arc<PlanCache>| {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .with_auto_tuning(cache)
            .map(|x| spin(POLY_ITERS, x))
            .reduce(0u64, |a, b| a.wrapping_add(b))
    };
    let (cache, arms) = tuned_arms("fused_poly", args.runs, tuned_poly.clone());
    persistence_check("fused_poly", &args.out_dir, &cache, tuned_poly);
    print_arms("fused poly", &grid, &arms);
    let row = row_json("fused_poly", n, args.runs, threads, &grid, &arms);
    write_row(&args.out_dir, "BENCH_autotune_fused_poly.json", &row);
}
