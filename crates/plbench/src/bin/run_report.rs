//! Emits `BENCH_runreport_*.json` trajectory rows from instrumented runs.
//!
//! ```text
//! run_report [--runs R] [--exp K] [--out-dir DIR]
//! ```
//!
//! Two rows are produced, one per workload:
//!
//! * `BENCH_runreport_reduce.json` — a tie-decomposed reduce at `2^K`
//!   (default 2^18), with the A/B overhead columns: `baseline_ms` (no
//!   sink installed — the `plobs::enabled()` fast path), `noop_sink_ms`
//!   (a do-nothing sink installed, paying event construction and
//!   dispatch), and `recorded_ms` (a full [`plobs::RunRecorder`]).
//!   The baseline/noop pair is the measured form of the
//!   zero-cost-when-disabled contract.
//! * `BENCH_runreport_poly.json` — the paper's polynomial evaluation
//!   through the parallel stream collect.
//!
//! Each row embeds the aggregated [`plobs::RunReport`] (split depth,
//! leaf-route histogram, phase shares, steal counts) and is checked
//! against the strict JSON validator before it is written, so a
//! malformed report fails the run rather than polluting a trajectory.

use jstreams::Decomposition;
use plbench::{ms, random_coeffs, random_ints, time_avg, PAPER_RUNS};
use plobs::{Event, EventSink, RunReport};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

const EVAL_POINT: f64 = 0.9999993;

/// Sink that receives every event and drops it — the "B" arm of the
/// overhead row.
struct NoopSink;

impl EventSink for NoopSink {
    fn record(&self, _event: &Event) {}
}

struct Args {
    runs: usize,
    exp: u32,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 18,
        out_dir: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One trajectory row: identification, the A/B/recorded timings, and
/// the embedded report.
fn row_json(
    bench: &str,
    n: usize,
    runs: usize,
    baseline_ms: f64,
    noop_sink_ms: f64,
    recorded_ms: f64,
    report: &RunReport,
) -> String {
    let overhead = if baseline_ms > 0.0 {
        noop_sink_ms / baseline_ms
    } else {
        1.0
    };
    format!(
        concat!(
            "{{\"schema\":\"plbench.runreport.v1\",\"bench\":\"{}\",\"n\":{},\"runs\":{},",
            "\"baseline_ms\":{:.6},\"noop_sink_ms\":{:.6},\"recorded_ms\":{:.6},",
            "\"noop_overhead_ratio\":{:.6},\"report\":{}}}"
        ),
        bench,
        n,
        runs,
        baseline_ms,
        noop_sink_ms,
        recorded_ms,
        overhead,
        report.to_json()
    )
}

/// Times `f` three ways — no sink, no-op sink, recorder — and returns
/// the three averages plus the recorded report.
fn abx<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, f64, f64, RunReport) {
    // Warm caches and the allocator so the first arm is not charged
    // for one-time costs.
    for _ in 0..2 {
        f();
    }
    let (_, baseline) = time_avg(runs, &mut f);
    // The no-op sink still exercises the full emit path (timestamping,
    // event construction, dynamic dispatch).
    plobs::install(Arc::new(NoopSink));
    let (_, noop) = time_avg(runs, &mut f);
    plobs::uninstall();
    let mut recorded_total = 0.0f64;
    let mut report = RunReport::default();
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        let (_, r) = plobs::recorded(&mut f);
        recorded_total += t0.elapsed().as_secs_f64() * 1e3;
        report = r;
    }
    (ms(baseline), ms(noop), recorded_total / runs as f64, report)
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed RunReport row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    println!(
        "run_report: n = 2^{} = {n}, {} runs per arm",
        args.exp, args.runs
    );

    // Workload 1: tie reduce — the A/B overhead row.
    let ints = random_ints(n, 0x5EED);
    let (baseline, noop, recorded, report) = abx(args.runs, || {
        plalgo::reduce_stream(ints.clone(), Decomposition::Tie, 0i64, |a, b| a + b)
    });
    println!("\nreduce 2^{}:", args.exp);
    println!(
        "  baseline {baseline:.3} ms | noop sink {noop:.3} ms (ratio {:.3}) | recorded {recorded:.3} ms",
        noop / baseline.max(1e-12)
    );
    println!("{}", report.tree_summary());
    let row = row_json("reduce", n, args.runs, baseline, noop, recorded, &report);
    write_row(&args.out_dir, "BENCH_runreport_reduce.json", &row);

    // Workload 2: the paper's polynomial evaluation.
    let coeffs = random_coeffs(n, 0xC0FFEE);
    let (baseline, noop, recorded, report) = abx(args.runs, || {
        plalgo::eval_par_stream(coeffs.clone(), EVAL_POINT)
    });
    println!("\npolynomial 2^{}:", args.exp);
    println!(
        "  baseline {baseline:.3} ms | noop sink {noop:.3} ms (ratio {:.3}) | recorded {recorded:.3} ms",
        noop / baseline.max(1e-12)
    );
    println!("{}", report.tree_summary());
    let row = row_json(
        "polynomial",
        n,
        args.runs,
        baseline,
        noop,
        recorded,
        &report,
    );
    write_row(&args.out_dir, "BENCH_runreport_poly.json", &row);
}
