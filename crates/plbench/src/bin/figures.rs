//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures fig3 [--jvm-artifact] [--measure-max-exp K] [--runs R]
//! figures fig4 [--jvm-artifact] [--measure-max-exp K] [--runs R]
//! figures mpi    [--runs R]
//! figures tiezip [--runs R]
//! figures all
//! ```
//!
//! Every figure prints **two** series:
//!
//! * `measured` — real wall-clock on this host (both the sequential
//!   stream baseline and the parallel PowerList collect actually run;
//!   on a 1-core container the parallel side cannot win, which the
//!   output says explicitly);
//! * `simulated-8-core` — the calibrated cost-model prediction from the
//!   `simsched` crate, which is the series whose *shape* reproduces the
//!   paper's 8-core plots (see DESIGN.md's substitution table).
//!
//! The paper sweeps polynomial degrees 2^20..2^26 with 5-run averages;
//! `--measure-max-exp` caps the *measured* sweep (default 22) so the
//! harness completes in sensible time on small hosts, while the
//! simulated series always covers the full 2^20..2^26 range.

use plbench::{ms, random_coeffs, time_avg, PAPER_RUNS};
use simsched::{predict_poly, MachineModel};
use std::sync::Arc;

const LO_EXP: u32 = 20;
const HI_EXP: u32 = 26;
const EVAL_POINT: f64 = 0.9999993;

struct Args {
    command: String,
    jvm_artifact: bool,
    measure_max_exp: u32,
    runs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        jvm_artifact: false,
        measure_max_exp: 22,
        runs: PAPER_RUNS,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "fig3" | "fig4" | "mpi" | "tiezip" | "all" => args.command = a,
            "--jvm-artifact" => args.jvm_artifact = true,
            "--measure-max-exp" => {
                args.measure_max_exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--measure-max-exp needs an integer");
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Measured sequential/parallel times at size `n` (averaged).
fn measure(n: usize, runs: usize) -> (f64, f64) {
    let coeffs = random_coeffs(n, 0xC0FFEE);
    let pool = Arc::new(forkjoin::ForkJoinPool::with_default_parallelism());
    let (_, seq) = time_avg(runs, || plalgo::eval_seq_stream(coeffs.clone(), EVAL_POINT));
    let (_, par) = time_avg(runs, || {
        plalgo::eval_par_stream_with(coeffs.clone(), EVAL_POINT, Some(Arc::clone(&pool)), None)
    });
    (ms(seq), ms(par))
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

fn fig3(args: &Args) {
    header("Figure 3: speedup of the parallel execution (seq_time / par_time)");
    println!(
        "host: {} core(s); measured series capped at 2^{}; simulated series: 8 cores (paper machine)",
        num_cpus::get(),
        args.measure_max_exp
    );
    println!(
        "{:>6}  {:>16}  {:>20}",
        "n", "measured speedup", "simulated-8c speedup"
    );
    let machine = MachineModel::paper_8core();
    for k in LO_EXP..=HI_EXP {
        let n = 1usize << k;
        let sim = predict_poly(&machine, n, None, args.jvm_artifact);
        let measured = if k <= args.measure_max_exp {
            let (seq, par) = measure(n, args.runs);
            format!("{:>16.2}", seq / par)
        } else {
            format!("{:>16}", "-")
        };
        println!("2^{k:<4}  {measured}  {:>20.2}", sim.speedup);
    }
    if args.jvm_artifact {
        println!(
            "note: --jvm-artifact models the paper's observed JIT anomaly at 2^24 \
             (sequential ~3x faster than at 2^23)"
        );
    }
}

fn fig4(args: &Args) {
    header("Figure 4: execution times (ms) for sequential and parallel executions");
    println!(
        "{:>6}  {:>12} {:>12}  {:>14} {:>14}",
        "n", "meas seq", "meas par", "sim-8c seq", "sim-8c par"
    );
    let machine = MachineModel::paper_8core();
    for k in LO_EXP..=HI_EXP {
        let n = 1usize << k;
        let sim = predict_poly(&machine, n, None, args.jvm_artifact);
        let (mseq, mpar) = if k <= args.measure_max_exp {
            let (s, p) = measure(n, args.runs);
            (format!("{s:>12.2}"), format!("{p:>12.2}"))
        } else {
            (format!("{:>12}", "-"), format!("{:>12}", "-"))
        };
        println!(
            "2^{k:<4}  {mseq} {mpar}  {:>14.2} {:>14.2}",
            sim.seq_ms, sim.par_ms
        );
    }
}

fn mpi(args: &Args) {
    header("MPI ablation: simulated-rank scaling of the vp function (Section III claim)");
    let n = 1usize << 18;
    let coeffs = random_coeffs(n, 0xBEEF);
    let view = coeffs.clone().view();
    use jplf::Executor;
    let baseline = {
        let (_, d) = time_avg(args.runs, || {
            jplf::SequentialExecutor::new().execute(&plalgo::VpFunction::new(EVAL_POINT), &view)
        });
        ms(d)
    };
    println!("n = 2^18; sequential executor: {baseline:.2} ms");
    println!(
        "{:>6}  {:>12}  {:>18}",
        "ranks", "meas ms", "sim-8c speedup"
    );
    let machine = MachineModel::paper_8core();
    for ranks in [1usize, 2, 4, 8] {
        let exec = jplf::MpiExecutor::new(ranks);
        let (_, d) = time_avg(args.runs, || {
            exec.execute(&plalgo::VpFunction::new(EVAL_POINT), &view)
        });
        let sim = predict_poly(&machine.with_cores(ranks), n, None, false);
        println!("{ranks:>6}  {:>12.2}  {:>18.2}", ms(d), sim.speedup);
    }
}

fn tiezip(args: &Args) {
    header("Ablation A: tie vs zip decomposition for a collect-based map");
    let model = simsched::MapCostModel::default();
    println!(
        "{:>6}  {:>12} {:>12}  {:>14} {:>14}",
        "n", "meas tie ms", "meas zip ms", "sim-8c tie ms", "sim-8c zip ms"
    );
    for k in [16u32, 18, 20] {
        let n = 1usize << k;
        let data = plbench::random_ints(n, 0xA11CE);
        use jstreams::Decomposition;
        let (_, tie) = time_avg(args.runs, || {
            plalgo::map_stream(data.clone(), Decomposition::Tie, |x| x * 3 + 1)
        });
        let (_, zip) = time_avg(args.runs, || {
            plalgo::map_stream(data.clone(), Decomposition::Zip, |x| x * 3 + 1)
        });
        let (sim_tie, sim_zip) = simsched::predict_map_collect(8, n, n / 32, &model);
        println!(
            "2^{k:<4}  {:>12.2} {:>12.2}  {:>14.2} {:>14.2}",
            ms(tie),
            ms(zip),
            sim_tie,
            sim_zip
        );
    }
    println!(
        "tie leaves are contiguous (linear distribution); zip leaves are strided residue classes"
    );
}

fn main() {
    let args = parse_args();
    println!("powerlist-streams figure harness (paper: Enhancing Java Streams API with PowerList Computation)");
    match args.command.as_str() {
        "fig3" => fig3(&args),
        "fig4" => fig4(&args),
        "mpi" => mpi(&args),
        "tiezip" => tiezip(&args),
        "all" => {
            fig3(&args);
            fig4(&args);
            mpi(&args);
            tiezip(&args);
        }
        _ => unreachable!(),
    }
}
