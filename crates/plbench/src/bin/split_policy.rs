//! Emits `BENCH_splitpolicy_*.json` A/B rows: Fixed vs Adaptive splitting.
//!
//! ```text
//! split_policy [--runs R] [--exp K] [--out-dir DIR]
//! ```
//!
//! Three rows are produced, one per workload shape:
//!
//! * `BENCH_splitpolicy_reduce.json` — a uniform-cost reduce at `2^K`
//!   (default 2^16). Per-element cost is flat, so the static
//!   `default_leaf_size` is already near-optimal; the adaptive policy
//!   must stay within ~10% of it (its acceptance bound).
//! * `BENCH_splitpolicy_poly.json` — a skewed-cost map+reduce: the
//!   first `1/64` of the elements carry ~256× the work of the rest (a
//!   spin kernel driven by the element value). A static leaf computed
//!   from `n/(4·threads)` packs the whole hot prefix into a handful of
//!   leaves; demand-driven splitting descends further while thieves are
//!   active, spreading the hot region across more tasks.
//! * `BENCH_splitpolicy_filtered.json` — a non-SIZED pipeline (filter
//!   keep-half, then reduce). The size estimate is an upper bound here,
//!   so the old size-gated recursion under-split; the row also records
//!   each policy's split depth so the fix is visible in trajectories.
//!
//! Each row carries `fixed_ms` / `adaptive_ms` / `adaptive_ratio`
//! columns plus both aggregated [`plobs::RunReport`]s, and is checked
//! against the strict JSON validator before being written. Timings are
//! honest wall-clock averages on the build machine; the skewed-cost
//! advantage of demand-driven splitting materialises with ≥2 workers
//! (on a 1-core builder the two arms do the same total work).

use forkjoin::{AdaptiveSplit, ForkJoinPool, SplitPolicy};
use jstreams::{default_leaf_size, stream_support, ExecConfig, ReduceCollector, SliceSpliterator};
use plbench::{ms, time_avg, PAPER_RUNS};
use plobs::RunReport;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Spin iterations for the hot prefix of the skewed workload.
const HEAVY_ITERS: u64 = 512;
/// Spin iterations for the cold remainder.
const LIGHT_ITERS: u64 = 2;
/// Fraction of the input (as a divisor) that is hot.
const HOT_DIVISOR: usize = 64;

struct Args {
    runs: usize,
    exp: u32,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 16,
        out_dir: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// A fixed-point LCG spin: `iters` dependent multiply-adds, so the
/// optimiser cannot elide the work and cost scales linearly with
/// `iters`.
fn spin(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

/// Times `f` under both policies and captures one recorded report per
/// arm: `(fixed_ms, adaptive_ms, fixed_report, adaptive_report)`.
fn ab<R>(
    runs: usize,
    mut f: impl FnMut(SplitPolicy) -> R,
    fixed: SplitPolicy,
    adaptive: SplitPolicy,
) -> (f64, f64, RunReport, RunReport) {
    // Warm caches, the allocator and the pool before either arm.
    for _ in 0..2 {
        f(fixed);
        f(adaptive);
    }
    let (_, t_fixed) = time_avg(runs, || f(fixed));
    let (_, t_adaptive) = time_avg(runs, || f(adaptive));
    let (_, rep_fixed) = plobs::recorded(|| f(fixed));
    let (_, rep_adaptive) = plobs::recorded(|| f(adaptive));
    (ms(t_fixed), ms(t_adaptive), rep_fixed, rep_adaptive)
}

/// One trajectory row: identification, the A/B timings, and both
/// embedded reports. `extra` carries per-workload fields (already
/// comma-terminated JSON members, or empty).
#[allow(clippy::too_many_arguments)]
fn row_json(
    bench: &str,
    n: usize,
    runs: usize,
    threads: usize,
    fixed_leaf: usize,
    fixed_ms: f64,
    adaptive_ms: f64,
    extra: &str,
    fixed_report: &RunReport,
    adaptive_report: &RunReport,
) -> String {
    let ratio = if fixed_ms > 0.0 {
        adaptive_ms / fixed_ms
    } else {
        1.0
    };
    format!(
        concat!(
            "{{\"schema\":\"plbench.splitpolicy.v1\",\"bench\":\"{}\",\"n\":{},\"runs\":{},",
            "\"threads\":{},\"fixed_leaf_size\":{},",
            "\"fixed_ms\":{:.6},\"adaptive_ms\":{:.6},\"adaptive_ratio\":{:.6},{}",
            "\"fixed_report\":{},\"adaptive_report\":{}}}"
        ),
        bench,
        n,
        runs,
        threads,
        fixed_leaf,
        fixed_ms,
        adaptive_ms,
        ratio,
        extra,
        fixed_report.to_json(),
        adaptive_report.to_json()
    )
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed split-policy row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

fn print_arm(label: &str, fixed_ms: f64, adaptive_ms: f64, fx: &RunReport, ad: &RunReport) {
    println!("\n{label}:");
    println!(
        "  fixed {fixed_ms:.3} ms (max depth {}) | adaptive {adaptive_ms:.3} ms (max depth {}, ratio {:.3})",
        fx.max_split_depth(),
        ad.max_split_depth(),
        adaptive_ms / fixed_ms.max(1e-12),
    );
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    let threads = num_cpus::get();
    let pool = Arc::new(ForkJoinPool::new(threads));
    let fixed_leaf = default_leaf_size(n, threads);
    let fixed = SplitPolicy::Fixed(fixed_leaf);
    // The adaptive cutoff must sit below the static leaf or the policy
    // can never split finer than it on small smoke inputs.
    let adaptive = SplitPolicy::Adaptive(AdaptiveSplit {
        min_leaf: (fixed_leaf / 4).max(1),
        ..AdaptiveSplit::default()
    });
    println!(
        "split_policy: n = 2^{} = {n}, {} runs per arm, {} threads, fixed leaf {fixed_leaf}",
        args.exp, args.runs, threads
    );

    // Workload 1: uniform-cost reduce.
    let ints: Vec<i64> = (0..n as i64)
        .map(|i| i.wrapping_mul(0x9E37) % 1009)
        .collect();
    let data = ints.clone();
    let p2 = Arc::clone(&pool);
    let (fixed_ms, adaptive_ms, fx, ad) = ab(
        args.runs,
        move |policy| {
            stream_support(SliceSpliterator::new(data.clone()), true)
                .with_pool(Arc::clone(&p2))
                .with_split_policy(policy)
                .reduce(0i64, |a, b| a + b)
        },
        fixed,
        adaptive,
    );
    print_arm("uniform reduce", fixed_ms, adaptive_ms, &fx, &ad);

    // Fault-tolerant session overhead, same workload / pool / policy:
    // the happy path of `try_collect` (session armed, checkpoints
    // taken, no interruption) against the legacy infallible collect.
    let data = ints.clone();
    let p2 = Arc::clone(&pool);
    let legacy = move || {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .with_pool(Arc::clone(&p2))
            .with_split_policy(fixed)
            .reduce(0i64, |a, b| a + b)
    };
    let data = ints.clone();
    let try_cfg = ExecConfig::par()
        .with_pool(Arc::clone(&pool))
        .with_split_policy(fixed);
    let tried = move || {
        stream_support(SliceSpliterator::new(data.clone()), true)
            .try_collect(ReduceCollector::new(0i64, |a, b| a + b), &try_cfg)
            .expect("happy-path try_collect")
    };
    for _ in 0..2 {
        legacy();
        tried();
    }
    let (_, t_legacy) = time_avg(args.runs, &legacy);
    let (_, t_try) = time_avg(args.runs, &tried);
    let (legacy_ms, try_ms) = (ms(t_legacy), ms(t_try));
    let try_ratio = try_ms / legacy_ms.max(1e-12);
    println!(
        "  try_collect overhead: ratio {try_ratio:.4} (try {try_ms:.3} ms vs collect {legacy_ms:.3} ms)"
    );
    let extra = format!("\"try_collect_ms\":{try_ms:.6},\"try_overhead_ratio\":{try_ratio:.6},");

    let row = row_json(
        "reduce",
        n,
        args.runs,
        threads,
        fixed_leaf,
        fixed_ms,
        adaptive_ms,
        &extra,
        &fx,
        &ad,
    );
    write_row(&args.out_dir, "BENCH_splitpolicy_reduce.json", &row);

    // Workload 2: skewed cost — a hot prefix of heavy spin elements.
    let work: Vec<u64> = (0..n)
        .map(|i| {
            if i < n / HOT_DIVISOR {
                HEAVY_ITERS
            } else {
                LIGHT_ITERS
            }
        })
        .collect();
    let p2 = Arc::clone(&pool);
    let (fixed_ms, adaptive_ms, fx, ad) = ab(
        args.runs,
        move |policy| {
            stream_support(SliceSpliterator::new(work.clone()), true)
                .with_pool(Arc::clone(&p2))
                .with_split_policy(policy)
                .map(|iters| spin(iters, iters))
                .reduce(0u64, |a, b| a.wrapping_add(b))
        },
        fixed,
        adaptive,
    );
    print_arm("skewed-cost poly", fixed_ms, adaptive_ms, &fx, &ad);
    let row = row_json(
        "poly",
        n,
        args.runs,
        threads,
        fixed_leaf,
        fixed_ms,
        adaptive_ms,
        "",
        &fx,
        &ad,
    );
    write_row(&args.out_dir, "BENCH_splitpolicy_poly.json", &row);

    // Workload 3: filter-heavy (non-SIZED) reduce — the size estimate
    // is an upper bound, so splitting is depth-capped, not size-gated.
    let data = ints;
    let p2 = Arc::clone(&pool);
    let (fixed_ms, adaptive_ms, fx, ad) = ab(
        args.runs,
        move |policy| {
            stream_support(SliceSpliterator::new(data.clone()), true)
                .with_pool(Arc::clone(&p2))
                .with_split_policy(policy)
                .filter(|x| x % 2 == 0)
                .reduce(0i64, |a, b| a + b)
        },
        fixed,
        adaptive,
    );
    print_arm("filtered reduce", fixed_ms, adaptive_ms, &fx, &ad);
    assert!(
        fx.splits > 0,
        "non-SIZED filtered collect must split (old size-gated stop would not)"
    );
    let row = row_json(
        "filtered",
        n,
        args.runs,
        threads,
        fixed_leaf,
        fixed_ms,
        adaptive_ms,
        "",
        &fx,
        &ad,
    );
    write_row(&args.out_dir, "BENCH_splitpolicy_filtered.json", &row);
}
