//! Emits `BENCH_fused_*.json` A/B rows: cloning-drain adapters vs the
//! fused-borrow leaf route.
//!
//! ```text
//! fused [--runs R] [--exp K] [--out-dir DIR]
//! ```
//!
//! Two rows are produced, one per pipeline shape (default `2^18`):
//!
//! * `BENCH_fused_mapreduce.json` — `map(|x| a*x + b).reduce(+)`. The
//!   cloning arm builds the pipeline from an explicit
//!   [`MapSpliterator`] adapter (no borrowed leaf access, so every leaf
//!   takes the per-element cloning drain — the pre-fusion behaviour);
//!   the fused arm uses `Stream::map`, which extends a fused chain over
//!   the untouched slice source so every leaf takes the
//!   [`FusedBorrow`](plobs::LeafRoute) route.
//! * `BENCH_fused_filtered_poly.json` — the same A/B for a
//!   `map ∘ filter` polynomial-term pipeline (nested Map/Filter
//!   adapters vs one fused chain). The fused chain drops `SIZED`, so
//!   splitting is depth-capped, but leaves still borrow the source run
//!   and report **survivor** item counts.
//!
//! Each row carries `cloning_ms` / `fused_ms` / `fused_speedup` columns
//! plus both aggregated [`plobs::RunReport`]s, and the bin *asserts* the
//! route split: the fused arm must record zero cloning-drain leaves and
//! at least one fused-borrow leaf, and both arms must agree on the
//! reduced value.

use forkjoin::ForkJoinPool;
use jstreams::ops::{FilterSpliterator, MapSpliterator};
use jstreams::{stream_support, SliceSpliterator};
use plbench::{ms, random_ints, time_avg, PAPER_RUNS};
use plobs::RunReport;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Affine map coefficients (`a*x + b`) for the mapreduce row.
const A: i64 = 3;
const B: i64 = 7;

struct Args {
    runs: usize,
    exp: u32,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 18,
        out_dir: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times both arms and captures one recorded report per arm:
/// `(cloning_ms, fused_ms, cloning_report, fused_report)`. Panics when
/// the two arms disagree on the computed value.
fn ab<R: PartialEq + std::fmt::Debug>(
    runs: usize,
    mut cloning: impl FnMut() -> R,
    mut fused: impl FnMut() -> R,
) -> (f64, f64, RunReport, RunReport) {
    // Warm caches, the allocator and the pool before either arm.
    for _ in 0..2 {
        let a = cloning();
        let b = fused();
        assert_eq!(a, b, "cloning and fused arms must compute the same value");
    }
    let (_, t_cloning) = time_avg(runs, &mut cloning);
    let (_, t_fused) = time_avg(runs, &mut fused);
    let (_, rep_cloning) = plobs::recorded(&mut cloning);
    let (_, rep_fused) = plobs::recorded(&mut fused);
    (ms(t_cloning), ms(t_fused), rep_cloning, rep_fused)
}

/// Asserts the route-counter contract of one A/B pair: the fused arm
/// never touches the cloning drain, the cloning arm never reaches the
/// fused route.
fn check_routes(label: &str, cloning: &RunReport, fused: &RunReport) {
    assert!(
        fused.routes.cloning_drain.leaves == 0,
        "{label}: fused arm hit the cloning drain ({} leaves)",
        fused.routes.cloning_drain.leaves
    );
    assert!(
        fused.routes.fused_borrow.leaves > 0,
        "{label}: fused arm recorded no fused-borrow leaves"
    );
    assert!(
        cloning.routes.fused_borrow.leaves == 0,
        "{label}: cloning arm unexpectedly took the fused route"
    );
    assert!(
        cloning.routes.cloning_drain.leaves > 0,
        "{label}: cloning arm recorded no cloning-drain leaves"
    );
}

fn row_json(
    bench: &str,
    n: usize,
    runs: usize,
    threads: usize,
    (cloning_ms, fused_ms): (f64, f64),
    cloning_report: &RunReport,
    fused_report: &RunReport,
) -> String {
    let speedup = if fused_ms > 0.0 {
        cloning_ms / fused_ms
    } else {
        1.0
    };
    format!(
        concat!(
            "{{\"schema\":\"plbench.fused.v1\",\"bench\":\"{}\",\"n\":{},\"runs\":{},",
            "\"threads\":{},",
            "\"cloning_ms\":{:.6},\"fused_ms\":{:.6},\"fused_speedup\":{:.6},",
            "\"cloning_report\":{},\"fused_report\":{}}}"
        ),
        bench,
        n,
        runs,
        threads,
        cloning_ms,
        fused_ms,
        speedup,
        cloning_report.to_json(),
        fused_report.to_json()
    )
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed fused row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

fn print_arm(label: &str, cloning_ms: f64, fused_ms: f64, cl: &RunReport, fu: &RunReport) {
    println!("\n{label}:");
    println!(
        "  cloning {cloning_ms:.3} ms ({} cloned leaves) | fused {fused_ms:.3} ms ({} fused leaves, speedup {:.2}x)",
        cl.routes.cloning_drain.leaves,
        fu.routes.fused_borrow.leaves,
        cloning_ms / fused_ms.max(1e-12),
    );
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    let threads = num_cpus::get();
    let pool = Arc::new(ForkJoinPool::new(threads));
    println!(
        "fused: n = 2^{} = {n}, {} runs per arm, {threads} threads",
        args.exp, args.runs
    );

    // One shared buffer for every arm and run, so the A/B measures
    // traversal cost, not input re-copying.
    let ints: Arc<Vec<i64>> = Arc::new(random_ints(n, 0x5EED_F00D).into_vec());

    // Row 1: map + reduce. The cloning arm routes the same function
    // through an explicit MapSpliterator adapter — the pre-fusion
    // pipeline shape, whose leaves have no borrowed access.
    let data = Arc::clone(&ints);
    let p2 = Arc::clone(&pool);
    let cloning = move || {
        let adapter = MapSpliterator::new(
            SliceSpliterator::shared(Arc::clone(&data)),
            Arc::new(|x: i64| A.wrapping_mul(x).wrapping_add(B)),
        );
        stream_support(adapter, true)
            .with_pool(Arc::clone(&p2))
            .reduce(0i64, |a, b| a.wrapping_add(b))
    };
    let data = Arc::clone(&ints);
    let p2 = Arc::clone(&pool);
    let fused = move || {
        stream_support(SliceSpliterator::shared(Arc::clone(&data)), true)
            .with_pool(Arc::clone(&p2))
            .map(|x: i64| A.wrapping_mul(x).wrapping_add(B))
            .reduce(0i64, |a, b| a.wrapping_add(b))
    };
    let (cloning_ms, fused_ms, cl, fu) = ab(args.runs, cloning, fused);
    check_routes("mapreduce", &cl, &fu);
    print_arm("map+reduce", cloning_ms, fused_ms, &cl, &fu);
    let row = row_json(
        "mapreduce",
        n,
        args.runs,
        threads,
        (cloning_ms, fused_ms),
        &cl,
        &fu,
    );
    write_row(&args.out_dir, "BENCH_fused_mapreduce.json", &row);

    // Row 2: map ∘ filter polynomial terms. Cloning arm nests
    // Filter(Map(source)); fused arm carries one two-stage chain. The
    // filtered fused leaves must report survivor counts, so total items
    // agree across the two reports.
    let data = Arc::clone(&ints);
    let p2 = Arc::clone(&pool);
    let cloning = move || {
        let mapped = MapSpliterator::new(
            SliceSpliterator::shared(Arc::clone(&data)),
            Arc::new(|x: i64| x.wrapping_mul(x).wrapping_add(1)),
        );
        // x²+1 is odd exactly when x is even: the filter genuinely
        // drops ~half the elements, so survivor accounting is exercised.
        let filtered = FilterSpliterator::new(mapped, Arc::new(|t: &i64| t & 1 == 1));
        stream_support(filtered, true)
            .with_pool(Arc::clone(&p2))
            .reduce(0i64, |a, b| a.wrapping_add(b))
    };
    let data = ints;
    let p2 = Arc::clone(&pool);
    let fused = move || {
        stream_support(SliceSpliterator::shared(Arc::clone(&data)), true)
            .with_pool(Arc::clone(&p2))
            .map(|x: i64| x.wrapping_mul(x).wrapping_add(1))
            .filter(|t: &i64| t & 1 == 1)
            .reduce(0i64, |a, b| a.wrapping_add(b))
    };
    let (cloning_ms, fused_ms, cl, fu) = ab(args.runs, cloning, fused);
    check_routes("filtered_poly", &cl, &fu);
    // Survivor accounting: both arms feed the same elements to the
    // accumulator, so the per-route item totals must agree exactly.
    assert_eq!(
        cl.routes.total_items(),
        fu.routes.total_items(),
        "filtered fused leaves must report survivor counts"
    );
    print_arm("map∘filter poly", cloning_ms, fused_ms, &cl, &fu);
    let row = row_json(
        "filtered_poly",
        n,
        args.runs,
        threads,
        (cloning_ms, fused_ms),
        &cl,
        &fu,
    );
    write_row(&args.out_dir, "BENCH_fused_filtered_poly.json", &row);
}
