//! Emits `BENCH_placement_*.json` A/B rows: the splice-combine collect
//! vs the destination-passing placement route (Ablation H).
//!
//! ```text
//! placement [--runs R] [--exp K] [--leaf L] [--out-dir DIR] [--min-speedup X]
//! ```
//!
//! Two rows are produced (default `2^18`):
//!
//! * `BENCH_placement_tovec.json` — `to_vec` over a shared slice
//!   source. The splice arm runs with placement disabled
//!   (`with_placement(false)`), so every combine splices two partial
//!   `Vec`s; the placement arm allocates the output once at the root
//!   and each leaf writes its disjoint window, making every combine O(1).
//! * `BENCH_placement_powerlist.json` — the identity PowerList collect
//!   (tie split, tie recombination) through the same A/B.
//!
//! Each row carries `splice_ms` / `placement_ms` / `placement_speedup`
//! columns plus both aggregated [`plobs::RunReport`]s, and the bin
//! *asserts* the route contract: the placement arm records at least one
//! placement leaf and **zero splice combines** (every recorded combine
//! carries the placement tag), the splice arm records zero placement
//! leaves, and both arms agree on the collected value. `--min-speedup`
//! turns the measured ratio into an exit-code gate for CI smoke runs.

use forkjoin::ForkJoinPool;
use jstreams::{
    stream_support, Decomposition, PowerListCollector, SliceSpliterator, TieSpliterator,
};
use plbench::{ms, random_ints, time_min, PAPER_RUNS};
use plobs::RunReport;
use powerlist::PowerList;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    runs: usize,
    exp: u32,
    leaf: usize,
    out_dir: PathBuf,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: PAPER_RUNS,
        exp: 18,
        leaf: 2048,
        out_dir: PathBuf::from("."),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs an integer");
            }
            "--exp" => {
                args.exp = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exp needs an integer");
            }
            "--leaf" => {
                args.leaf = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--leaf needs an integer");
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().expect("--out-dir needs a path"));
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--min-speedup needs a number"),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times both arms and captures one recorded report per arm:
/// `(splice_ms, placement_ms, splice_report, placement_report)`.
/// Panics when the two arms disagree on the collected value.
fn ab<R: PartialEq + std::fmt::Debug>(
    runs: usize,
    mut splice: impl FnMut() -> R,
    mut placement: impl FnMut() -> R,
) -> (f64, f64, RunReport, RunReport) {
    // Warm caches, the allocator and the pool before either arm.
    for _ in 0..2 {
        let a = splice();
        let b = placement();
        assert_eq!(
            a, b,
            "splice and placement arms must compute the same value"
        );
    }
    // Min-of-runs: on a shared box a single scheduling spike can
    // poison an average, while the minimum tracks the true cost floor
    // of each arm.
    let (_, t_splice) = time_min(runs, &mut splice);
    let (_, t_placement) = time_min(runs, &mut placement);
    let (_, rep_splice) = plobs::recorded(&mut splice);
    let (_, rep_placement) = plobs::recorded(&mut placement);
    (ms(t_splice), ms(t_placement), rep_splice, rep_placement)
}

/// Asserts the route-counter contract of one A/B pair: the placement
/// arm never splice-combines, the splice arm never places.
fn check_routes(label: &str, splice: &RunReport, placement: &RunReport) {
    assert!(
        placement.routes.placement.leaves > 0,
        "{label}: placement arm recorded no placement leaves"
    );
    assert_eq!(
        placement.combines,
        placement.combines_placement,
        "{label}: placement arm performed {} splice combines",
        placement.combines - placement.combines_placement
    );
    assert!(
        splice.routes.placement.leaves == 0,
        "{label}: splice arm unexpectedly took the placement route"
    );
    assert_eq!(
        splice.combines_placement, 0,
        "{label}: splice arm recorded placement combines"
    );
}

fn row_json(
    bench: &str,
    n: usize,
    runs: usize,
    threads: usize,
    (splice_ms, placement_ms): (f64, f64),
    splice_report: &RunReport,
    placement_report: &RunReport,
) -> String {
    let speedup = if placement_ms > 0.0 {
        splice_ms / placement_ms
    } else {
        1.0
    };
    format!(
        concat!(
            "{{\"schema\":\"plbench.placement.v1\",\"bench\":\"{}\",\"n\":{},\"runs\":{},",
            "\"threads\":{},",
            "\"splice_ms\":{:.6},\"placement_ms\":{:.6},\"placement_speedup\":{:.6},",
            "\"splice_report\":{},\"placement_report\":{}}}"
        ),
        bench,
        n,
        runs,
        threads,
        splice_ms,
        placement_ms,
        speedup,
        splice_report.to_json(),
        placement_report.to_json()
    )
}

fn write_row(out_dir: &PathBuf, name: &str, row: &str) {
    if let Err(e) = plobs::json::validate(row) {
        eprintln!("malformed placement row for {name}: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(name);
    let mut file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{row}").expect("write row");
    println!("wrote {}", path.display());
}

fn print_arm(label: &str, splice_ms: f64, placement_ms: f64, sp: &RunReport, pl: &RunReport) {
    println!("\n{label}:");
    println!(
        "  splice {splice_ms:.3} ms ({} combines) | placement {placement_ms:.3} ms ({} placed leaves, {} placement combines, speedup {:.2}x)",
        sp.combines,
        pl.routes.placement.leaves,
        pl.combines_placement,
        splice_ms / placement_ms.max(1e-12),
    );
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.exp;
    let threads = num_cpus::get();
    let pool = Arc::new(ForkJoinPool::new(threads));
    println!(
        "placement: n = 2^{} = {n}, leaf {}, {} runs per arm, {threads} threads",
        args.exp, args.leaf, args.runs
    );

    // One shared buffer for every arm and run, so the A/B measures
    // collect cost, not input re-copying.
    let ints: Arc<Vec<i64>> = Arc::new(random_ints(n, 0x5EED_CAFE).into_vec());
    let mut speedups = Vec::new();

    // Row 1: to_vec. The splice arm materialises a Vec per leaf and
    // splices pairs up the tree (each element copied once per level);
    // the placement arm writes each element exactly once.
    let leaf = args.leaf;
    let data = Arc::clone(&ints);
    let p2 = Arc::clone(&pool);
    let splice = move || {
        stream_support(SliceSpliterator::shared(Arc::clone(&data)), true)
            .with_pool(Arc::clone(&p2))
            .with_leaf_size(leaf)
            .with_placement(false)
            .to_vec()
    };
    let data = Arc::clone(&ints);
    let p2 = Arc::clone(&pool);
    let placement = move || {
        stream_support(SliceSpliterator::shared(Arc::clone(&data)), true)
            .with_pool(Arc::clone(&p2))
            .with_leaf_size(leaf)
            .to_vec()
    };
    let (splice_ms, placement_ms, sp, pl) = ab(args.runs, splice, placement);
    check_routes("tovec", &sp, &pl);
    print_arm("to_vec", splice_ms, placement_ms, &sp, &pl);
    speedups.push(("tovec", splice_ms / placement_ms.max(1e-12)));
    let row = row_json(
        "tovec",
        n,
        args.runs,
        threads,
        (splice_ms, placement_ms),
        &sp,
        &pl,
    );
    write_row(&args.out_dir, "BENCH_placement_tovec.json", &row);

    // Row 2: the identity PowerList collect (tie split, tie
    // recombination) — the paper's shape-preserving terminal. The view
    // is built once (Arc-backed storage), so each run splits a no-copy
    // descriptor instead of re-cloning the input list.
    let view = PowerList::from_vec(ints.as_ref().clone()).unwrap().view();
    let v2 = view.clone();
    let p2 = Arc::clone(&pool);
    let splice = move || {
        stream_support(TieSpliterator::from_view(&v2), true)
            .with_pool(Arc::clone(&p2))
            .with_leaf_size(leaf)
            .with_placement(false)
            .collect(PowerListCollector::new(Decomposition::Tie))
    };
    let p2 = Arc::clone(&pool);
    let placement = move || {
        stream_support(TieSpliterator::from_view(&view), true)
            .with_pool(Arc::clone(&p2))
            .with_leaf_size(leaf)
            .collect(PowerListCollector::new(Decomposition::Tie))
    };
    let (splice_ms, placement_ms, sp, pl) = ab(args.runs, splice, placement);
    check_routes("powerlist", &sp, &pl);
    print_arm("collect_powerlist", splice_ms, placement_ms, &sp, &pl);
    speedups.push(("powerlist", splice_ms / placement_ms.max(1e-12)));
    let row = row_json(
        "powerlist",
        n,
        args.runs,
        threads,
        (splice_ms, placement_ms),
        &sp,
        &pl,
    );
    write_row(&args.out_dir, "BENCH_placement_powerlist.json", &row);

    if let Some(min) = args.min_speedup {
        for (label, s) in &speedups {
            if *s < min {
                eprintln!("placement gate: {label} speedup {s:.2}x < required {min:.2}x");
                std::process::exit(1);
            }
        }
        println!("\nplacement gate passed: all speedups >= {min:.2}x");
    }
}
