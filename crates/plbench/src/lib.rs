//! # plbench — workloads and measurement helpers
//!
//! Shared infrastructure for the benchmark suite: seeded workload
//! generators (the paper's random-coefficient polynomials, complex
//! signals, integer lists) and the 5-run-average timing protocol the
//! paper uses ("for each list length value we performed 5 runs of tests
//! and we averaged the obtained results").
//!
//! The experiment index in DESIGN.md maps every figure/ablation to a
//! bench target in this crate; `src/bin/figures.rs` regenerates the
//! paper's Figure 3 and Figure 4 series directly.
//!
//! Build bench binaries with `RUSTFLAGS="-C target-cpu=native"` (as
//! `ci.sh` does for its smoke invocations): baseline x86-64 codegen
//! vectorizes i64 additions but not i64 equality, which skews every
//! scan-vs-reduce ratio. The flag is deliberately *not* a committed
//! `[build]` default so ordinary builds stay portable.

#![warn(missing_docs)]

use powerlist::{tabulate, PowerList};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::{Duration, Instant};

/// Number of repetitions the paper averages over.
pub const PAPER_RUNS: usize = 5;

/// Seeded random coefficients in `[-1, 1]` — the polynomial workload.
/// The evaluation point used with these should be close to ±1 so values
/// stay finite across degrees up to 2^26.
pub fn random_coeffs(n: usize, seed: u64) -> PowerList<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    tabulate(n, |_| rng.random_range(-1.0..1.0)).expect("n must be a power of two")
}

/// Seeded random integer list for map/reduce and sorting workloads.
pub fn random_ints(n: usize, seed: u64) -> PowerList<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    tabulate(n, |_| rng.random_range(-1_000_000..1_000_000)).expect("n must be a power of two")
}

/// Seeded random complex signal for the FFT workload.
pub fn random_signal(n: usize, seed: u64) -> PowerList<plalgo::Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    tabulate(n, |_| {
        plalgo::Complex::new(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0))
    })
    .expect("n must be a power of two")
}

/// Times `f` once.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// The paper's protocol: run `f` `runs` times and average the wall
/// times; the last result is returned for checking.
pub fn time_avg<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(runs >= 1);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (r, d) = time_once(&mut f);
        total += d;
        last = Some(r);
    }
    (last.expect("runs >= 1"), total / runs as u32)
}

/// Runs `f` `runs` times and keeps the *minimum* wall time; the last
/// result is returned for checking. The minimum is the robust estimator
/// for short-circuiting benches on a shared or single-core box, where a
/// single preemption inside a microsecond-scale run would otherwise
/// dominate an average.
pub fn time_min<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(runs >= 1);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..runs {
        let (r, d) = time_once(&mut f);
        best = best.min(d);
        last = Some(r);
    }
    (last.expect("runs >= 1"), best)
}

/// Milliseconds as f64, for table printing.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_seed_deterministic() {
        assert_eq!(random_coeffs(64, 7), random_coeffs(64, 7));
        assert_ne!(random_coeffs(64, 7), random_coeffs(64, 8));
        assert_eq!(random_ints(32, 1), random_ints(32, 1));
        let a = random_signal(16, 3);
        let b = random_signal(16, 3);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn coeffs_are_bounded() {
        let c = random_coeffs(1 << 12, 42);
        assert!(c.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn time_avg_runs_the_closure() {
        let mut count = 0;
        let (r, d) = time_avg(5, || {
            count += 1;
            count
        });
        assert_eq!(count, 5);
        assert_eq!(r, 5);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn ms_converts() {
        assert_eq!(ms(Duration::from_millis(250)), 250.0);
    }
}
