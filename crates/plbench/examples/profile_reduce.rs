//! Ad-hoc timing breakdown of the reduce_stream path (dev diagnostics).

// Profiles the legacy entry points alongside the stream route.
#![allow(deprecated)]

use jstreams::Decomposition;
use plbench::random_ints;
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, mut f: F) {
    // warm up
    for _ in 0..3 {
        f();
    }
    let iters = 50;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{label:40} {:>10.1} us", per * 1e6);
}

fn main() {
    let n = 1usize << 18;
    let data = random_ints(n, 3);

    time("clone powerlist", || {
        black_box(data.clone());
    });

    time("slice sum", || {
        let s: i64 = data.as_slice().iter().sum();
        black_box(s);
    });

    time("reduce_stream parallel (default leaf)", || {
        black_box(plalgo::reduce_stream(
            black_box(data.clone()),
            Decomposition::Tie,
            0,
            |a, b| a + b,
        ));
    });

    time("reduce_stream sequential", || {
        let s = jstreams::power_stream(black_box(data.clone()), Decomposition::Tie)
            .sequential()
            .collect(jstreams::ReduceCollector::new(0i64, |a, b| a + b));
        black_box(s);
    });

    time("collect_seq on TieSpliterator", || {
        let sp = jstreams::TieSpliterator::over(black_box(data.clone()));
        let s = jstreams::collect_seq(sp, &jstreams::ReduceCollector::new(0i64, |a, b| a + b));
        black_box(s);
    });

    // Is the borrowed-run path actually taken?
    {
        use jstreams::LeafAccess;
        let sp = jstreams::TieSpliterator::over(data.clone());
        match sp.try_as_strided() {
            Some((items, step)) => {
                println!("tie try_as_strided: Some(len={}, step={step})", items.len())
            }
            None => println!("tie try_as_strided: None  <-- zero-copy path NOT taken"),
        }
    }

    time("ReduceCollector::leaf_slice direct", || {
        use jstreams::Collector;
        let c = jstreams::ReduceCollector::new(0i64, |a, b| a + b);
        let s = c.leaf_slice(data.as_slice()).unwrap();
        black_box(s);
    });

    time("run_leaf on TieSpliterator", || {
        let mut sp = jstreams::TieSpliterator::over(black_box(data.clone()));
        let c = jstreams::ReduceCollector::new(0i64, |a, b| a + b);
        let s = jstreams::run_leaf(&mut sp, &c);
        black_box(s);
    });

    time("TieSpliterator::over only", || {
        black_box(jstreams::TieSpliterator::over(black_box(data.clone())));
    });

    time("powerlist view() only", || {
        black_box(black_box(data.clone()).view());
    });

    let raw: Vec<i64> = data.as_slice().to_vec();
    time("vec clone", || {
        black_box(raw.clone());
    });
    time("Storage::new(vec clone)", || {
        black_box(powerlist::Storage::new(raw.clone()));
    });

    let pool = forkjoin::ForkJoinPool::with_default_parallelism();
    println!("pool threads: {}", pool.threads());

    time("pool.install(noop)", || {
        black_box(pool.install(|| 1i64));
    });

    time("collect_par leaf=n/4", || {
        let sp = jstreams::TieSpliterator::over(black_box(data.clone()));
        let s = jstreams::collect_par(
            &pool,
            sp,
            std::sync::Arc::new(jstreams::ReduceCollector::new(0i64, |a, b| a + b)),
            n / 4,
        );
        black_box(s);
    });

    time("collect_par leaf=n (single leaf)", || {
        let sp = jstreams::TieSpliterator::over(black_box(data.clone()));
        let s = jstreams::collect_par(
            &pool,
            sp,
            std::sync::Arc::new(jstreams::ReduceCollector::new(0i64, |a, b| a + b)),
            n,
        );
        black_box(s);
    });
}
