//! FFT benchmark: the flagship two-operator PowerList function (paper,
//! Eq. 3). Compares the recursive sequential FFT, the streams-adaptation
//! collect (with its specialised sequential leaf kernel), the JPLF
//! fork-join executor, and — at small sizes — the naive O(n²) DFT to
//! show the asymptotic gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jplf::Executor;
use plbench::random_signal;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));

    for k in [10u32, 12, 14] {
        let n = 1usize << k;
        let signal = random_signal(n, 6);

        group.bench_with_input(BenchmarkId::new("fft_seq", k), &n, |b, _| {
            b.iter(|| plalgo::fft_seq(black_box(&signal)))
        });

        group.bench_with_input(BenchmarkId::new("fft_stream", k), &n, |b, _| {
            b.iter(|| plalgo::fft_stream(black_box(signal.clone())))
        });

        let view = signal.clone().view();
        let exec = jplf::ForkJoinExecutor::new(num_cpus::get(), (n / 8).max(1));
        group.bench_with_input(BenchmarkId::new("fft_jplf", k), &n, |b, _| {
            b.iter(|| exec.execute(&plalgo::FftFunction, black_box(&view)))
        });

        if k == 10 {
            group.bench_with_input(BenchmarkId::new("dft_naive", k), &n, |b, _| {
                b.iter(|| plalgo::dft_naive(black_box(signal.as_slice())))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
