//! Figures 3–4 microbenchmark: polynomial evaluation, sequential stream
//! baseline vs the parallel PowerList collect, plus the JPLF executor
//! and a rayon fold as external reference points.
//!
//! Absolute numbers on a small host will not match the paper's 8-core
//! machine (see the `figures` binary for the simulated series); this
//! bench tracks the *relative* costs of the execution routes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jplf::Executor;
use plbench::random_coeffs;
use rayon::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

const EVAL_POINT: f64 = 0.99999;

fn bench_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_eval");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pool = Arc::new(forkjoin::ForkJoinPool::with_default_parallelism());

    for k in [14u32, 16, 18] {
        let n = 1usize << k;
        let coeffs = random_coeffs(n, 1);

        group.bench_with_input(BenchmarkId::new("seq_stream", k), &n, |b, _| {
            b.iter(|| plalgo::eval_seq_stream(black_box(coeffs.clone()), EVAL_POINT))
        });

        group.bench_with_input(BenchmarkId::new("horner", k), &n, |b, _| {
            b.iter(|| plalgo::horner(black_box(coeffs.as_slice()), EVAL_POINT))
        });

        group.bench_with_input(BenchmarkId::new("par_stream", k), &n, |b, _| {
            b.iter(|| {
                plalgo::eval_par_stream_with(
                    black_box(coeffs.clone()),
                    EVAL_POINT,
                    Some(Arc::clone(&pool)),
                    None,
                )
            })
        });

        let view = coeffs.clone().view();
        let exec = jplf::ForkJoinExecutor::with_pool(Arc::clone(&pool), (n / 16).max(1));
        group.bench_with_input(BenchmarkId::new("jplf_forkjoin", k), &n, |b, _| {
            b.iter(|| exec.execute(&plalgo::VpFunction::new(EVAL_POINT), black_box(&view)))
        });

        // Ablation D: the tupling transformation (no descending phase).
        group.bench_with_input(BenchmarkId::new("tupled_stream", k), &n, |b, _| {
            b.iter(|| plalgo::eval_tupled_stream(black_box(coeffs.clone()), EVAL_POINT))
        });
        let exec_tupled = jplf::ForkJoinExecutor::with_pool(Arc::clone(&pool), (n / 16).max(1));
        group.bench_with_input(BenchmarkId::new("tupled_jplf", k), &n, |b, _| {
            b.iter(|| exec_tupled.execute(&plalgo::TupledVp::new(EVAL_POINT), black_box(&view)))
        });

        // Rayon reference: evaluate via indexed map+sum (not the same
        // algorithm shape, but the ecosystem-standard data-parallel
        // baseline).
        let slice: Vec<f64> = coeffs.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("rayon_map_sum", k), &n, |b, _| {
            b.iter(|| {
                slice
                    .par_iter()
                    .enumerate()
                    .map(|(i, &a)| a * EVAL_POINT.powi(i as i32))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poly);
criterion_main!(benches);
