//! Catalogue homomorphisms: prefix sums, maximum segment sum, `inv`,
//! and the Walsh–Hadamard descent function — the remaining Section III
//! functions, each against its natural sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkjoin::ForkJoinPool;
use plbench::random_ints;
use std::hint::black_box;

fn bench_homomorphisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("homomorphisms");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pool = ForkJoinPool::with_default_parallelism();

    for k in [12u32, 14, 16] {
        let n = 1usize << k;
        let data = random_ints(n, 8);

        // Prefix sums: fold baseline, Ladner–Fischer, parallel tiles.
        group.bench_with_input(BenchmarkId::new("scan_fold", k), &n, |b, _| {
            b.iter(|| plalgo::scan_spec(black_box(data.as_slice()), |a, b| a + b))
        });
        group.bench_with_input(BenchmarkId::new("scan_ladner_fischer", k), &n, |b, _| {
            b.iter(|| plalgo::scan_seq(black_box(&data), 0, |a, b| a + b))
        });
        group.bench_with_input(BenchmarkId::new("scan_par", k), &n, |b, _| {
            b.iter(|| plalgo::scan_par(&pool, black_box(&data), 0, |a: &i64, b: &i64| a + b, 512))
        });

        // Maximum segment sum: Kadane vs the homomorphic stream collect.
        group.bench_with_input(BenchmarkId::new("mss_kadane", k), &n, |b, _| {
            b.iter(|| plalgo::mss_kadane(black_box(data.as_slice())))
        });
        group.bench_with_input(BenchmarkId::new("mss_stream", k), &n, |b, _| {
            b.iter(|| plalgo::mss_stream(black_box(data.clone())))
        });

        // inv: index arithmetic vs structural recursion.
        group.bench_with_input(BenchmarkId::new("inv_indexed", k), &n, |b, _| {
            b.iter(|| powerlist::perm::inv_indexed(black_box(&data)))
        });
        group.bench_with_input(BenchmarkId::new("inv_structural", k), &n, |b, _| {
            b.iter(|| powerlist::perm::inv_structural(black_box(&data)))
        });
    }

    // WHT (Eq.-5 descent) at one representative size.
    let f64data = powerlist::tabulate(1 << 12, |i| (i as f64).sin()).unwrap();
    group.bench_function("wht_4096", |b| {
        b.iter(|| plalgo::haar_like(black_box(&f64data)))
    });

    group.finish();
}

criterion_group!(benches, bench_homomorphisms);
criterion_main!(benches);
