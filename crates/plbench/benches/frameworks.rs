//! Ablation B (paper, Section III): JPLF-style executor vs the streams
//! adaptation vs a plain sequential baseline.
//!
//! "In [19] a comparison between the performance of some algorithms'
//! implementations using Java parallel streams and using the JPLF
//! framework … emphasizes that for applications based on simple
//! concatenation, the performance results are similar, but this
//! framework has the advantage of the additional support …". The JPLF
//! route avoids copying during descent (no-copy views); the collect
//! route pays for fresh containers at every combine — this bench
//! quantifies that difference for map and reduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jplf::{Decomp, Executor};
use jstreams::{
    stream_support, Characteristics, Decomposition, ItemSource, LeafAccess, ReduceCollector,
    Spliterator, TieSpliterator,
};
use plbench::random_ints;
use std::hint::black_box;
use std::sync::Arc;

/// Hides a spliterator's `LeafAccess` capability so the collect driver
/// takes the cloning per-element drain — keeps the seed's leaf cost
/// measurable next to the zero-copy rows (the delta the Ablation B
/// table in EXPERIMENTS.md reports).
struct Opaque<S>(S);

impl<T, S: ItemSource<T>> ItemSource<T> for Opaque<S> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.0.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.0.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.0.estimate_size()
    }
}

impl<T, S> LeafAccess<T> for Opaque<S> {}

impl<T, S: Spliterator<T>> Spliterator<T> for Opaque<S> {
    fn try_split(&mut self) -> Option<Self> {
        self.0.try_split().map(Opaque)
    }

    fn characteristics(&self) -> Characteristics {
        self.0.characteristics()
    }
}

fn bench_frameworks(c: &mut Criterion) {
    let mut group = c.benchmark_group("frameworks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pool = Arc::new(forkjoin::ForkJoinPool::with_default_parallelism());

    for k in [14u32, 16, 18] {
        let n = 1usize << k;
        let data = random_ints(n, 3);
        let view = data.clone().view();
        let leaf = (n / 16).max(1);
        let exec = jplf::ForkJoinExecutor::with_pool(Arc::clone(&pool), leaf);

        // --- reduce (scalar result: no container copying anywhere) ---
        let reduce_fn = plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
        group.bench_with_input(BenchmarkId::new("reduce_jplf", k), &n, |b, _| {
            b.iter(|| exec.execute(&reduce_fn, black_box(&view)))
        });
        group.bench_with_input(BenchmarkId::new("reduce_stream", k), &n, |b, _| {
            b.iter(|| {
                plalgo::reduce_stream(black_box(data.clone()), Decomposition::Tie, 0, |a, b| a + b)
            })
        });
        group.bench_with_input(BenchmarkId::new("reduce_stream_cloning", k), &n, |b, _| {
            b.iter(|| {
                stream_support(Opaque(TieSpliterator::over(black_box(data.clone()))), true)
                    .with_pool(Arc::clone(&pool))
                    .collect(ReduceCollector::new(0i64, |a, b| a + b))
            })
        });

        // --- map (PowerList result: collect pays for container merges) ---
        let map_fn = plalgo::MapFunction::new(Decomp::Tie, |x: &i64| x * 2 + 1);
        group.bench_with_input(BenchmarkId::new("map_jplf", k), &n, |b, _| {
            b.iter(|| exec.execute(&map_fn, black_box(&view)))
        });
        group.bench_with_input(BenchmarkId::new("map_stream", k), &n, |b, _| {
            b.iter(|| {
                plalgo::map_stream(black_box(data.clone()), Decomposition::Tie, |x| x * 2 + 1)
            })
        });

        // --- sequential reference ---
        group.bench_with_input(BenchmarkId::new("map_spec_seq", k), &n, |b, _| {
            b.iter(|| powerlist::ops::map(black_box(&data), |x| x * 2 + 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
