//! Ablation C (paper, Section III): the MPI executor's distribution
//! path, scaled over simulated ranks.
//!
//! "The MPI executors facilitates a much larger scalability and so
//! better performance." On an in-process substrate the communication is
//! memcpy-speed, so the interesting signal is the *overhead structure*
//! (plan + scatter + combine tree) versus rank count, not absolute
//! scaling; the `figures mpi` subcommand prints the cost-model scaling
//! series alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jplf::{Decomp, Executor, MpiExecutor};
use plbench::random_ints;
use std::hint::black_box;

fn bench_mpi(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));

    let n = 1usize << 16;
    let data = random_ints(n, 4);
    let view = data.view();
    let reduce_fn = plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
    let vp = plalgo::VpFunction::new(0.99999);
    let coeffs = plbench::random_coeffs(n, 5);
    let cview = coeffs.view();

    for ranks in [1usize, 2, 4, 8] {
        let exec = MpiExecutor::new(ranks);
        group.bench_with_input(BenchmarkId::new("reduce", ranks), &ranks, |b, _| {
            b.iter(|| exec.execute(&reduce_fn, black_box(&view)))
        });
        group.bench_with_input(BenchmarkId::new("vp_poly", ranks), &ranks, |b, _| {
            b.iter(|| exec.execute(&vp, black_box(&cview)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpi);
criterion_main!(benches);
