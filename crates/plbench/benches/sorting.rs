//! Sorting-network benchmark: Batcher odd-even merge sort and bitonic
//! sort (two catalogue functions of paper Section III) against the
//! standard library sort as the practical baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plbench::random_ints;
use std::hint::black_box;

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let pool = forkjoin::ForkJoinPool::with_default_parallelism();

    for k in [10u32, 12, 14] {
        let n = 1usize << k;
        let data = random_ints(n, 7);

        group.bench_with_input(BenchmarkId::new("batcher", k), &n, |b, _| {
            b.iter(|| plalgo::batcher_sort(black_box(&data)))
        });

        group.bench_with_input(BenchmarkId::new("batcher_par", k), &n, |b, _| {
            b.iter(|| plalgo::batcher_sort_par(&pool, black_box(&data), 256))
        });

        group.bench_with_input(BenchmarkId::new("bitonic", k), &n, |b, _| {
            b.iter(|| plalgo::bitonic_sort(black_box(&data)))
        });

        group.bench_with_input(BenchmarkId::new("std_sort", k), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone().into_vec();
                v.sort();
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
