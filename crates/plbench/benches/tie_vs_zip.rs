//! Ablation A (paper, Section V): tie- vs zip-spliterator memory access
//! patterns for map and reduce.
//!
//! "Definitions of the existing stream function — as map or reduce —
//! based on a ZipSpliterator could make sense in some performance tests
//! where different memory access patterns for the elements could give
//! some differences; depending on the system (caches, etc.) … linear or
//! cyclic data distributions could lead to better performance."
//!
//! Tie leaves are contiguous (linear distribution); zip leaves are
//! strided residue classes (cyclic distribution). The combiner cost also
//! differs: `tie_all` appends, `zip_all` interleaves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstreams::Decomposition;
use plbench::random_ints;
use std::hint::black_box;

fn bench_tie_vs_zip(c: &mut Criterion) {
    let mut group = c.benchmark_group("tie_vs_zip");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));

    for k in [14u32, 16, 18] {
        let n = 1usize << k;
        let data = random_ints(n, 2);

        for (name, d) in [("tie", Decomposition::Tie), ("zip", Decomposition::Zip)] {
            group.bench_with_input(BenchmarkId::new(format!("map_{name}"), k), &n, |b, _| {
                b.iter(|| plalgo::map_stream(black_box(data.clone()), d, |x| x * 3 + 1))
            });
            group.bench_with_input(BenchmarkId::new(format!("reduce_{name}"), k), &n, |b, _| {
                b.iter(|| plalgo::reduce_stream(black_box(data.clone()), d, 0i64, |a, b| a + b))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tie_vs_zip);
criterion_main!(benches);
