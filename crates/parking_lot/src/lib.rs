//! Offline stand-in for `parking_lot`.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the *API subset it actually uses* — `Mutex` (guard without `Result`)
//! and `Condvar` (wait on `&mut MutexGuard`) — on top of `std::sync`
//! primitives. Semantics match parking_lot where it matters here:
//! poisoning is transparent (a panicking lock holder does not wedge other
//! threads; the data is handed over as-is, exactly like parking_lot's
//! no-poisoning design).
//!
//! ## plcheck instrumentation
//!
//! Every acquisition, release, wait and notify is a scheduling point of
//! the [`plcheck`] deterministic concurrency checker **when executing on
//! a model thread**; production threads pay one thread-local read per
//! operation. On the model:
//!
//! * `lock` never blocks the OS thread — a contended acquisition
//!   reports [`plcheck::block_on`] and retries when the holder's guard
//!   drop [`plcheck::release`]s the mutex;
//! * `Condvar::wait`/`wait_for` release the lock, [`plcheck::park`] on
//!   the condvar (timeouts resolve against the virtual clock), and
//!   reacquire cooperatively — so release+park is atomic with respect
//!   to the model, exactly like a real condvar;
//! * `notify_one` wakes a waiter *chosen by the schedule source* (which
//!   waiter wins is a real source of nondeterminism worth exploring).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Stable scheduler resource id for a std mutex (thin part of the
/// address; `T: ?Sized` makes the reference potentially fat).
fn res_id<T: ?Sized>(m: &std::sync::Mutex<T>) -> usize {
    m as *const std::sync::Mutex<T> as *const () as usize
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Acquires `m` without blocking the OS thread, cooperating with the
/// plcheck scheduler: yields before the attempt, blocks-and-retries on
/// contention. Only called on model threads.
fn model_lock<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    let res = res_id(m);
    loop {
        plcheck::yield_op("mutex::lock");
        match m.try_lock() {
            Ok(g) => return g,
            Err(std::sync::TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                plcheck::block_on(res, "mutex::blocked");
            }
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if plcheck::active() {
            let g = model_lock(&self.inner);
            return MutexGuard {
                inner: Some(g),
                owner: &self.inner,
                model_res: Some(res_id(&self.inner)),
            };
        }
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            owner: &self.inner,
            model_res: None,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let model = plcheck::active();
        if model {
            plcheck::yield_op("mutex::try_lock");
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                owner: &self.inner,
                model_res: model.then(|| res_id(&self.inner)),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
                owner: &self.inner,
                model_res: model.then(|| res_id(&self.inner)),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so a `Condvar` can temporarily take
/// ownership during a wait while callers keep a `&mut` reference; `owner`
/// lets the condvar reacquire the lock afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    owner: &'a std::sync::Mutex<T>,
    /// `Some(resource)` when this acquisition is tracked by the plcheck
    /// scheduler; the drop path then releases cooperative waiters.
    model_res: Option<usize>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside a wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside a wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(res) = self.model_res.take() {
            // Unlock first, then wake cooperative waiters. The hooks are
            // inert while unwinding, so a panicking holder still unlocks
            // (teardown force-wakes any blocked model thread).
            drop(self.inner.take());
            plcheck::release(res);
            plcheck::yield_op("mutex::unlock");
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn cv_res(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Wakes one waiter. On the model, *which* parked waiter wakes is a
    /// scheduling decision.
    pub fn notify_one(&self) {
        plcheck::notify(self.cv_res(), false);
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        plcheck::notify(self.cv_res(), true);
        self.inner.notify_all();
    }

    /// Releases the guard's lock and waits for a notification; the
    /// release+wait pair is atomic with respect to other threads (a
    /// notification between them cannot be missed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(mutex_res) = guard.model_res {
            // Cooperative path: unlock, atomically park (no scheduling
            // point between release and park), reacquire.
            drop(guard.inner.take());
            plcheck::release(mutex_res);
            plcheck::park(self.cv_res(), None, "condvar::wait");
            guard.inner = Some(model_lock(guard.owner));
            return;
        }
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] with a timeout. On the model the timeout
    /// resolves against the plcheck virtual clock, so timed waits are
    /// deterministic and never sleep wall-clock time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if let Some(mutex_res) = guard.model_res {
            drop(guard.inner.take());
            plcheck::release(mutex_res);
            let why = plcheck::park(self.cv_res(), Some(timeout), "condvar::wait_for");
            guard.inner = Some(model_lock(guard.owner));
            return WaitTimeoutResult {
                timed_out: why == plcheck::WakeReason::TimedOut,
            };
        }
        let g = guard.inner.take().expect("guard present before wait");
        let (g, r) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not wedged, not an Err
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
