//! Offline stand-in for `parking_lot`.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the *API subset it actually uses* — `Mutex` (guard without `Result`)
//! and `Condvar` (wait on `&mut MutexGuard`) — on top of `std::sync`
//! primitives. Semantics match parking_lot where it matters here:
//! poisoning is transparent (a panicking lock holder does not wedge other
//! threads; the data is handed over as-is, exactly like parking_lot's
//! no-poisoning design).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so a `Condvar` can temporarily take
/// ownership during a wait while callers keep a `&mut` reference.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside a wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside a wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, r) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_from_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not wedged, not an Err
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
