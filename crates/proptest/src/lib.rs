//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, `collection::vec`, `any::<T>()`, `Just`, and the
//! `prop_assert*`/`prop_assume` macros. Generation is deterministic per
//! test (seeded from the test name), there is no shrinking, and
//! `prop_assume!` skips the case rather than resampling.

pub mod test_runner {
    /// Failure raised by a `prop_assert*` macro inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed-case error carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator; equal seeds replay equal cases.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runs the configured number of cases with a name-seeded RNG.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        /// Builds a runner; `name` seeds the RNG so each test has its own
        /// deterministic stream.
        pub fn new(config: crate::prelude::ProptestConfig, name: &str) -> Self {
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: TestRng::seed_from_u64(seed),
                cases: config.cases,
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The runner's random source.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    let draw = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Types with a default "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`crate::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// Builds the default strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite values only; keeps arithmetic properties meaningful.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (unit - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec()`]: an exact `usize`, a
    /// half-open `Range`, or an inclusive `RangeInclusive`.
    pub trait SizeRange {
        /// `(min, max)` inclusive length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy drawing a length from `size` and then `len`
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Per-test knobs; only `cases` is honoured by this stand-in.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The default strategy for `T` (full domain for primitives).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds (no resampling in this
/// stand-in — a skipped case counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines deterministic property tests.
///
/// Supports the standard shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose parameters are `pattern in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($binder:pat_param in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::prelude::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $binder = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_hold(x in -5i64..5, y in 0usize..10) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn flat_map_dependent_length(
            v in (0u32..=4).prop_flat_map(|k| crate::collection::vec(0i32..100, 1usize << k)),
        ) {
            prop_assert!(v.len().is_power_of_two());
        }

        #[test]
        fn assume_skips(n in 0u8..4) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn tuples_and_map(p in (0i32..10, 0i32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&p));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::with_cases(1);
        let mut r1 = crate::test_runner::TestRunner::new(cfg, "seed-check");
        let mut r2 = crate::test_runner::TestRunner::new(cfg, "seed-check");
        let s = 0i64..1000;
        let a: Vec<i64> = (0..32).map(|_| s.generate(r1.rng())).collect();
        let b: Vec<i64> = (0..32).map(|_| s.generate(r2.rng())).collect();
        assert_eq!(a, b);
    }
}
