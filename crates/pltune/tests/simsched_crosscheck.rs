//! Cross-checks the calibrator against the `simsched` analytical model:
//! the candidate grid must bracket the model's optimal granularity, the
//! model must agree that pathological granularity loses by at least the
//! benchmark acceptance margin, and a live sweep's winner must land at
//! a granularity the model considers near-optimal. Together these pin
//! that the tuner searches the right region for the right reason — not
//! merely that it picks *something*.

use forkjoin::{ForkJoinPool, SplitPolicy};
use pltune::{candidate_policies, run_sweep};
use simsched::{adaptive_leaf_size, predict_poly, MachineModel};
use std::sync::Arc;

/// Predicted parallel time (ms) of the polynomial workload at a given
/// leaf granularity on `machine`.
fn par_ms(machine: &MachineModel, n: usize, leaf: usize) -> f64 {
    predict_poly(machine, n, Some(leaf.max(1)), false).par_ms
}

/// The model's best leaf over a dense power-of-two scan. Leaves below
/// 2^6 are excluded: split overhead alone makes them strictly worse,
/// and simulating their million-task DAGs dominates test wall time.
fn model_best_leaf(machine: &MachineModel, n: usize) -> usize {
    (6..=n.trailing_zeros())
        .map(|k| 1usize << k)
        .min_by(|&a, &b| par_ms(machine, n, a).total_cmp(&par_ms(machine, n, b)))
        .expect("non-empty scan")
}

/// The equilibrium leaf size a candidate policy converges to, in the
/// model's terms: fixed policies use their leaf directly, the adaptive
/// policy its steady-state granularity under sustained demand.
fn equilibrium_leaf(policy: SplitPolicy, n: usize, cores: usize) -> usize {
    match policy {
        SplitPolicy::Fixed(leaf) => leaf,
        SplitPolicy::Adaptive(a) => adaptive_leaf_size(n, cores, a.depth_slack, a.min_leaf),
    }
}

/// The candidate grid the sweep searches must contain a policy whose
/// equilibrium granularity the model scores within 10% of its true
/// optimum — the structural reason a sweep over the grid can find a
/// near-best plan (the BENCH_autotune acceptance bound).
#[test]
fn candidate_grid_brackets_the_model_optimum() {
    let machine = MachineModel::paper_8core();
    let n = 1 << 20;
    let best = par_ms(&machine, n, model_best_leaf(&machine, n));
    let grid_best = candidate_policies(n, machine.cores)
        .into_iter()
        .map(|p| par_ms(&machine, n, equilibrium_leaf(p, n, machine.cores)))
        .min_by(f64::total_cmp)
        .expect("non-empty grid");
    assert!(
        grid_best <= best * 1.10,
        "best candidate predicts {grid_best:.4} ms vs model optimum {best:.4} ms"
    );
}

/// The model must reproduce the benchmark's worst-case margin: a
/// single-element leaf (the deliberately pathological arm of the
/// autotune bench) loses to the best candidate by at least the 1.3×
/// acceptance bound, at every paper-scale size.
#[test]
fn model_agrees_pathological_granularity_loses() {
    let machine = MachineModel::paper_8core();
    for k in [14, 16, 18] {
        let n = 1usize << k;
        let grid_best = candidate_policies(n, machine.cores)
            .into_iter()
            .map(|p| par_ms(&machine, n, equilibrium_leaf(p, n, machine.cores)))
            .min_by(f64::total_cmp)
            .expect("non-empty grid");
        let pathological = par_ms(&machine, n, 1);
        assert!(
            pathological >= grid_best * 1.3,
            "2^{k}: leaf-1 predicts {pathological:.4} ms, best candidate {grid_best:.4} ms"
        );
    }
}

/// A live sweep's winner, translated to its equilibrium granularity,
/// must be near-optimal *in the model* for the pool it was calibrated
/// on — the sweep and the simulator have to agree on direction, or one
/// of them is measuring the wrong trade-off.
#[test]
fn live_sweep_winner_is_model_near_optimal() {
    let pool = Arc::new(ForkJoinPool::new(2));
    let n = 1 << 14;
    let candidates = candidate_policies(n, pool.threads());
    let plan = run_sweep(&pool, n, &candidates);

    let machine = MachineModel::paper_8core().with_cores(pool.threads());
    let winner_ms = par_ms(
        &machine,
        n,
        equilibrium_leaf(plan.policy, n, pool.threads()),
    );
    let grid_best = candidates
        .iter()
        .map(|&p| par_ms(&machine, n, equilibrium_leaf(p, n, pool.threads())))
        .min_by(f64::total_cmp)
        .expect("non-empty grid");
    // Loose bound on purpose: the live sweep times a real machine, the
    // model an idealised one; they must agree on the region, not the
    // exact ranking.
    assert!(
        winner_ms <= grid_best * 1.5,
        "live winner {:?} predicts {winner_ms:.4} ms vs grid best {grid_best:.4} ms",
        plan.policy
    );
}
