//! The unit the cache stores: a calibrated split policy plus the
//! evidence that picked it.

use forkjoin::{AdaptiveSplit, SplitPolicy};
use plobs::json::Value;
use std::fmt::Write as _;

/// A calibrated execution plan for one pipeline fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The winning split policy.
    pub policy: SplitPolicy,
    /// The winner's probe time in nanoseconds (best observed run).
    pub score_ns: u64,
    /// How many candidates the sweep compared.
    pub candidates: u32,
}

impl Plan {
    /// Renders the plan as a JSON object fragment (used inside the plan
    /// cache's serialisation). Always valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"policy\":");
        match self.policy {
            SplitPolicy::Fixed(leaf) => {
                let _ = write!(out, "{{\"kind\":\"fixed\",\"leaf\":{}}}", leaf);
            }
            SplitPolicy::Adaptive(a) => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"adaptive\",\"min_leaf\":{},\"depth_slack\":{},\"surplus\":{}}}",
                    a.min_leaf, a.depth_slack, a.surplus
                );
            }
        }
        let _ = write!(
            out,
            ",\"score_ns\":{},\"candidates\":{}}}",
            self.score_ns, self.candidates
        );
        out
    }

    /// Rebuilds a plan from a parsed JSON object (the inverse of
    /// [`Plan::to_json`]).
    pub fn from_value(v: &Value) -> Result<Plan, String> {
        let policy = v.get("policy").ok_or("plan missing \"policy\"")?;
        let kind = policy
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("policy missing \"kind\"")?;
        let policy = match kind {
            "fixed" => SplitPolicy::Fixed(
                policy
                    .get("leaf")
                    .and_then(Value::as_u64)
                    .ok_or("fixed policy missing \"leaf\"")? as usize,
            ),
            "adaptive" => SplitPolicy::Adaptive(AdaptiveSplit {
                min_leaf: policy
                    .get("min_leaf")
                    .and_then(Value::as_u64)
                    .ok_or("adaptive policy missing \"min_leaf\"")?
                    as usize,
                depth_slack: policy
                    .get("depth_slack")
                    .and_then(Value::as_u64)
                    .ok_or("adaptive policy missing \"depth_slack\"")?
                    as u32,
                surplus: policy
                    .get("surplus")
                    .and_then(Value::as_u64)
                    .ok_or("adaptive policy missing \"surplus\"")?
                    as usize,
            }),
            other => return Err(format!("unknown policy kind {other:?}")),
        };
        Ok(Plan {
            policy,
            score_ns: v
                .get("score_ns")
                .and_then(Value::as_u64)
                .ok_or("plan missing \"score_ns\"")?,
            candidates: v
                .get("candidates")
                .and_then(Value::as_u64)
                .ok_or("plan missing \"candidates\"")? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_plan_round_trips() {
        let plan = Plan {
            policy: SplitPolicy::Fixed(4096),
            score_ns: 123_456,
            candidates: 5,
        };
        let json = plan.to_json();
        plobs::json::validate(&json).unwrap();
        let back = Plan::from_value(&plobs::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn adaptive_plan_round_trips() {
        let plan = Plan {
            policy: SplitPolicy::Adaptive(AdaptiveSplit {
                min_leaf: 512,
                depth_slack: 3,
                surplus: 1,
            }),
            score_ns: 9,
            candidates: 4,
        };
        let json = plan.to_json();
        plobs::json::validate(&json).unwrap();
        let back = Plan::from_value(&plobs::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "{}",
            "{\"policy\":{\"kind\":\"magic\"},\"score_ns\":1,\"candidates\":1}",
            "{\"policy\":{\"kind\":\"fixed\"},\"score_ns\":1,\"candidates\":1}",
            "{\"policy\":{\"kind\":\"fixed\",\"leaf\":8},\"candidates\":1}",
        ] {
            let v = plobs::json::parse(bad).unwrap();
            assert!(Plan::from_value(&v).is_err(), "{bad} wrongly accepted");
        }
    }
}
