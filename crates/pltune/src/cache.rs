//! The concurrent plan cache: exactly-once calibration under races,
//! width invalidation, JSON persistence.
//!
//! Concurrency protocol: all state lives behind one `parking_lot`
//! mutex (the vendored, plcheck-instrumentable one). A lookup that
//! finds the fingerprint vacant inserts a `Calibrating` marker *under
//! the lock* and returns a [`CalibrationTicket`] — so exactly one
//! thread ever owns the right to calibrate a fingerprint. Racing
//! threads observe the marker and get [`Lookup::Busy`]: they proceed
//! with their default policy instead of blocking on a sweep of unknown
//! duration. Installing through the ticket publishes the plan; dropping
//! it uninstalled (sweep panicked, caller bailed) reverts the slot to
//! vacant so the next sighting can claim it — no lost install, no
//! wedged slot.

use crate::fingerprint::Fingerprint;
use crate::plan::Plan;
use parking_lot::Mutex;
use plobs::json::{escape, Value};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

enum Slot {
    /// A ticket is outstanding for this fingerprint.
    Calibrating,
    /// A calibrated plan is installed.
    Ready(Plan),
}

struct Inner {
    plans: HashMap<Fingerprint, Slot>,
    /// Pool width of the most recent lookup; a change purges plans
    /// calibrated for other widths.
    width: Option<u32>,
}

/// A concurrent, `Arc`-shared map from pipeline fingerprint to
/// calibrated [`Plan`]. See the module docs for the claim/install
/// protocol.
pub struct PlanCache {
    inner: Mutex<Inner>,
}

/// Outcome of one [`PlanCache::lookup`].
pub enum Lookup {
    /// A plan is installed; use its policy.
    Hit(Plan),
    /// Another thread holds the calibration ticket; proceed untuned.
    Busy,
    /// This thread claimed the vacant slot and must calibrate (or drop
    /// the ticket to release the claim).
    Claimed(CalibrationTicket),
}

/// Exclusive right to calibrate one fingerprint, claimed under the
/// cache lock. [`CalibrationTicket::install`] publishes the plan;
/// dropping the ticket uninstalled reverts the slot to vacant.
pub struct CalibrationTicket {
    cache: Arc<PlanCache>,
    fp: Fingerprint,
    installed: bool,
}

impl CalibrationTicket {
    /// Publishes `plan` for the claimed fingerprint — unless a
    /// concurrent lookup moved the cache to a different pool width
    /// since the claim (purging this ticket's marker), in which case
    /// the now-stale plan is discarded: a plan tuned for one width
    /// must never outlive a width change. (Found by the plcheck width
    /// race model; lookup-time purging alone lets a late install
    /// resurrect a purged width.)
    pub fn install(mut self, plan: Plan) {
        let mut inner = self.cache.inner.lock();
        if inner.width == Some(self.fp.pool_width) {
            inner.plans.insert(self.fp.clone(), Slot::Ready(plan));
        }
        self.installed = true;
    }

    /// The fingerprint this ticket claims.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fp
    }
}

impl Drop for CalibrationTicket {
    fn drop(&mut self) {
        if !self.installed {
            let mut inner = self.cache.inner.lock();
            // Only revert our own marker: a width purge may already
            // have removed it, and (in pathological width flapping) the
            // slot may have been re-claimed or even filled since.
            if matches!(inner.plans.get(&self.fp), Some(Slot::Calibrating)) {
                inner.plans.remove(&self.fp);
            }
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner {
                plans: HashMap::new(),
                width: None,
            }),
        }
    }

    /// Looks up `fp`, claiming the slot when vacant. A lookup whose
    /// pool width differs from the previous lookup's first invalidates
    /// every plan calibrated for another width (the explicit
    /// pool-width invalidation rule: granularity tuned for an 8-wide
    /// pool is meaningless on a 2-wide one).
    pub fn lookup(self: &Arc<Self>, fp: &Fingerprint) -> Lookup {
        let mut inner = self.inner.lock();
        if inner.width != Some(fp.pool_width) {
            if inner.width.is_some() {
                inner.plans.retain(|k, _| k.pool_width == fp.pool_width);
            }
            inner.width = Some(fp.pool_width);
        }
        match inner.plans.get(fp) {
            Some(Slot::Ready(plan)) => Lookup::Hit(*plan),
            Some(Slot::Calibrating) => Lookup::Busy,
            None => {
                inner.plans.insert(fp.clone(), Slot::Calibrating);
                Lookup::Claimed(CalibrationTicket {
                    cache: Arc::clone(self),
                    fp: fp.clone(),
                    installed: false,
                })
            }
        }
    }

    /// Non-claiming peek: the installed plan for `fp`, if any.
    pub fn get(&self, fp: &Fingerprint) -> Option<Plan> {
        match self.inner.lock().plans.get(fp) {
            Some(Slot::Ready(plan)) => Some(*plan),
            _ => None,
        }
    }

    /// Installs `plan` for `fp` directly (persistence reload, tests).
    pub fn insert(&self, fp: Fingerprint, plan: Plan) {
        self.inner.lock().plans.insert(fp, Slot::Ready(plan));
    }

    /// Drops every installed plan and outstanding claim marker.
    /// Outstanding tickets remain valid: their install re-publishes.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        inner.plans.clear();
        inner.width = None;
    }

    /// Number of installed (ready) plans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .plans
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// `true` when no plan is installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installed plans, sorted by fingerprint for deterministic output.
    pub fn ready_entries(&self) -> Vec<(Fingerprint, Plan)> {
        let inner = self.inner.lock();
        let mut out: Vec<(Fingerprint, Plan)> = inner
            .plans
            .iter()
            .filter_map(|(fp, slot)| match slot {
                Slot::Ready(plan) => Some((fp.clone(), *plan)),
                Slot::Calibrating => None,
            })
            .collect();
        out.sort_by(|(a, _), (b, _)| {
            (&a.pipe, &a.collector, a.size_bucket, a.sized, a.pool_width).cmp(&(
                &b.pipe,
                &b.collector,
                b.size_bucket,
                b.sized,
                b.pool_width,
            ))
        });
        out
    }

    /// Renders the installed plans as JSON (schema
    /// `pltune.plan_cache.v1`). Calibrating markers are transient and
    /// are not persisted. The output always passes
    /// [`plobs::json::validate`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"pltune.plan_cache.v1\",\"plans\":[");
        for (i, (fp, plan)) in self.ready_entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pipe\":\"{}\",\"collector\":\"{}\",\"size_bucket\":{},\
                 \"sized\":{},\"width\":{},\"plan\":{}}}",
                escape(&fp.pipe),
                escape(&fp.collector),
                fp.size_bucket,
                fp.sized,
                fp.pool_width,
                plan.to_json()
            );
        }
        out.push_str("]}");
        out
    }

    /// Rebuilds a cache from [`PlanCache::to_json`] output. The width
    /// marker starts unset, so the first lookup re-applies the
    /// width-invalidation rule against the live pool.
    pub fn from_json(input: &str) -> Result<PlanCache, String> {
        let root = plobs::json::parse(input)?;
        match root.get("schema").and_then(Value::as_str) {
            Some("pltune.plan_cache.v1") => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let cache = PlanCache::new();
        let rows = root
            .get("plans")
            .and_then(Value::as_array)
            .ok_or("missing \"plans\" array")?;
        for row in rows {
            let fp = Fingerprint {
                pipe: row
                    .get("pipe")
                    .and_then(Value::as_str)
                    .ok_or("row missing \"pipe\"")?
                    .to_owned(),
                collector: row
                    .get("collector")
                    .and_then(Value::as_str)
                    .ok_or("row missing \"collector\"")?
                    .to_owned(),
                size_bucket: row
                    .get("size_bucket")
                    .and_then(Value::as_u64)
                    .ok_or("row missing \"size_bucket\"")? as u32,
                sized: row
                    .get("sized")
                    .and_then(Value::as_bool)
                    .ok_or("row missing \"sized\"")?,
                pool_width: row
                    .get("width")
                    .and_then(Value::as_u64)
                    .ok_or("row missing \"width\"")? as u32,
            };
            let plan = Plan::from_value(row.get("plan").ok_or("row missing \"plan\"")?)?;
            cache.inner.lock().plans.insert(fp, Slot::Ready(plan));
        }
        Ok(cache)
    }

    /// Persists the cache to `path` (validating the rendering first, so
    /// a formatter bug can never corrupt the file).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = self.to_json();
        plobs::json::validate(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reloads a cache persisted by [`PlanCache::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<PlanCache, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        PlanCache::from_json(&text)
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        let ready = inner
            .plans
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count();
        f.debug_struct("PlanCache")
            .field("ready", &ready)
            .field("calibrating", &(inner.plans.len() - ready))
            .field("width", &inner.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkjoin::SplitPolicy;

    fn fp(pipe: &str, width: usize) -> Fingerprint {
        Fingerprint::new(pipe, "collector", 1 << 14, true, width)
    }

    fn plan(leaf: usize) -> Plan {
        Plan {
            policy: SplitPolicy::Fixed(leaf),
            score_ns: 1000,
            candidates: 4,
        }
    }

    #[test]
    fn first_lookup_claims_then_hits_after_install() {
        let cache = Arc::new(PlanCache::new());
        let key = fp("a", 8);
        let ticket = match cache.lookup(&key) {
            Lookup::Claimed(t) => t,
            _ => panic!("fresh cache must claim"),
        };
        assert!(matches!(cache.lookup(&key), Lookup::Busy));
        ticket.install(plan(512));
        match cache.lookup(&key) {
            Lookup::Hit(p) => assert_eq!(p.policy, SplitPolicy::Fixed(512)),
            _ => panic!("installed plan must hit"),
        }
    }

    #[test]
    fn dropped_ticket_reverts_to_vacant() {
        let cache = Arc::new(PlanCache::new());
        let key = fp("a", 8);
        match cache.lookup(&key) {
            Lookup::Claimed(t) => drop(t),
            _ => panic!(),
        }
        assert!(matches!(cache.lookup(&key), Lookup::Claimed(_)));
    }

    #[test]
    fn width_change_purges_other_widths() {
        let cache = Arc::new(PlanCache::new());
        cache.insert(fp("a", 8), plan(512));
        cache.insert(fp("b", 8), plan(256));
        // Prime the width marker at 8.
        assert!(matches!(cache.lookup(&fp("a", 8)), Lookup::Hit(_)));
        assert_eq!(cache.len(), 2);
        // A 4-wide lookup invalidates every 8-wide plan.
        assert!(matches!(cache.lookup(&fp("a", 4)), Lookup::Claimed(_)));
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&fp("b", 8)).is_none());
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let cache = Arc::new(PlanCache::new());
        cache.insert(fp("a", 8), plan(512));
        assert!(!cache.is_empty());
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup(&fp("a", 8)), Lookup::Claimed(_)));
    }

    #[test]
    fn json_round_trips_installed_plans() {
        let cache = Arc::new(PlanCache::new());
        cache.insert(fp("pipe<\"quoted\">", 8), plan(512));
        cache.insert(
            Fingerprint::new("other", "sum", 1 << 20, false, 4),
            Plan {
                policy: SplitPolicy::adaptive(),
                score_ns: 42,
                candidates: 5,
            },
        );
        // Calibrating markers must not be persisted.
        let _ticket = match cache.lookup(&fp("transient", 8)) {
            Lookup::Claimed(t) => t,
            _ => panic!(),
        };
        let json = cache.to_json();
        plobs::json::validate(&json).unwrap();
        let back = PlanCache::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.ready_entries(), cache.ready_entries());
        assert!(back.get(&fp("transient", 8)).is_none());
    }

    #[test]
    fn save_and_load_round_trip() {
        let cache = Arc::new(PlanCache::new());
        cache.insert(fp("a", 8), plan(2048));
        let path = std::env::temp_dir().join(format!("pltune_cache_{}.json", std::process::id()));
        cache.save(&path).unwrap();
        let back = PlanCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.ready_entries(), cache.ready_entries());
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        assert!(PlanCache::from_json("{\"schema\":\"nope\",\"plans\":[]}").is_err());
        assert!(PlanCache::from_json("[]").is_err());
    }

    #[test]
    fn racing_lookups_calibrate_exactly_once() {
        // Live-thread counterpart of the plcheck model: N threads race
        // the same vacant fingerprint; exactly one claims, the rest are
        // Busy until the install lands.
        let cache = Arc::new(PlanCache::new());
        let key = fp("raced", 8);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.lookup(&key) {
                        Lookup::Claimed(t) => {
                            t.install(plan(128));
                            1
                        }
                        Lookup::Busy => 0,
                        Lookup::Hit(_) => 0,
                    }
                })
            })
            .collect();
        let claims: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(claims.iter().sum::<i32>(), 1, "exactly one claim");
        assert!(
            matches!(cache.lookup(&key), Lookup::Hit(_)),
            "no lost install"
        );
    }
}
