//! Pipeline fingerprints: the plan cache's key.
//!
//! A tuned plan is only transferable between executions that would
//! build the same divide-and-conquer tree over comparable work. The
//! fingerprint captures exactly the inputs the collect driver's policy
//! resolution depends on: the monomorphised source/fused-chain type and
//! collector type (Rust's `type_name` encodes the whole adapter stack),
//! the input's power-of-two size bucket, whether that size is exact
//! (`SIZED` — an upper-bound estimate must never share plans with an
//! exactly-sized pipeline), and the executing pool's width.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Longest type summary kept verbatim; longer ones are truncated and
/// suffixed with a hash of the full name so distinct chains stay
/// distinct.
const MAX_SUMMARY: usize = 160;

/// Identity of a pipeline shape for plan-cache purposes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Path-stripped summary of the source / fused-chain type.
    pub pipe: String,
    /// Path-stripped summary of the collector type.
    pub collector: String,
    /// `⌊log2(size)⌋` of the input size estimate (0 for empty inputs).
    pub size_bucket: u32,
    /// Whether the size estimate is exact (`SIZED` advertised). Plans
    /// never cross the sized / upper-bound boundary.
    pub sized: bool,
    /// Width of the pool the plan was (or will be) calibrated on.
    pub pool_width: u32,
}

impl Fingerprint {
    /// Builds a fingerprint from raw `type_name` strings and the
    /// pipeline's size/pool parameters.
    pub fn new(
        pipe_type: &str,
        collector_type: &str,
        size: usize,
        sized: bool,
        pool_width: usize,
    ) -> Fingerprint {
        Fingerprint {
            pipe: summarize_type(pipe_type),
            collector: summarize_type(collector_type),
            size_bucket: size_bucket(size),
            sized,
            pool_width: pool_width as u32,
        }
    }
}

/// `⌊log2(n)⌋` with `n` clamped to at least 1 — the bucketing that lets
/// one calibration serve all sizes of the same order of magnitude.
pub fn size_bucket(n: usize) -> u32 {
    usize::BITS - 1 - n.max(1).leading_zeros()
}

/// Compresses a `std::any::type_name` output: every path-qualified
/// identifier keeps only its final segment, so
/// `jstreams::tie::TieSpliterator<f64>` becomes `TieSpliterator<f64>`
/// while the generic structure — which is what distinguishes one fused
/// chain from another — survives intact. Summaries longer than 160
/// bytes are truncated with a hash suffix of the full name.
pub fn summarize_type(full: &str) -> String {
    let mut out = String::with_capacity(full.len());
    let mut ident = String::new();
    let flush = |out: &mut String, ident: &mut String| {
        if !ident.is_empty() {
            out.push_str(ident.rsplit("::").next().unwrap_or(ident));
            ident.clear();
        }
    };
    for c in full.chars() {
        if c.is_alphanumeric() || c == '_' || c == ':' {
            ident.push(c);
        } else {
            flush(&mut out, &mut ident);
            out.push(c);
        }
    }
    flush(&mut out, &mut ident);

    if out.len() > MAX_SUMMARY {
        let mut hasher = DefaultHasher::new();
        full.hash(&mut hasher);
        let mut cut = MAX_SUMMARY;
        while !out.is_char_boundary(cut) {
            cut -= 1;
        }
        out.truncate(cut);
        out.push_str(&format!("#{:016x}", hasher.finish()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_strips_paths_keeps_generics() {
        assert_eq!(
            summarize_type("jstreams::tie::TieSpliterator<f64>"),
            "TieSpliterator<f64>"
        );
        assert_eq!(
            summarize_type("a::b::Outer<c::d::Inner<u64>, alloc::vec::Vec<f64>>"),
            "Outer<Inner<u64>, Vec<f64>>"
        );
        assert_eq!(summarize_type("u64"), "u64");
    }

    #[test]
    fn summarize_truncates_with_distinct_hashes() {
        let a = format!("m::Chain<{}>", "x".repeat(400));
        let b = format!("m::Chain<{}>", "y".repeat(400));
        let (sa, sb) = (summarize_type(&a), summarize_type(&b));
        assert!(sa.len() <= MAX_SUMMARY + 17);
        assert_ne!(sa, sb, "distinct chains must stay distinct");
        assert_eq!(summarize_type(&a), sa, "deterministic");
    }

    #[test]
    fn size_buckets_are_floor_log2() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(3), 1);
        assert_eq!(size_bucket(1 << 20), 20);
        assert_eq!(size_bucket((1 << 20) + 5), 20);
    }

    #[test]
    fn fingerprints_distinguish_every_field() {
        let base = Fingerprint::new("p", "c", 1 << 10, true, 8);
        assert_eq!(base, Fingerprint::new("x::p", "y::c", 1 << 10, true, 8));
        assert_ne!(base, Fingerprint::new("q", "c", 1 << 10, true, 8));
        assert_ne!(base, Fingerprint::new("p", "d", 1 << 10, true, 8));
        assert_ne!(base, Fingerprint::new("p", "c", 1 << 11, true, 8));
        assert_ne!(base, Fingerprint::new("p", "c", 1 << 10, false, 8));
        assert_ne!(base, Fingerprint::new("p", "c", 1 << 10, true, 4));
    }
}
