//! First-sight calibration: the candidate grid and the synthetic probe
//! that times it.
//!
//! The probe is a self-contained recursive reduce built directly on
//! [`forkjoin::join`] that mirrors the collect driver's recursion: the
//! same stop rules (`Fixed` stops on exact size, `Adaptive` on depth
//! cap / `min_leaf` / [`demand_split`] demand), the same
//! `depth_cap(threads)` bound. It deliberately measures the *machine ×
//! pool × granularity* trade-off rather than the user's workload — the
//! user's source is consumed by the collect and cannot be re-run, but
//! split/fork overhead versus leaf amortisation is a property of the
//! pool, which is exactly what a split policy tunes.
//!
//! Candidates are timed with `Instant`, not a nested
//! [`plobs::recorded`] section: recording installs a process-global
//! sink behind a non-reentrant guard, so re-entering it from inside a
//! benchmark's recorded run would deadlock. When a sink *is* installed,
//! the probe's own splits/joins flow into it like any other pool work —
//! calibration overhead stays visible in the outer report.

use crate::plan::Plan;
use forkjoin::{demand_split, ForkJoinPool, SplitPolicy};
use std::time::Instant;

/// Hard bound on probe recursion depth, over any policy's cap.
const MAX_PROBE_DEPTH: u32 = 40;

/// Probe sizes are clamped to `2^10 ..= 2^20` elements: small enough
/// that a full sweep stays in the low milliseconds, large enough that
/// split overhead is measurable against leaf work.
pub fn probe_size(size_bucket: u32) -> usize {
    1usize << size_bucket.clamp(10, 20)
}

/// The candidate grid for an input of `n` elements on `threads`
/// workers: the driver's default fixed leaf, a 4× finer and a 4×
/// coarser fixed leaf, and the default adaptive policy.
pub fn candidate_policies(n: usize, threads: usize) -> Vec<SplitPolicy> {
    let default_leaf = (n / (4 * threads.max(1))).max(1);
    let raw = [
        SplitPolicy::Fixed(default_leaf),
        SplitPolicy::Fixed((default_leaf / 4).max(1)),
        SplitPolicy::Fixed(default_leaf.saturating_mul(4).min(n.max(1))),
        SplitPolicy::adaptive(),
    ];
    let mut out: Vec<SplitPolicy> = Vec::with_capacity(raw.len());
    for p in raw {
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Times one synthetic reduce of `n` elements under `policy` on `pool`,
/// in nanoseconds.
pub fn probe_reduce(pool: &ForkJoinPool, n: usize, policy: SplitPolicy) -> u64 {
    let cap = policy.depth_cap(pool.threads());
    let t0 = Instant::now();
    let run = move || reduce_node(0, n as u64, 0, cap, policy, 0);
    let result = match pool.try_install(run) {
        Ok(v) => v,
        // Shutdown race: the closure never ran; execute it here (its
        // joins migrate to the global pool off-worker).
        Err(f) => f(),
    };
    std::hint::black_box(result);
    t0.elapsed().as_nanos() as u64
}

/// Runs the calibration sweep: one warm-up, then each candidate timed
/// twice (best of two, to shave scheduler noise). Returns the winning
/// plan.
pub fn run_sweep(pool: &ForkJoinPool, probe_n: usize, candidates: &[SplitPolicy]) -> Plan {
    assert!(!candidates.is_empty(), "empty candidate grid");
    // Warm-up wakes parked workers so the first candidate is not
    // charged for thread spin-up.
    let _ = probe_reduce(pool, probe_n, candidates[0]);
    let mut best = candidates[0];
    let mut best_ns = u64::MAX;
    for &cand in candidates {
        let ns = probe_reduce(pool, probe_n, cand).min(probe_reduce(pool, probe_n, cand));
        if ns < best_ns {
            best_ns = ns;
            best = cand;
        }
    }
    Plan {
        policy: best,
        score_ns: best_ns,
        candidates: candidates.len() as u32,
    }
}

/// Per-element probe work: an LCG scramble, roughly the cost of a cheap
/// map + reduce step, so leaf amortisation resembles the benchmarked
/// pipelines.
fn leaf_sum(start: u64, len: u64) -> u64 {
    let mut acc = 0u64;
    for i in start..start + len {
        let x = i
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        acc = acc.wrapping_add(x ^ (x >> 29));
    }
    acc
}

/// The probe recursion: mirrors `try_recurse`'s stop logic over an
/// exactly-sized synthetic range.
fn reduce_node(
    start: u64,
    len: u64,
    depth: u32,
    cap: u32,
    policy: SplitPolicy,
    steals_seen: u64,
) -> u64 {
    let mut steals_next = steals_seen;
    let stop = if len < 2 || depth >= MAX_PROBE_DEPTH {
        true
    } else {
        match policy {
            // The synthetic range is exactly sized, so Fixed stops on
            // size alone — same as the driver over a SIZED source.
            SplitPolicy::Fixed(leaf) => len as usize <= leaf,
            SplitPolicy::Adaptive(a) => {
                if depth >= cap || len as usize <= a.min_leaf {
                    true
                } else {
                    let (wants_split, now) = demand_split(a.surplus, steals_seen);
                    steals_next = now;
                    !wants_split
                }
            }
        }
    };
    if stop {
        return leaf_sum(start, len);
    }
    let half = len / 2;
    let (a, b) = forkjoin::join(
        move || reduce_node(start, half, depth + 1, cap, policy, steals_next),
        move || {
            reduce_node(
                start + half,
                len - half,
                depth + 1,
                cap,
                policy,
                steals_next,
            )
        },
    );
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn probe_sizes_are_clamped() {
        assert_eq!(probe_size(0), 1 << 10);
        assert_eq!(probe_size(14), 1 << 14);
        assert_eq!(probe_size(26), 1 << 20);
    }

    #[test]
    fn candidate_grid_is_deduped_and_covers_adaptive() {
        let c = candidate_policies(1 << 16, 4);
        assert!(c.len() >= 2);
        assert!(c.iter().any(|p| p.is_adaptive()));
        assert!(c.iter().any(|p| matches!(p, SplitPolicy::Fixed(_))));
        let mut seen = Vec::new();
        for p in &c {
            assert!(!seen.contains(p), "duplicate candidate {p:?}");
            seen.push(*p);
        }
        // Tiny inputs collapse the fixed candidates onto leaf 1.
        let tiny = candidate_policies(2, 64);
        assert!(tiny.len() >= 2);
    }

    #[test]
    fn probe_result_is_policy_independent() {
        // The reduce must compute the same sum regardless of where the
        // tree stops splitting — the probe times work, not answers.
        let n = 1u64 << 12;
        let whole = reduce_node(0, n, 0, 10, SplitPolicy::Fixed(n as usize), 0);
        let split = reduce_node(0, n, 0, 10, SplitPolicy::Fixed(64), 0);
        let adaptive = reduce_node(0, n, 0, 4, SplitPolicy::adaptive(), 0);
        assert_eq!(whole, split);
        assert_eq!(whole, adaptive);
        assert_eq!(whole, leaf_sum(0, n));
    }

    #[test]
    fn sweep_returns_a_candidate_with_a_finite_score() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let candidates = candidate_policies(1 << 12, pool.threads());
        let plan = run_sweep(&pool, 1 << 12, &candidates);
        assert!(candidates.contains(&plan.policy));
        assert!(plan.score_ns > 0 && plan.score_ns < u64::MAX);
        assert_eq!(plan.candidates as usize, candidates.len());
    }

    #[test]
    fn probe_survives_a_shut_down_pool() {
        let pool = Arc::new(ForkJoinPool::new(1));
        pool.shutdown();
        // try_install fails; the probe must still complete on the
        // caller (joins migrate to the global pool).
        let ns = probe_reduce(&pool, 1 << 10, SplitPolicy::Fixed(256));
        assert!(ns > 0);
    }
}
