//! # pltune — self-tuning split-policy calibration with a plan cache
//!
//! The paper's Figure 3 shows speedup is acutely sensitive to leaf
//! granularity, yet a fixed `n / (4 × threads)` heuristic (or the
//! demand-driven adaptive policy) rediscovers its configuration from
//! scratch on every collect. This crate closes the loop the ROADMAP
//! names ("fast as the hardware allows", caching): it measures which
//! [`SplitPolicy`] actually wins for a pipeline *shape* and remembers
//! the answer across runs — and, via JSON persistence, across
//! processes.
//!
//! * [`Fingerprint`] — identifies a pipeline by source/fused-chain type
//!   summary, collector type summary, size bucket (`⌊log2 n⌋`), whether
//!   the size is exact (`SIZED`), and pool width;
//! * [`PlanCache`] — a concurrent, `Arc`-shared map from fingerprint to
//!   [`Plan`]. A miss claims a [`CalibrationTicket`] under the lock, so
//!   exactly one thread calibrates a given fingerprint while racers
//!   proceed untuned ([`Lookup::Busy`]); plans for other pool widths
//!   are invalidated when the width changes;
//! * [`run_sweep`] / [`candidate_policies`] — the first-sight
//!   calibration: a short sweep over fixed leaf sizes and the adaptive
//!   policy, timed on a synthetic divide-and-conquer reduce built
//!   directly on [`forkjoin::join`] that mirrors the collect driver's
//!   recursion (same stop rules, same depth caps);
//! * [`resolve`] — the one-call driver used by `jstreams` /`jplf`:
//!   hit → cached policy (emits [`TuneOutcome::Hit`]); vacant → claim,
//!   sweep, install, use the winner (emits [`TuneOutcome::Calibrate`]);
//!   busy → `None`, caller falls back to its default (emits
//!   [`TuneOutcome::Miss`]).
//!
//! Calibration times candidates with `Instant` rather than nesting
//! [`plobs::recorded`]: recorded sections hold a non-reentrant
//! process-global guard, so a tuner that re-entered it from inside a
//! benchmark's recorded section would deadlock. Tune outcomes still
//! reach whatever sink is installed through ordinary [`plobs::emit`],
//! which is how `RunReport::tune_*` counters prove a warmed cache
//! skipped calibration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod calibrate;
pub mod fingerprint;
pub mod plan;

pub use cache::{CalibrationTicket, Lookup, PlanCache};
pub use calibrate::{candidate_policies, probe_reduce, probe_size, run_sweep};
pub use fingerprint::{size_bucket, summarize_type, Fingerprint};
pub use plan::Plan;

use forkjoin::{ForkJoinPool, SplitPolicy};
use plobs::{Event, TuneOutcome};
use std::sync::Arc;

/// Resolves a split policy for `fp` against `cache`, calibrating on
/// `pool` when this thread claims a vacant slot. Returns `None` when
/// another thread is already calibrating this fingerprint — the caller
/// should proceed with its default policy rather than wait.
///
/// Emits one [`Event::Tune`] per call with the outcome.
pub fn resolve(
    cache: &Arc<PlanCache>,
    pool: &ForkJoinPool,
    fp: &Fingerprint,
) -> Option<SplitPolicy> {
    match cache.lookup(fp) {
        Lookup::Hit(plan) => {
            plobs::emit(Event::Tune {
                outcome: TuneOutcome::Hit,
            });
            Some(plan.policy)
        }
        Lookup::Busy => {
            plobs::emit(Event::Tune {
                outcome: TuneOutcome::Miss,
            });
            None
        }
        Lookup::Claimed(ticket) => {
            plobs::emit(Event::Tune {
                outcome: TuneOutcome::Calibrate,
            });
            let n = probe_size(fp.size_bucket);
            let plan = run_sweep(pool, n, &candidate_policies(n, pool.threads()));
            let policy = plan.policy;
            // A panic inside the sweep drops the ticket uninstalled,
            // reverting the slot to vacant for a later retry.
            ticket.install(plan);
            Some(policy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_calibrates_once_then_hits() {
        let cache = Arc::new(PlanCache::new());
        let pool = Arc::new(ForkJoinPool::new(2));
        let fp = Fingerprint::new("probe<u64>", "sum", 1 << 12, true, pool.threads());

        let ((), report) = plobs::recorded(|| {
            let first = resolve(&cache, &pool, &fp).expect("first sight calibrates");
            let second = resolve(&cache, &pool, &fp).expect("second sight hits");
            assert_eq!(first, second, "the installed winner must be served back");
        });
        assert_eq!(report.tune_calibrations, 1);
        assert_eq!(report.tune_hits, 1);
        assert_eq!(report.tune_misses, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn resolve_misses_while_a_ticket_is_held() {
        let cache = Arc::new(PlanCache::new());
        let pool = Arc::new(ForkJoinPool::new(1));
        let fp = Fingerprint::new("p", "c", 64, true, pool.threads());
        let ticket = match cache.lookup(&fp) {
            Lookup::Claimed(t) => t,
            _ => panic!("fresh cache must claim"),
        };
        let ((), report) = plobs::recorded(|| {
            assert!(resolve(&cache, &pool, &fp).is_none(), "busy slot → default");
        });
        assert_eq!(report.tune_misses, 1);
        drop(ticket);
        // The abandoned ticket reverted the slot: next sight calibrates.
        assert!(matches!(cache.lookup(&fp), Lookup::Claimed(_)));
    }
}
