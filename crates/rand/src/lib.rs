//! Offline stand-in for `rand`.
//!
//! Provides the deterministic-workload subset the benches use:
//! `StdRng::seed_from_u64` and `Rng::random_range` over integer and float
//! ranges. The generator is SplitMix64 — not the real crate's ChaCha, but
//! fully deterministic per seed, which is the property the workload
//! generators (`plbench::random_ints` et al.) actually depend on.

/// Core generator state (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable generators (the one constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut SplitMix64) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample(rng) as f32
    }
}

/// Random-value methods available on any generator.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsMutSplitMix;

    /// A uniform `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Access to the underlying SplitMix64 core (implementation detail that
/// keeps `random_range` monomorphic over one state type).
pub trait AsMutSplitMix {
    /// The generator core.
    fn core(&mut self) -> &mut SplitMix64;
}

/// The standard seeded generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: SplitMix64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            core: SplitMix64 {
                // Avoid the all-zero weak state and decorrelate tiny seeds.
                state: seed ^ 0x5DEE_CE66_D1A4_F2B9,
            },
        }
    }
}

impl AsMutSplitMix for StdRng {
    fn core(&mut self) -> &mut SplitMix64 {
        &mut self.core
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.core())
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::{Rng, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| a.random_range(0..1000)).collect();
        let diff: Vec<i64> = (0..16).map(|_| c.random_range(0..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn values_spread_across_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(r.random_range(0u8..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
