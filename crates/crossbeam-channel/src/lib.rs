//! Offline stand-in for `crossbeam-channel`.
//!
//! Wraps `std::sync::mpsc` behind the `unbounded()` / `Sender` /
//! `Receiver` names the MPI simulator uses. Delivery is FIFO per channel
//! and `send`/`recv` report disconnection through `Result`, matching the
//! real crate's observable behaviour for this workspace's usage (one
//! dedicated channel per (source, destination) rank pair).

use std::sync::mpsc;

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

/// Error returned when the receiving half has been dropped.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned when the sending half has been dropped with no queued
/// messages left.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl<T> Sender<T> {
    /// Sends `value`; fails only when the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|e| SendError(e.0))
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks for the next message; fails when all senders are gone and
    /// the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive; `None` when no message is ready.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.try_recv().ok()
    }
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
        let (tx2, rx2) = unbounded::<u8>();
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap())
            .join()
            .unwrap();
        tx.send(8).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }
}
