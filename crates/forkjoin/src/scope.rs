//! Structured task scopes.
//!
//! A [`Scope`] lets a computation spawn an unbounded, dynamic set of
//! tasks and guarantees all of them (including transitively spawned ones)
//! have finished before [`scope`] returns — the structured-concurrency
//! contract of `ForkJoinTask::invokeAll` / rayon's `scope`.
//!
//! Tasks are `'static` (data is shared via `Arc`, matching the rest of
//! this repository's Arc-based storage design); the scope handle itself
//! is cheaply clonable and can be captured by tasks to spawn more work.

use crate::latch::CountLatch;
use crate::pool::{current_worker, help_until, push_local};
use crate::ForkJoinPool;
use parking_lot::Mutex;
use std::sync::Arc;

/// Handle for spawning tasks into a running scope.
pub struct Scope {
    latch: Arc<CountLatch>,
    panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
}

impl Clone for Scope {
    fn clone(&self) -> Self {
        Scope {
            latch: Arc::clone(&self.latch),
            panic: Arc::clone(&self.panic),
        }
    }
}

impl Scope {
    /// Spawns a task belonging to this scope. The task may capture a
    /// clone of the scope and spawn further tasks; the scope will not
    /// complete until the whole tree has.
    pub fn spawn(&self, f: impl FnOnce(&Scope) + Send + 'static) {
        self.latch.increment();
        let me = self.clone();
        let job = Box::new(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&me)));
            if let Err(payload) = r {
                let mut slot = me.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            me.latch.decrement();
        });
        match current_worker() {
            Some((state, _)) => push_local(&state, job),
            None => crate::global_pool().spawn(job),
        }
    }

    /// Number of tasks still outstanding (racy; diagnostics only).
    pub fn pending(&self) -> usize {
        self.latch.count()
    }
}

/// Runs `f` with a [`Scope`], then waits for every spawned task.
///
/// The first panic from any task is re-thrown here after the scope has
/// quiesced. Runs on the current pool when called from a worker, else on
/// the [global pool](crate::global_pool).
pub fn scope<R>(f: impl FnOnce(&Scope) -> R + Send + 'static) -> R
where
    R: Send + 'static,
{
    match current_worker() {
        Some((state, index)) => {
            let latch = Arc::new(CountLatch::new(1)); // owner increment
            let sc = Scope {
                latch: Arc::clone(&latch),
                panic: Arc::new(Mutex::new(None)),
            };
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&sc)));
            latch.decrement(); // release the owner increment
            help_until(&state, index, latch_as_latch(&latch));
            if let Some(p) = sc.panic.lock().take() {
                std::panic::resume_unwind(p);
            }
            match r {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        None => crate::global_pool().install(move || scope(f)),
    }
}

/// Runs a scope pinned to a specific pool.
pub fn scope_on<R>(pool: &ForkJoinPool, f: impl FnOnce(&Scope) -> R + Send + 'static) -> R
where
    R: Send + 'static,
{
    pool.install(move || scope(f))
}

// CountLatch wraps a Latch; expose the inner latch for help_until without
// widening the latch API surface.
fn latch_as_latch(c: &CountLatch) -> &crate::latch::Latch {
    c.inner_latch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_waits_for_all_tasks() {
        let pool = ForkJoinPool::new(3);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        scope_on(&pool, move |s| {
            for _ in 0..64 {
                let n3 = Arc::clone(&n2);
                s.spawn(move |_| {
                    n3.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_spawns_are_awaited() {
        let pool = ForkJoinPool::new(2);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        scope_on(&pool, move |s| {
            for _ in 0..4 {
                let n3 = Arc::clone(&n2);
                s.spawn(move |s| {
                    for _ in 0..4 {
                        let n4 = Arc::clone(&n3);
                        s.spawn(move |_| {
                            n4.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_single_thread_pool_terminates() {
        let pool = ForkJoinPool::new(1);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        scope_on(&pool, move |s| {
            let n3 = Arc::clone(&n2);
            s.spawn(move |s| {
                let n4 = Arc::clone(&n3);
                s.spawn(move |_| {
                    n4.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_value() {
        let pool = ForkJoinPool::new(2);
        let v = scope_on(&pool, |_| 123);
        assert_eq!(v, 123);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let pool = ForkJoinPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope_on(&pool, |s| {
                s.spawn(|_| panic!("task bang"));
            })
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 9), 9); // pool survives
    }
}
