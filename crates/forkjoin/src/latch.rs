//! One-shot and counting latches.
//!
//! Latches are the completion signals of the pool: every task that someone
//! may wait on carries one. The design follows the classic two-phase wait
//! (spin on an atomic flag, then block on a condvar) described in the
//! fork-join literature; `parking_lot` primitives keep the blocked path
//! cheap.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// A one-shot boolean latch.
///
/// Starts unset; [`Latch::set`] flips it exactly once (further calls are
/// idempotent) and wakes all waiters.
#[derive(Default)]
pub struct Latch {
    done: AtomicBool,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    /// Creates an unset latch.
    pub fn new() -> Self {
        Latch::default()
    }

    /// `true` once [`Latch::set`] has been called.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Sets the latch and wakes all current waiters.
    pub fn set(&self) {
        self.done.store(true, Ordering::Release);
        // Scheduling point between publishing the flag and notifying:
        // this is exactly the window where a naive latch (no mutex
        // bridge) loses wakeups, so let plcheck interleave here.
        plcheck::yield_op("latch::set::published");
        // The lock guarantees no waiter can observe `done == false` and
        // then miss the notification.
        let _guard = self.mutex.lock();
        self.cv.notify_all();
    }

    /// Blocks until the latch is set.
    pub fn wait(&self) {
        if self.is_set() {
            return;
        }
        // Scheduling point between the failed fast-path check and
        // taking the mutex — the other half of the lost-wakeup window.
        plcheck::yield_op("latch::wait::checked");
        let mut guard = self.mutex.lock();
        while !self.is_set() {
            self.cv.wait(&mut guard);
        }
    }

    /// Blocks until the latch is set or `timeout` elapses.
    /// Returns `true` when the latch is set.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        if self.is_set() {
            return true;
        }
        plcheck::yield_op("latch::wait_timeout::checked");
        let mut guard = self.mutex.lock();
        if self.is_set() {
            return true;
        }
        self.cv.wait_for(&mut guard, timeout);
        self.is_set()
    }
}

/// A latch that sets once a counter of outstanding tasks reaches zero.
///
/// Used by [`crate::scope()`]: each spawned task increments before being
/// queued and decrements on completion; the scope owner waits for the
/// whole tree.
pub struct CountLatch {
    count: AtomicUsize,
    inner: Latch,
}

impl CountLatch {
    /// Creates a counting latch with an initial count.
    ///
    /// With `initial == 0` the latch starts **unset** — it only sets via a
    /// [`CountLatch::decrement`] that brings an incremented count back to
    /// zero, so callers typically hold one "owner" increment.
    pub fn new(initial: usize) -> Self {
        CountLatch {
            count: AtomicUsize::new(initial),
            inner: Latch::new(),
        }
    }

    /// Registers one more outstanding task.
    pub fn increment(&self) {
        plcheck::yield_op("count_latch::increment");
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one task complete; sets the latch when the count reaches
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics on underflow (more decrements than increments), which would
    /// indicate a scope bookkeeping bug.
    pub fn decrement(&self) {
        plcheck::yield_op("count_latch::decrement");
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "CountLatch underflow");
        if prev == 1 {
            self.inner.set();
        }
    }

    /// Current outstanding count (racy; diagnostics only).
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// `true` once the count has dropped to zero.
    pub fn is_set(&self) -> bool {
        self.inner.is_set()
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        self.inner.wait()
    }

    /// Blocks until the count reaches zero or the timeout elapses; returns
    /// `true` when set.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        self.inner.wait_timeout(timeout)
    }

    /// The underlying one-shot latch (set when the count reaches zero);
    /// lets waiters use latch-generic helpers such as the pool's
    /// help-while-waiting loop.
    pub fn inner_latch(&self) -> &Latch {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn latch_starts_unset() {
        let l = Latch::new();
        assert!(!l.is_set());
        assert!(!l.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn set_then_wait_returns_immediately() {
        let l = Latch::new();
        l.set();
        assert!(l.is_set());
        l.wait(); // must not block
        assert!(l.wait_timeout(Duration::from_secs(0)));
    }

    #[test]
    fn set_is_idempotent() {
        let l = Latch::new();
        l.set();
        l.set();
        assert!(l.is_set());
    }

    #[test]
    fn cross_thread_wakeup() {
        let l = Arc::new(Latch::new());
        let l2 = Arc::clone(&l);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            l2.set();
        });
        l.wait();
        assert!(l.is_set());
        h.join().unwrap();
    }

    #[test]
    fn count_latch_sets_at_zero() {
        let c = CountLatch::new(2);
        assert!(!c.is_set());
        c.decrement();
        assert!(!c.is_set());
        c.decrement();
        assert!(c.is_set());
        c.wait(); // no block
    }

    #[test]
    fn count_latch_tracks_increments() {
        let c = CountLatch::new(1);
        c.increment();
        assert_eq!(c.count(), 2);
        c.decrement();
        assert!(!c.is_set());
        c.decrement();
        assert!(c.is_set());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn count_latch_underflow_panics() {
        let c = CountLatch::new(0);
        c.decrement();
    }

    #[test]
    fn count_latch_cross_thread() {
        let c = Arc::new(CountLatch::new(4));
        let mut handles = vec![];
        for _ in 0..4 {
            let c2 = Arc::clone(&c);
            handles.push(thread::spawn(move || c2.decrement()));
        }
        c.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.count(), 0);
    }
}
