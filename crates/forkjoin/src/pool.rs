//! The work-stealing pool.
//!
//! Architecture (a deliberately faithful, safe-Rust rendition of the
//! ForkJoinPool design that Java parallel streams rely on):
//!
//! * one **global injector** (`crossbeam_deque::Injector`) receives work
//!   submitted from outside the pool;
//! * each worker owns a **LIFO deque** (`crossbeam_deque::Worker`); forked
//!   halves of a `join` are pushed there, giving the depth-first,
//!   cache-friendly execution order fork-join schedulers want;
//! * idle workers **steal** FIFO from peers or the injector, spreading the
//!   breadth-first ends of the task tree across cores;
//! * a worker that waits on a latch **helps**: it keeps executing other
//!   tasks instead of blocking, which is what makes nested `join`s
//!   deadlock-free on any pool size (including a single thread).
//!
//! Idle workers park on a condvar and are woken whenever new work is
//! pushed. All signalling is two-phase (atomic fast path, lock only when
//! sleepers exist).
//!
//! Besides the always-on [`Counters`], every scheduling decision is also
//! published as a structured [`plobs::Event`] (execute, steal with its
//! source, park, join disposition) so a [`plobs::RunRecorder`] can
//! attribute work to individual workers. When no sink is installed each
//! emission is one relaxed atomic load.

use crate::latch::Latch;
use crate::metrics::{Counters, MetricsSnapshot};
use crate::task::{run_captured, unwrap_or_resume, Job, TaskResult, TaskSlot};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use plobs::{Event, StealSource};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared state between the pool handle and its workers.
pub(crate) struct PoolState {
    pub(crate) injector: Injector<Job>,
    pub(crate) stealers: Vec<Stealer<Job>>,
    pub(crate) counters: Counters,
    shutdown: AtomicBool,
    sleepers: AtomicUsize,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
}

impl PoolState {
    /// Wakes workers after new work has been made visible.
    pub(crate) fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_mutex.lock();
            self.sleep_cv.notify_all();
        }
    }

    fn park(&self, index: usize) {
        Counters::bump(&self.counters.parks);
        plobs::emit(Event::PoolPark {
            worker: index as u32,
        });
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let mut g = self.sleep_mutex.lock();
            // Re-check under the lock: work may have been pushed between
            // our last scan and registering as a sleeper.
            if !self.shutdown.load(Ordering::SeqCst) && self.injector.is_empty() {
                // Timed wait so that a lost wakeup can never wedge the
                // pool; the timeout re-enters the scan loop.
                self.sleep_cv.wait_for(&mut g, Duration::from_millis(1));
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

thread_local! {
    /// The deque owned by this thread when it is a pool worker.
    static LOCAL_DEQUE: RefCell<Option<Deque<Job>>> = const { RefCell::new(None) };
    /// Identity of the pool this thread works for, plus its worker index.
    static WORKER_CTX: RefCell<Option<(Arc<PoolState>, usize)>> = const { RefCell::new(None) };
}

/// Returns the pool/index of the current thread when it is a worker.
pub(crate) fn current_worker() -> Option<(Arc<PoolState>, usize)> {
    WORKER_CTX.with(|c| c.borrow().clone())
}

/// A cheap pressure probe onto one pool worker, used by adaptive split
/// policies to decide whether forking more tasks is worthwhile.
///
/// Both readings are a handful of relaxed/locked loads — safe to call on
/// every node of a divide-and-conquer descent.
#[derive(Clone)]
pub struct WorkerProbe {
    state: Arc<PoolState>,
    index: usize,
}

impl WorkerProbe {
    /// Index of the probed worker within its pool.
    pub fn worker(&self) -> usize {
        self.index
    }

    /// Number of workers in the probed pool.
    pub fn threads(&self) -> usize {
        self.state.stealers.len()
    }

    /// Queued (not yet claimed) tasks in the probed worker's deque.
    ///
    /// Only meaningful when called *on* the probed worker's own thread:
    /// the local deque is thread-local, so from any other thread this
    /// reads through the worker's stealer instead.
    pub fn queue_depth(&self) -> usize {
        let local = LOCAL_DEQUE.with(|l| l.borrow().as_ref().map(|d| d.len()));
        match (local, current_worker()) {
            (Some(n), Some((state, index)))
                if index == self.index && Arc::ptr_eq(&state, &self.state) =>
            {
                n
            }
            _ => self.state.stealers[self.index].len(),
        }
    }

    /// Pool-wide count of successful steals (injector + peer) so far.
    /// Monotonic; adaptive splitters compare deltas between nodes to
    /// detect that thieves are actively draining queued work.
    pub fn steal_pressure(&self) -> u64 {
        self.state.counters.injector_steals.load(Ordering::Relaxed)
            + self.state.counters.peer_steals.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for WorkerProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerProbe")
            .field("worker", &self.index)
            .field("threads", &self.threads())
            .finish()
    }
}

/// Probe for the current thread when it is a pool worker; `None` on
/// external threads.
pub fn current_probe() -> Option<WorkerProbe> {
    current_worker().map(|(state, index)| WorkerProbe { state, index })
}

/// Pushes a job to the current worker's local deque (LIFO end).
/// Must only be called from a worker thread.
pub(crate) fn push_local(state: &PoolState, job: Job) {
    LOCAL_DEQUE.with(|l| {
        l.borrow()
            .as_ref()
            .expect("push_local outside a worker thread")
            .push(job)
    });
    state.notify();
}

/// Finds one runnable job for worker `index`: local deque first, then the
/// injector, then peers (starting after our own index to spread load).
pub(crate) fn find_job(state: &PoolState, index: usize) -> Option<Job> {
    // 1. Own deque (LIFO: newest fork first — depth-first descent).
    let local = LOCAL_DEQUE.with(|l| l.borrow().as_ref().and_then(|d| d.pop()));
    if local.is_some() {
        return local;
    }
    // 2. Global injector (FIFO batch steal into our deque).
    loop {
        let stolen = LOCAL_DEQUE.with(|l| {
            let b = l.borrow();
            match b.as_ref() {
                Some(d) => state.injector.steal_batch_and_pop(d),
                None => state.injector.steal(),
            }
        });
        match stolen {
            Steal::Success(job) => {
                Counters::bump(&state.counters.injector_steals);
                plobs::emit(Event::PoolSteal {
                    worker: index as u32,
                    source: StealSource::Injector,
                });
                return Some(job);
            }
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // 3. Peer deques (FIFO end: the oldest — largest — task of a victim).
    let n = state.stealers.len();
    for off in 1..=n {
        let victim = (index + off) % n;
        if victim == index {
            continue;
        }
        loop {
            match state.stealers[victim].steal() {
                Steal::Success(job) => {
                    Counters::bump(&state.counters.peer_steals);
                    plobs::emit(Event::PoolSteal {
                        worker: index as u32,
                        source: StealSource::Peer,
                    });
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Runs jobs until `latch` is set. This is the "help while waiting"
/// discipline: a joiner never blocks while runnable work exists, which is
/// what makes nested joins safe on a single-threaded pool.
pub(crate) fn help_until(state: &PoolState, index: usize, latch: &Latch) {
    while !latch.is_set() {
        match find_job(state, index) {
            Some(job) => {
                Counters::bump(&state.counters.executed);
                plobs::emit(Event::PoolExecute {
                    worker: index as u32,
                });
                job();
            }
            None => {
                // No runnable work: the awaited task is in flight on
                // another worker. Short timed wait, then rescan (the task
                // may spawn helpable children).
                latch.wait_timeout(Duration::from_micros(200));
            }
        }
    }
}

fn worker_loop(state: Arc<PoolState>, index: usize, deque: Deque<Job>) {
    LOCAL_DEQUE.with(|l| *l.borrow_mut() = Some(deque));
    WORKER_CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&state), index)));
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match find_job(&state, index) {
            Some(job) => {
                Counters::bump(&state.counters.executed);
                plobs::emit(Event::PoolExecute {
                    worker: index as u32,
                });
                job();
            }
            None => state.park(index),
        }
    }
}

/// A work-stealing fork-join thread pool.
///
/// The equivalent of Java's `ForkJoinPool`: sized from the number of
/// available processors by default, executing recursive task trees with
/// work stealing. Dropping the pool shuts its workers down (pending
/// fire-and-forget `spawn`s may be discarded; everything awaited through
/// [`ForkJoinPool::install`] or [`crate::join`] has completed by then).
pub struct ForkJoinPool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
}

impl ForkJoinPool {
    /// Creates a pool with `threads` workers (min 1).
    pub fn new(threads: usize) -> Self {
        ForkJoinPool::with_config(threads, "forkjoin-worker", None)
    }

    /// Creates a pool with explicit worker naming and stack size; used
    /// by [`crate::PoolBuilder`].
    pub(crate) fn with_config(
        threads: usize,
        name_prefix: &str,
        stack_size: Option<usize>,
    ) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Deque<Job>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let state = Arc::new(PoolState {
            injector: Injector::new(),
            stealers,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let st = Arc::clone(&state);
                let mut b = std::thread::Builder::new().name(format!("{name_prefix}-{i}"));
                if let Some(bytes) = stack_size {
                    b = b.stack_size(bytes);
                }
                b.spawn(move || worker_loop(st, i, d))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ForkJoinPool { state, handles }
    }

    /// Creates a pool sized like Java's common pool:
    /// `availableProcessors` workers.
    pub fn with_default_parallelism() -> Self {
        ForkJoinPool::new(num_cpus::get())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.state.stealers.len()
    }

    /// Runs `f` on the pool and blocks until it returns, propagating
    /// panics. When called from a worker of this same pool, `f` runs
    /// inline (matching rayon / ForkJoinPool semantics). A worker of a
    /// *different* pool helps its own pool while waiting instead of
    /// blocking on the submission latch, so re-entrant installs (e.g. a
    /// collector's combine calling back into a parallel collect on the
    /// global pool) can never wedge the caller's pool.
    ///
    /// # Panics
    ///
    /// Panics when the pool has been [shut down](ForkJoinPool::shutdown);
    /// fallible callers should use [`ForkJoinPool::try_install`].
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        match self.try_install(f) {
            Ok(r) => r,
            Err(_) => panic!("ForkJoinPool::install: pool has been shut down"),
        }
    }

    /// Fallible [`ForkJoinPool::install`]: runs `f` on the pool, or
    /// returns it unexecuted as `Err(f)` when submission fails because
    /// the pool is (or becomes) shut down before a worker claims the
    /// closure. Exactly one of the two happens — `Err` guarantees `f`
    /// never ran, so the caller can route it elsewhere (e.g. the
    /// sequential fallback of a degrading collect driver).
    ///
    /// Panics inside `f` still propagate to the caller, exactly as with
    /// `install`.
    pub fn try_install<R, F>(&self, f: F) -> Result<R, F>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let caller = current_worker();
        if let Some((state, _)) = &caller {
            if Arc::ptr_eq(state, &self.state) {
                return Ok(f());
            }
        }
        if self.is_shut_down() {
            return Err(f);
        }
        // The closure lives in a claimable slot: a queued stub claims and
        // runs it, and — should the pool shut down with the stub still
        // queued — the submitter claims it *back*, which is what makes
        // the `Err` path's "never ran" guarantee sound.
        let slot = TaskSlot::new(f);
        let latch = Arc::new(Latch::new());
        let result: Arc<Mutex<Option<TaskResult<R>>>> = Arc::new(Mutex::new(None));
        let job: Job = {
            let slot = Arc::clone(&slot);
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            Box::new(move || {
                if let Some(f) = slot.claim() {
                    *result.lock() = Some(run_captured(f));
                }
                latch.set();
            })
        };
        self.state.injector.push(job);
        self.state.notify();
        match caller {
            // Foreign-pool worker: keep executing the caller's own pool
            // while the submission runs, instead of parking a worker.
            Some((own_state, own_index)) => {
                while !latch.is_set() {
                    match find_job(&own_state, own_index) {
                        Some(job) => {
                            Counters::bump(&own_state.counters.executed);
                            plobs::emit(Event::PoolExecute {
                                worker: own_index as u32,
                            });
                            job();
                        }
                        None => {
                            latch.wait_timeout(Duration::from_micros(200));
                        }
                    }
                    if !latch.is_set() && self.is_shut_down() {
                        if let Some(f) = slot.claim() {
                            return Err(f);
                        }
                    }
                }
            }
            None => {
                while !latch.wait_timeout(Duration::from_millis(1)) {
                    if self.is_shut_down() {
                        if let Some(f) = slot.claim() {
                            return Err(f);
                        }
                        // A worker claimed the closure before exiting;
                        // its result (and latch) are on the way.
                        latch.wait();
                        break;
                    }
                }
            }
        }
        let r = result.lock().take().expect("stub ran the claimed closure");
        Ok(unwrap_or_resume(r))
    }

    /// Pressure probe for the calling thread when it is a worker of
    /// *this* pool; `None` on external threads and foreign-pool workers.
    pub fn probe(&self) -> Option<WorkerProbe> {
        current_probe().filter(|p| Arc::ptr_eq(&p.state, &self.state))
    }

    /// Fire-and-forget execution of `f` on the pool.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        Counters::bump(&self.state.counters.spawns);
        self.state.injector.push(Box::new(f));
        self.state.notify();
    }

    /// Snapshot of the scheduler counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.counters.snapshot()
    }

    /// Work queued pool-wide and not yet claimed: the injector backlog
    /// plus every worker deque. Inherently racy — a saturation heuristic
    /// for graceful-degradation decisions, not an exact figure.
    pub fn queued_tasks(&self) -> usize {
        self.state.injector.len() + self.state.stealers.iter().map(|s| s.len()).sum::<usize>()
    }

    /// Asks the workers to exit after their current job. Jobs still
    /// queued are discarded (never run); later submissions fail
    /// ([`ForkJoinPool::try_install`] returns `Err`, `install` panics).
    /// Idempotent; worker threads are joined when the pool is dropped.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _g = self.state.sleep_mutex.lock();
        self.state.sleep_cv.notify_all();
    }

    /// `true` once [`ForkJoinPool::shutdown`] has been called (or the
    /// pool has begun dropping).
    pub fn is_shut_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn state(&self) -> &Arc<PoolState> {
        &self.state
    }
}

impl Drop for ForkJoinPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.state.sleep_mutex.lock();
            self.state.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ForkJoinPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkJoinPool")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn install_returns_value() {
        let pool = ForkJoinPool::new(2);
        let r = pool.install(|| 6 * 7);
        assert_eq!(r, 42);
    }

    #[test]
    fn install_runs_on_worker_thread() {
        let pool = ForkJoinPool::new(2);
        let name = pool.install(|| std::thread::current().name().map(str::to_owned));
        assert!(name.unwrap().starts_with("forkjoin-worker-"));
    }

    #[test]
    fn nested_install_runs_inline() {
        let pool = Arc::new(ForkJoinPool::new(1));
        // A nested install from a worker must not deadlock on a 1-thread
        // pool — it runs inline.
        let p2 = Arc::clone(&pool);
        let r = pool.install(move || p2.install(|| 5));
        assert_eq!(r, 5);
    }

    #[test]
    fn install_propagates_panics() {
        let pool = ForkJoinPool::new(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> i32 { panic!("worker bang") })
        }));
        assert!(r.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.install(|| 1), 1);
    }

    #[test]
    fn spawn_executes() {
        let pool = ForkJoinPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let latch = Arc::new(Latch::new());
        for i in 0..16 {
            let c = Arc::clone(&counter);
            let l = Arc::clone(&latch);
            pool.spawn(move || {
                if c.fetch_add(1, Ordering::SeqCst) == 15 {
                    l.set();
                }
                let _ = i;
            });
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert!(pool.metrics().spawns >= 16);
    }

    #[test]
    fn many_installs_in_sequence() {
        let pool = ForkJoinPool::new(3);
        for i in 0..100i64 {
            assert_eq!(pool.install(move || i * 2), i * 2);
        }
        assert!(pool.metrics().executed >= 100);
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ForkJoinPool::new(3).threads(), 3);
        assert_eq!(ForkJoinPool::new(0).threads(), 1); // clamped
        assert!(ForkJoinPool::with_default_parallelism().threads() >= 1);
    }

    #[test]
    fn drop_terminates_workers() {
        let pool = ForkJoinPool::new(4);
        pool.install(|| ());
        drop(pool); // must not hang
    }

    #[test]
    fn try_install_runs_on_live_pool() {
        let pool = ForkJoinPool::new(2);
        assert_eq!(pool.try_install(|| 6 * 7).ok(), Some(42));
    }

    #[test]
    fn try_install_returns_closure_after_shutdown() {
        let pool = ForkJoinPool::new(2);
        assert!(!pool.is_shut_down());
        pool.shutdown();
        pool.shutdown(); // idempotent
        assert!(pool.is_shut_down());
        let f = pool.try_install(|| 99).expect_err("submission must fail");
        // The closure came back unexecuted and still runs elsewhere.
        assert_eq!(f(), 99);
    }

    #[test]
    #[should_panic(expected = "shut down")]
    fn install_panics_after_shutdown() {
        let pool = ForkJoinPool::new(1);
        pool.shutdown();
        pool.install(|| ());
    }

    #[test]
    fn queued_tasks_reads_backlog() {
        let pool = ForkJoinPool::new(1);
        assert_eq!(pool.queued_tasks(), 0);
        // Wedge the single worker, then pile up spawns behind it.
        let gate = Arc::new(Latch::new());
        let g = Arc::clone(&gate);
        let running = Arc::new(Latch::new());
        let r = Arc::clone(&running);
        pool.spawn(move || {
            r.set();
            g.wait();
        });
        running.wait();
        for _ in 0..4 {
            pool.spawn(|| ());
        }
        assert!(pool.queued_tasks() >= 1, "backlog must be visible");
        gate.set();
    }
}
