//! Scheduler instrumentation.
//!
//! Counters are updated with relaxed atomics (they are statistics, not
//! synchronisation) and snapshotted for tests and benchmark reports: the
//! tie-vs-zip ablation, for instance, reports steal counts alongside wall
//! time to explain scheduling behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters owned by the pool.
#[derive(Default)]
pub struct Counters {
    /// Jobs actually executed by workers (stubs that found their slot
    /// already claimed still count — they were scheduled).
    pub executed: AtomicU64,
    /// Successful steals from the global injector.
    pub injector_steals: AtomicU64,
    /// Successful steals from a peer worker's deque.
    pub peer_steals: AtomicU64,
    /// `join` invocations.
    pub joins: AtomicU64,
    /// Fork halves claimed back by the forking thread (no thief arrived).
    pub joins_inline: AtomicU64,
    /// Fork halves executed by a thief.
    pub joins_stolen: AtomicU64,
    /// Times a worker went to sleep for lack of work.
    pub parks: AtomicU64,
    /// Fire-and-forget `spawn` calls.
    pub spawns: AtomicU64,
}

impl Counters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            executed: self.executed.load(Ordering::Relaxed),
            injector_steals: self.injector_steals.load(Ordering::Relaxed),
            peer_steals: self.peer_steals.load(Ordering::Relaxed),
            joins: self.joins.load(Ordering::Relaxed),
            joins_inline: self.joins_inline.load(Ordering::Relaxed),
            joins_stolen: self.joins_stolen.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            spawns: self.spawns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// See [`Counters::executed`].
    pub executed: u64,
    /// See [`Counters::injector_steals`].
    pub injector_steals: u64,
    /// See [`Counters::peer_steals`].
    pub peer_steals: u64,
    /// See [`Counters::joins`].
    pub joins: u64,
    /// See [`Counters::joins_inline`].
    pub joins_inline: u64,
    /// See [`Counters::joins_stolen`].
    pub joins_stolen: u64,
    /// See [`Counters::parks`].
    pub parks: u64,
    /// See [`Counters::spawns`].
    pub spawns: u64,
}

impl MetricsSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            executed: self.executed - earlier.executed,
            injector_steals: self.injector_steals - earlier.injector_steals,
            peer_steals: self.peer_steals - earlier.peer_steals,
            joins: self.joins - earlier.joins,
            joins_inline: self.joins_inline - earlier.joins_inline,
            joins_stolen: self.joins_stolen - earlier.joins_stolen,
            parks: self.parks - earlier.parks,
            spawns: self.spawns - earlier.spawns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = Counters::default();
        Counters::bump(&c.executed);
        Counters::bump(&c.executed);
        Counters::bump(&c.joins);
        let s = c.snapshot();
        assert_eq!(s.executed, 2);
        assert_eq!(s.joins, 1);
        assert_eq!(s.parks, 0);
    }

    #[test]
    fn since_computes_deltas() {
        let c = Counters::default();
        Counters::bump(&c.spawns);
        let a = c.snapshot();
        Counters::bump(&c.spawns);
        Counters::bump(&c.peer_steals);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.spawns, 1);
        assert_eq!(d.peer_steals, 1);
        assert_eq!(d.executed, 0);
    }
}
