//! Split-granularity policies for divide-and-conquer drivers.
//!
//! The paper leaves leaf granularity to the JVM ("the splitting is
//! automatically stopped when a limit that depends on the system is
//! attained", Section V). This module makes that limit an explicit,
//! selectable policy shared by every recursive driver in the repository
//! (the jstreams collect driver and the JPLF fork-join executor):
//!
//! * [`SplitPolicy::Fixed`] — the original static threshold: stop
//!   splitting once a node's size drops to `leaf_size`. Deterministic
//!   tree shape, kept as the mode that reproduces the paper's Figure 3.
//! * [`SplitPolicy::Adaptive`] — demand-driven splitting from pool
//!   pressure, the analogue of guiding forks by
//!   `ForkJoinTask::getSurplusQueuedTaskCount`: a node keeps splitting
//!   while the local worker's deque is (nearly) empty or steals are
//!   being observed, bounded by a depth cap of `log2(threads) + slack`
//!   and a minimum sequential cutoff so leaves stay large enough for the
//!   zero-copy leaf kernels to pay off.
//!
//! The pressure inputs come from [`WorkerProbe`](crate::WorkerProbe)
//! (local queue depth, pool-wide steal count), both a handful of cheap
//! loads on the hot path.

use crate::pool::current_probe;

/// Depth slack over `log2(threads)` used when a policy does not carry
/// its own: the cap allows `2^slack` leaves per worker, enough slack for
/// stealing to balance skewed subtrees.
pub const DEFAULT_DEPTH_SLACK: u32 = 4;

/// `ceil(log2(n))` for `n ≥ 1` (0 for `n ≤ 1`) — the fork depth at
/// which every worker of an `n`-thread pool can own a subtree.
pub fn ceil_log2(n: usize) -> u32 {
    n.max(1).next_power_of_two().trailing_zeros()
}

/// Tuning knobs of the demand-driven policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveSplit {
    /// Sequential cutoff: nodes of an exactly-sized source at or below
    /// this many elements are never split further, keeping leaves large
    /// enough that per-leaf dispatch (and the zero-copy kernels behind
    /// it) stays profitable.
    pub min_leaf: usize,
    /// Extra depth over `log2(threads)` the splitter may descend while
    /// demand persists.
    pub depth_slack: u32,
    /// Surplus-task threshold: keep splitting while the local deque
    /// holds at most this many queued tasks (the
    /// `getSurplusQueuedTaskCount` heuristic).
    pub surplus: usize,
}

impl Default for AdaptiveSplit {
    fn default() -> Self {
        AdaptiveSplit {
            min_leaf: 1024,
            depth_slack: DEFAULT_DEPTH_SLACK,
            surplus: 2,
        }
    }
}

/// How a divide-and-conquer driver decides whether to split a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Stop splitting once a node's (exact) size drops to the given
    /// leaf size — today's static behaviour, the Figure-3 reproduction
    /// mode. Sources without an exact size split to the depth cap
    /// instead (their size estimate is only an upper bound).
    Fixed(usize),
    /// Demand-driven splitting from pool pressure; see [`AdaptiveSplit`].
    Adaptive(AdaptiveSplit),
}

impl SplitPolicy {
    /// The adaptive policy with default tuning.
    pub fn adaptive() -> SplitPolicy {
        SplitPolicy::Adaptive(AdaptiveSplit::default())
    }

    /// `true` for [`SplitPolicy::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SplitPolicy::Adaptive(_))
    }

    /// Hard bound on split depth for a pool of `threads` workers:
    /// `log2(threads) + slack`. Applies to adaptive descent always and
    /// to fixed descent over sources without an exact size.
    pub fn depth_cap(&self, threads: usize) -> u32 {
        let slack = match self {
            SplitPolicy::Fixed(_) => DEFAULT_DEPTH_SLACK,
            SplitPolicy::Adaptive(a) => a.depth_slack,
        };
        ceil_log2(threads) + slack
    }
}

/// One demand-driven split decision, taken from the calling worker's
/// pressure probe: split while the local deque holds at most `surplus`
/// tasks **or** pool-wide steals have advanced past `steals_seen` (a
/// thief is draining queued work, so feeding it is worthwhile).
///
/// Returns `(wants_split, steals_now)`; callers thread `steals_now`
/// into child nodes so each level compares against its parent's
/// observation.
///
/// **Off-pool contract**: a caller with no worker context (an external
/// thread, e.g. a shutdown-race fallback or a calibration probe run
/// before install) always splits and leaves `steals_seen` untouched.
/// This is correct — not over-eager — because an off-worker `join`
/// migrates both halves onto the global pool, where the split buys real
/// parallelism; once the halves land on workers, their own probes take
/// over the decision. What off-pool callers must NOT reuse is a depth
/// cap computed for some *other* pool's width: the cap has to budget
/// the pool that will execute the joins (the caller's own pool for a
/// worker thread, the global pool otherwise). Pinned by the
/// `demand_split_off_pool_always_splits_deterministically` plcheck
/// model and the drivers' fallback tests.
pub fn demand_split(surplus: usize, steals_seen: u64) -> (bool, u64) {
    match current_probe() {
        Some(probe) => {
            let now = probe.steal_pressure();
            (probe.queue_depth() <= surplus || now > steals_seen, now)
        }
        None => (true, steals_seen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForkJoinPool;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn depth_cap_grows_with_threads_and_slack() {
        assert_eq!(SplitPolicy::Fixed(64).depth_cap(1), DEFAULT_DEPTH_SLACK);
        assert_eq!(SplitPolicy::Fixed(64).depth_cap(8), 3 + DEFAULT_DEPTH_SLACK);
        let tight = SplitPolicy::Adaptive(AdaptiveSplit {
            depth_slack: 1,
            ..AdaptiveSplit::default()
        });
        assert_eq!(tight.depth_cap(4), 3);
    }

    #[test]
    fn adaptive_constructor_uses_defaults() {
        let p = SplitPolicy::adaptive();
        assert!(p.is_adaptive());
        assert_eq!(p, SplitPolicy::Adaptive(AdaptiveSplit::default()));
        assert!(!SplitPolicy::Fixed(16).is_adaptive());
    }

    #[test]
    fn demand_split_off_pool_always_splits() {
        let (wants, now) = demand_split(0, 7);
        assert!(wants);
        assert_eq!(now, 7, "off-pool callers keep their snapshot");
    }

    #[test]
    fn demand_split_on_idle_worker_splits() {
        let pool = ForkJoinPool::new(2);
        let (wants, _) = pool.install(|| demand_split(2, u64::MAX));
        // A freshly-installed task sees an empty local deque.
        assert!(wants);
    }
}
