//! Cooperative cancellation: [`CancelToken`] and [`Deadline`].
//!
//! The fork-join pool never preempts a running task; instead, fallible
//! drivers (the streams `try_collect` family, the JPLF executors'
//! `try_execute`) poll a shared token at the natural checkpoints of a
//! divide-and-conquer descent — split, leaf entry and combine — and
//! prune the rest of their subtree when it has tripped. Because the
//! checkpoints bracket every leaf, the worst-case overrun after a
//! cancellation is a single leaf's worth of work.
//!
//! A token trips exactly once: the first `cancel` call wins and its
//! [`CancelReason`] is what every subsequent observer reads. Panic
//! containment uses this to let the *first* failing task publish
//! `CancelReason::Panic` so sibling subtrees stop descending while the
//! panic payload travels back to the caller as a value.

pub use plobs::CancelReason;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token state encoding: 0 = live, otherwise `reason_code(reason)`.
const LIVE: u8 = 0;

fn reason_code(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::Panic => 1,
        CancelReason::User => 2,
        CancelReason::Deadline => 3,
        CancelReason::Found => 4,
    }
}

fn code_reason(code: u8) -> Option<CancelReason> {
    match code {
        1 => Some(CancelReason::Panic),
        2 => Some(CancelReason::User),
        3 => Some(CancelReason::Deadline),
        4 => Some(CancelReason::Found),
        _ => None,
    }
}

/// A cheaply clonable, first-cancel-wins cancellation flag shared by
/// every task of one execution session.
///
/// Cloning shares the flag (`Arc` semantics); checking is one relaxed
/// atomic load, cheap enough for every node of a recursion.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A live (untripped) token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token with `reason`. Returns `true` when this call was
    /// the one that tripped it; later calls (any reason) lose and return
    /// `false`, leaving the original reason in place.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        // Scheduling point before the CAS: which of several racing
        // cancellers wins is real nondeterminism plcheck must explore.
        plcheck::yield_op("cancel::cancel");
        self.state
            .compare_exchange(
                LIVE,
                reason_code(reason),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// `true` once the token has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != LIVE
    }

    /// The winning cancellation reason, `None` while live.
    pub fn reason(&self) -> Option<CancelReason> {
        code_reason(self.state.load(Ordering::Acquire))
    }
}

/// The time base a [`Deadline`] measures against. Chosen once, at
/// construction: wall clock in production, the plcheck virtual clock
/// when constructed on a model thread — so deadline-expiry paths run
/// deterministically (and instantly) under the checker.
#[derive(Clone, Copy, Debug)]
enum Clock {
    Wall { start: Instant, at: Instant },
    Virtual { start_ns: u64, at_ns: u64 },
}

/// A wall-clock budget for one execution session.
///
/// Copyable so every task of the session can carry it by value; all
/// copies measure against the same start instant. Under a plcheck
/// model the budget is measured on the checker's virtual clock
/// instead, which only advances at scheduling points.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    clock: Clock,
}

/// Nanoseconds in `d`, saturating at `u64::MAX` (584 years).
fn nanos_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        let clock = match plcheck::virtual_now_ns() {
            Some(now_ns) => Clock::Virtual {
                start_ns: now_ns,
                at_ns: now_ns.saturating_add(nanos_u64(budget)),
            },
            None => {
                let start = Instant::now();
                Clock::Wall {
                    start,
                    at: start + budget,
                }
            }
        };
        Deadline { clock }
    }

    /// The virtual clock's current reading for a virtual deadline.
    /// Falls back to the expiry instant (conservatively expired) if a
    /// virtual deadline somehow escapes its model — e.g. observed
    /// during teardown unwinding, when the hooks are inert.
    fn virtual_now(at_ns: u64) -> u64 {
        plcheck::virtual_now_ns().unwrap_or(at_ns)
    }

    /// `true` once the budget is exhausted.
    pub fn expired(&self) -> bool {
        match self.clock {
            Clock::Wall { at, .. } => Instant::now() >= at,
            Clock::Virtual { at_ns, .. } => Self::virtual_now(at_ns) >= at_ns,
        }
    }

    /// Time since the session started, on the deadline's clock.
    pub fn elapsed(&self) -> Duration {
        match self.clock {
            Clock::Wall { start, .. } => start.elapsed(),
            Clock::Virtual { start_ns, at_ns } => {
                Duration::from_nanos(Self::virtual_now(at_ns).saturating_sub(start_ns))
            }
        }
    }

    /// Budget left, zero once expired.
    pub fn remaining(&self) -> Duration {
        match self.clock {
            Clock::Wall { at, .. } => at.saturating_duration_since(Instant::now()),
            Clock::Virtual { at_ns, .. } => {
                Duration::from_nanos(at_ns.saturating_sub(Self::virtual_now(at_ns)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert!(t.cancel(CancelReason::Panic));
        assert!(!t.cancel(CancelReason::User));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Panic));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(c.cancel(CancelReason::User));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::User));
    }

    #[test]
    fn concurrent_cancels_have_one_winner() {
        let t = CancelToken::new();
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let t = t.clone();
                    s.spawn(move || {
                        let reason = if i % 2 == 0 {
                            CancelReason::User
                        } else {
                            CancelReason::Deadline
                        };
                        usize::from(t.cancel(reason))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert!(t.reason().is_some());
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
        assert!(far.elapsed() < Duration::from_secs(3600));
    }
}
