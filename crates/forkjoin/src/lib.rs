//! # forkjoin — a work-stealing fork-join pool
//!
//! This crate is the scheduling substrate of the PowerList-streams
//! reproduction: a from-scratch, safe-Rust equivalent of the JVM's
//! `ForkJoinPool`, which is what both Java parallel streams and the JPLF
//! framework execute on (paper, Sections III–IV). It provides:
//!
//! * [`ForkJoinPool`] — a fixed-size pool of workers with per-worker LIFO
//!   deques, a global injector, and work stealing;
//! * [`join`] — the two-way fork-join primitive (work-first execution,
//!   claim-back, help-while-waiting) that divide-and-conquer recursions
//!   bottom out in;
//! * [`scope()`] — structured spawning of dynamic task trees;
//! * [`Latch`] / [`CountLatch`] — completion signalling;
//! * scheduler [metrics](MetricsSnapshot) used by the benchmark harness
//!   to report steal/join behaviour.
//!
//! The pool is deadlock-free on any size ≥ 1 because waiters *help*:
//! a thread waiting on a forked task keeps executing other runnable tasks
//! rather than blocking, so a single worker can execute an arbitrarily
//! nested join tree (validated by tests in the join module).
//!
//! ```
//! use forkjoin::{ForkJoinPool, join};
//!
//! let pool = ForkJoinPool::new(4);
//! let sum: u64 = pool.install(|| {
//!     fn rec(lo: u64, hi: u64) -> u64 {
//!         if hi - lo <= 64 { return (lo..hi).sum(); }
//!         let mid = lo + (hi - lo) / 2;
//!         let (a, b) = join(move || rec(lo, mid), move || rec(mid, hi));
//!         a + b
//!     }
//!     rec(0, 1 << 16)
//! });
//! assert_eq!(sum, (1u64 << 16) * ((1 << 16) - 1) / 2);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cancel;
pub mod latch;
pub mod metrics;
pub mod pool;
pub mod scope;
pub mod split;
pub mod task;

mod join;

pub use builder::PoolBuilder;
pub use cancel::{CancelReason, CancelToken, Deadline};
pub use join::{join, join_on, par_for_each_index};
pub use latch::{CountLatch, Latch};
pub use metrics::MetricsSnapshot;
pub use pool::{current_probe, ForkJoinPool, WorkerProbe};
pub use scope::{scope, scope_on, Scope};
pub use split::{ceil_log2, demand_split, AdaptiveSplit, SplitPolicy, DEFAULT_DEPTH_SLACK};

use std::sync::OnceLock;

static GLOBAL: OnceLock<ForkJoinPool> = OnceLock::new();

/// The process-wide default pool, sized like Java's common ForkJoinPool
/// (`availableProcessors` workers), created lazily on first use.
///
/// [`join`] and [`scope()`] migrate onto this pool when called from a
/// non-worker thread; computations that need an explicit size should
/// create their own [`ForkJoinPool`] and use [`join_on`] / [`scope_on`]
/// or [`ForkJoinPool::install`].
pub fn global_pool() -> &'static ForkJoinPool {
    GLOBAL.get_or_init(ForkJoinPool::with_default_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_singleton() {
        let a: *const ForkJoinPool = global_pool();
        let b: *const ForkJoinPool = global_pool();
        assert_eq!(a, b);
        assert!(global_pool().threads() >= 1);
    }

    #[test]
    fn global_pool_runs_work() {
        assert_eq!(global_pool().install(|| 21 * 2), 42);
    }
}
