//! Task plumbing: the type-erased job unit and the claimable task slot.
//!
//! The pool moves [`Job`]s — boxed `FnOnce` closures — between deques.
//! A [`TaskSlot`] solves the fork-join "who runs the forked half?"
//! problem without unsafe pointer games: the closure lives in a shared
//! slot, a stub job in the deque *claims* it, and the forking thread may
//! claim it back first if no thief arrived. Exactly one claimant receives
//! the closure.

use parking_lot::Mutex;
use std::sync::Arc;

/// The unit of work the pool schedules: a type-erased, send-able closure.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A single-claim container for a closure shared between a queued stub
/// and the thread that forked it.
///
/// `claim` is linearised by the internal lock, so between the forking
/// thread (claiming back after finishing its own half) and a thief
/// (running the queued stub), exactly one obtains the closure.
pub struct TaskSlot<F> {
    inner: Mutex<Option<F>>,
}

impl<F> TaskSlot<F> {
    /// Wraps a closure into a shareable slot.
    pub fn new(f: F) -> Arc<Self> {
        Arc::new(TaskSlot {
            inner: Mutex::new(Some(f)),
        })
    }

    /// Takes the closure if it has not been claimed yet.
    pub fn claim(&self) -> Option<F> {
        self.inner.lock().take()
    }

    /// `true` when the closure has already been claimed (racy;
    /// diagnostics only).
    pub fn is_claimed(&self) -> bool {
        self.inner.lock().is_none()
    }
}

/// Outcome of a task that may have panicked; panics are carried to the
/// joining thread and resumed there, matching `std::thread::JoinHandle`
/// and Java's ForkJoinTask behaviour.
pub type TaskResult<R> = std::thread::Result<R>;

/// Runs a closure, capturing a panic instead of unwinding through the
/// scheduler.
pub fn run_captured<R>(f: impl FnOnce() -> R) -> TaskResult<R> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Unwraps a [`TaskResult`], resuming the captured panic on the current
/// thread.
pub fn unwrap_or_resume<R>(r: TaskResult<R>) -> R {
    match r {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slot_yields_closure_once() {
        let slot = TaskSlot::new(|| 42);
        assert!(!slot.is_claimed());
        let f = slot.claim().expect("first claim succeeds");
        assert_eq!(f(), 42);
        assert!(slot.claim().is_none());
        assert!(slot.is_claimed());
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            let slot = TaskSlot::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            let mut handles = vec![];
            for _ in 0..4 {
                let s = Arc::clone(&slot);
                handles.push(std::thread::spawn(move || {
                    if let Some(f) = s.claim() {
                        f();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        // Each of the 50 slots must have executed exactly once.
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn run_captured_passes_values() {
        assert_eq!(unwrap_or_resume(run_captured(|| 7)), 7);
    }

    #[test]
    fn run_captured_captures_panics() {
        let r = run_captured(|| -> i32 { panic!("boom") });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn unwrap_or_resume_rethrows() {
        let r = run_captured(|| -> i32 { panic!("boom") });
        let _ = unwrap_or_resume(r);
    }
}
