//! The `join` primitive: potentially-parallel execution of two halves.
//!
//! `join(a, b)` is the fork-join kernel every divide-and-conquer operator
//! in this repository bottoms out in. Semantics match rayon/ForkJoinPool:
//!
//! * `b` is **forked** (queued on the local deque, available to thieves);
//! * `a` runs immediately on the calling thread (work-first);
//! * after `a`, the caller tries to **claim `b` back**; if a thief got it,
//!   the caller *helps* run other tasks until `b`'s latch sets.
//!
//! Called off-pool, the computation migrates onto the [global
//! pool](crate::global_pool) first.
//!
//! Panics in either half are captured and re-thrown on the joining thread
//! after both halves have come to rest, so no task is leaked mid-flight.

use crate::latch::Latch;
use crate::metrics::Counters;
use crate::pool::{current_worker, help_until, push_local, PoolState};
use crate::task::{run_captured, Job, TaskResult, TaskSlot};
use crate::ForkJoinPool;
use parking_lot::Mutex;
use std::sync::Arc;

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// On a pool worker this forks `b` to the local deque; off-pool it
/// migrates to the [global pool](crate::global_pool). Panics are
/// propagated (if both halves panic, `a`'s payload wins, like rayon).
///
/// ```
/// let (x, y) = forkjoin::join(|| 2 + 2, || 3 * 3);
/// assert_eq!((x, y), (4, 9));
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send + 'static,
    B: FnOnce() -> RB + Send + 'static,
    RA: Send + 'static,
    RB: Send + 'static,
{
    match current_worker() {
        Some((state, index)) => join_in_worker(&state, index, a, b),
        None => crate::global_pool().install(move || join(a, b)),
    }
}

/// `join` variant pinned to a specific pool. Off that pool's workers the
/// whole join is installed onto it.
pub fn join_on<A, B, RA, RB>(pool: &ForkJoinPool, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send + 'static,
    B: FnOnce() -> RB + Send + 'static,
    RA: Send + 'static,
    RB: Send + 'static,
{
    if let Some((state, index)) = current_worker() {
        if Arc::ptr_eq(&state, pool.state()) {
            return join_in_worker(&state, index, a, b);
        }
    }
    pool.install(move || join(a, b))
}

fn join_in_worker<A, B, RA, RB>(state: &Arc<PoolState>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send + 'static,
    B: FnOnce() -> RB + Send + 'static,
    RA: Send + 'static,
    RB: Send + 'static,
{
    Counters::bump(&state.counters.joins);

    let b_latch = Arc::new(Latch::new());
    let b_result: Arc<Mutex<Option<TaskResult<RB>>>> = Arc::new(Mutex::new(None));
    let slot = TaskSlot::new(b);

    // Queue a stub that claims and runs `b` if it gets there first.
    let stub: Job = {
        let slot = Arc::clone(&slot);
        let b_latch = Arc::clone(&b_latch);
        let b_result = Arc::clone(&b_result);
        Box::new(move || {
            if let Some(f) = slot.claim() {
                let r = run_captured(f);
                *b_result.lock() = Some(r);
                b_latch.set();
            }
        })
    };
    push_local(state, stub);

    // Work-first: run `a` here and now.
    let ra = run_captured(a);

    // Try to take `b` back; otherwise help until the thief finishes it.
    let rb: TaskResult<RB> = match slot.claim() {
        Some(f) => {
            Counters::bump(&state.counters.joins_inline);
            plobs::emit(plobs::Event::PoolJoin { stolen: false });
            run_captured(f)
        }
        None => {
            Counters::bump(&state.counters.joins_stolen);
            plobs::emit(plobs::Event::PoolJoin { stolen: true });
            help_until(state, index, &b_latch);
            b_result
                .lock()
                .take()
                .expect("b latch set implies result stored")
        }
    };

    // Resolve panics only after both halves are at rest; `a` has
    // priority, matching rayon's join.
    match (ra, rb) {
        (Ok(xa), Ok(xb)) => (xa, xb),
        (Err(pa), _) => std::panic::resume_unwind(pa),
        (_, Err(pb)) => std::panic::resume_unwind(pb),
    }
}

/// Convenience: recursive parallel map over an index range using `join`,
/// splitting until `grain` indices remain. Used by tests and by the
/// simulator validation harness.
pub fn par_for_each_index(len: usize, grain: usize, f: impl Fn(usize) + Send + Sync + 'static) {
    fn go(lo: usize, hi: usize, grain: usize, f: Arc<dyn Fn(usize) + Send + Sync>) {
        if hi - lo <= grain {
            for i in lo..hi {
                f(i);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let f2 = Arc::clone(&f);
        let f3 = Arc::clone(&f);
        join(
            move || go(lo, mid, grain, f2),
            move || go(mid, hi, grain, f3),
        );
    }
    go(0, len, grain.max(1), Arc::new(f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_values() {
        let pool = ForkJoinPool::new(2);
        let (a, b) = join_on(&pool, || 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_works_off_pool_via_global() {
        let (a, b) = join(|| 10, || 20);
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn deep_recursion_single_thread_pool() {
        // The help-while-waiting discipline must keep a 1-thread pool
        // deadlock-free on deeply nested joins.
        let pool = ForkJoinPool::new(1);
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(move || sum(lo, mid), move || sum(mid, hi));
            a + b
        }
        let r = pool.install(|| sum(0, 4096));
        assert_eq!(r, 4096 * 4095 / 2);
    }

    #[test]
    fn deep_recursion_multi_thread_pool() {
        let pool = ForkJoinPool::new(4);
        fn fib(n: u64) -> u64 {
            if n < 10 {
                // sequential base case
                let (mut a, mut b) = (0u64, 1u64);
                for _ in 0..n {
                    let t = a + b;
                    a = b;
                    b = t;
                }
                return a;
            }
            let (x, y) = join(move || fib(n - 1), move || fib(n - 2));
            x + y
        }
        assert_eq!(pool.install(|| fib(20)), 6765);
        let m = pool.metrics();
        assert!(m.joins >= 1, "joins counted: {m:?}");
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let pool = ForkJoinPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join_on(&pool, || panic!("left bang"), || 2)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let pool = ForkJoinPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join_on(&pool, || 1, || -> i32 { panic!("right bang") })
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 3), 3); // pool survives
    }

    #[test]
    fn par_for_each_index_covers_range() {
        let pool = ForkJoinPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.install(move || {
            par_for_each_index(1000, 16, move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn join_counts_inline_or_stolen() {
        let pool = ForkJoinPool::new(2);
        let before = pool.metrics();
        let _ = join_on(&pool, || 1, || 2);
        let after = pool.metrics().since(&before);
        assert_eq!(after.joins, 1);
        assert_eq!(after.joins_inline + after.joins_stolen, 1);
    }
}
