//! Pool configuration.
//!
//! [`PoolBuilder`] mirrors the knobs Java exposes on `ForkJoinPool`
//! construction: parallelism degree, worker naming, and stack size —
//! deep PowerList recursions (depth `log2 n` with real frames per level)
//! appreciate an explicit stack on small-stack platforms.

use crate::pool::ForkJoinPool;

/// Fluent builder for [`ForkJoinPool`].
///
/// ```
/// use forkjoin::PoolBuilder;
///
/// let pool = PoolBuilder::new()
///     .threads(2)
///     .name_prefix("paper-pool")
///     .stack_size(4 * 1024 * 1024)
///     .build();
/// assert_eq!(pool.threads(), 2);
/// assert_eq!(pool.install(|| 21 * 2), 42);
/// ```
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    threads: Option<usize>,
    name_prefix: String,
    stack_size: Option<usize>,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder {
            threads: None,
            name_prefix: "forkjoin-worker".to_string(),
            stack_size: None,
        }
    }
}

impl PoolBuilder {
    /// Starts a builder with defaults: `availableProcessors` workers,
    /// `forkjoin-worker-<i>` names, platform stack size.
    pub fn new() -> Self {
        PoolBuilder::default()
    }

    /// Sets the number of workers (minimum 1 at build time).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the worker thread name prefix (threads are named
    /// `<prefix>-<index>`).
    pub fn name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }

    /// Sets the worker stack size in bytes.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> ForkJoinPool {
        let threads = self.threads.unwrap_or_else(num_cpus::get).max(1);
        ForkJoinPool::with_config(threads, &self.name_prefix, self.stack_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_builds() {
        let pool = PoolBuilder::new().build();
        assert!(pool.threads() >= 1);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn explicit_threads() {
        let pool = PoolBuilder::new().threads(3).build();
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn zero_threads_clamped() {
        let pool = PoolBuilder::new().threads(0).build();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn custom_names_visible_on_workers() {
        let pool = PoolBuilder::new().threads(1).name_prefix("mypool").build();
        let name = pool.install(|| std::thread::current().name().map(str::to_owned));
        assert_eq!(name.as_deref(), Some("mypool-0"));
    }

    #[test]
    fn custom_stack_size_supports_deep_recursion() {
        let pool = PoolBuilder::new()
            .threads(1)
            .stack_size(16 * 1024 * 1024)
            .build();
        // A recursion that would be uncomfortable on tiny stacks.
        fn depth(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                1 + depth(n - 1)
            }
        }
        assert_eq!(pool.install(|| depth(100_000)), 100_000);
    }
}
