//! Stress and property tests for the fork-join pool.
//!
//! These exercise the scheduler under randomized shapes: unbalanced join
//! trees, mixed spawn/join workloads, many pools in one process, and
//! determinism of results under nondeterministic scheduling.

use forkjoin::{join, join_on, par_for_each_index, scope_on, ForkJoinPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reference sequential sum for validation.
fn seq_sum(v: &[u64]) -> u64 {
    v.iter().sum()
}

/// Parallel sum by recursive join over an Arc'd slice.
fn par_sum(pool: &ForkJoinPool, v: Arc<Vec<u64>>, grain: usize) -> u64 {
    fn rec(v: Arc<Vec<u64>>, lo: usize, hi: usize, grain: usize) -> u64 {
        if hi - lo <= grain {
            return v[lo..hi].iter().sum();
        }
        let mid = lo + (hi - lo) / 2;
        let v2 = Arc::clone(&v);
        let (a, b) = join(
            move || rec(v, lo, mid, grain),
            move || rec(v2, mid, hi, grain),
        );
        a + b
    }
    let n = v.len();
    pool.install(move || rec(v, 0, n, grain.max(1)))
}

#[test]
fn par_sum_matches_sequential_all_pool_sizes() {
    let data: Vec<u64> = (0..10_000).map(|i| i * i % 97).collect();
    let expected = seq_sum(&data);
    let shared = Arc::new(data);
    for threads in [1, 2, 3, 4, 8] {
        let pool = ForkJoinPool::new(threads);
        assert_eq!(
            par_sum(&pool, Arc::clone(&shared), 64),
            expected,
            "threads={threads}"
        );
    }
}

#[test]
fn unbalanced_tree_completes() {
    // Splits 1/7th vs 6/7ths: stresses stealing and the help loop.
    let pool = ForkJoinPool::new(4);
    fn rec(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 32 {
            return (lo..hi).sum();
        }
        let cut = lo + (hi - lo) / 7 + 1;
        let (a, b) = join(move || rec(lo, cut), move || rec(cut, hi));
        a + b
    }
    let r = pool.install(|| rec(0, 100_000));
    assert_eq!(r, 100_000u64 * 99_999 / 2);
}

#[test]
fn interleaved_scopes_and_joins() {
    let pool = ForkJoinPool::new(3);
    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    scope_on(&pool, move |s| {
        for _ in 0..8 {
            let h2 = Arc::clone(&h);
            s.spawn(move |_| {
                let (a, b) = join(|| 3u64, || 4u64);
                h2.fetch_add(a + b, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 56);
}

#[test]
fn many_pools_coexist() {
    let pools: Vec<ForkJoinPool> = (1..=4).map(ForkJoinPool::new).collect();
    for (i, p) in pools.iter().enumerate() {
        assert_eq!(p.install(move || i * 10), i * 10);
    }
    // joins pinned to different pools interleaved
    let (a, _) = join_on(&pools[0], || 1, || 2);
    let (b, _) = join_on(&pools[3], || 3, || 4);
    assert_eq!(a + b, 4);
}

#[test]
fn par_for_each_index_grain_edges() {
    let pool = ForkJoinPool::new(2);
    for (len, grain) in [(0usize, 1usize), (1, 1), (7, 1), (1024, 1024), (1000, 3)] {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.install(move || {
            par_for_each_index(len, grain, move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            len as u64,
            "len={len} grain={grain}"
        );
    }
}

/// Parallel sum that detonates when the recursion reaches `bomb`.
fn par_sum_with_bomb(pool: &ForkJoinPool, n: usize, grain: usize, bomb: usize) -> u64 {
    fn rec(lo: usize, hi: usize, grain: usize, bomb: usize) -> u64 {
        if hi - lo <= grain {
            assert!(
                !(lo..hi).contains(&bomb),
                "bomb leaf reached at [{lo}, {hi})"
            );
            return (lo..hi).map(|i| i as u64).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(
            move || rec(lo, mid, grain, bomb),
            move || rec(mid, hi, grain, bomb),
        );
        a + b
    }
    pool.install(move || rec(0, n, grain, bomb))
}

#[test]
fn pool_stays_reusable_after_panics_mid_tree() {
    // A panicking leaf must propagate to the caller *and* leave the pool
    // healthy: no stuck latch, no lost worker, no wedged deque. Rerun a
    // full computation on the same pool after every detonation.
    let pool = ForkJoinPool::new(4);
    let n = 10_000usize;
    let expected = (n as u64 - 1) * n as u64 / 2;
    for round in 0..8 {
        // Move the bomb around the tree: leftmost leaf, rightmost leaf,
        // and interior positions all unwind through different join
        // states (inline claim vs stolen-help).
        let bomb = round * (n - 1) / 7;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_sum_with_bomb(&pool, n, 64, bomb)
        }));
        assert!(r.is_err(), "round {round}: bomb at {bomb} must propagate");
        let clean = par_sum_with_bomb(&pool, n, 64, n + 1);
        assert_eq!(clean, expected, "round {round}: pool broken after panic");
    }
    // Workers are all still alive and accepting injected work.
    for i in 0..16 {
        assert_eq!(pool.install(move || i * 3), i * 3);
    }
}

#[test]
fn cross_pool_install_from_workers_does_not_deadlock() {
    // A worker of pool A installing on pool B must keep servicing its
    // own pool while the foreign latch is pending. With 1-worker pools
    // the old `latch.wait()` path deadlocked as soon as A's only worker
    // blocked on B while B's only worker blocked back on A.
    let pool_a = Arc::new(ForkJoinPool::new(1));
    let pool_b = Arc::new(ForkJoinPool::new(1));
    for round in 0..32u64 {
        let pb = Arc::clone(&pool_b);
        let got = pool_a.install(move || round + pb.install(move || round * 2));
        assert_eq!(got, round * 3, "round {round}");
    }
    // Ping-pong three levels deep: A -> B -> A again (re-entry on A is
    // the same-pool inline path, taken from a B worker's help loop).
    let pa = Arc::clone(&pool_a);
    let pb = Arc::clone(&pool_b);
    let got = pool_a.install(move || {
        let pa2 = Arc::clone(&pa);
        1 + pb.install(move || 10 + pa2.install(|| 100u64))
    });
    assert_eq!(got, 111);
    // Fan-out: many workers of a wide pool all install on a narrow one.
    let wide = Arc::new(ForkJoinPool::new(4));
    let narrow = Arc::new(ForkJoinPool::new(1));
    let hits = Arc::new(AtomicU64::new(0));
    let (h, nr) = (Arc::clone(&hits), Arc::clone(&narrow));
    wide.install(move || {
        par_for_each_index(64, 1, move |i| {
            let v = nr.install(move || i as u64 + 1);
            h.fetch_add(v, Ordering::Relaxed);
        })
    });
    assert_eq!(hits.load(Ordering::Relaxed), (1..=64).sum::<u64>());
}

#[test]
fn scheduler_events_reach_an_installed_recorder() {
    let data: Vec<u64> = (0..50_000).collect();
    let expected = seq_sum(&data);
    let shared = Arc::new(data);
    let (got, report) = plobs::recorded(|| {
        let pool = ForkJoinPool::new(4);
        par_sum(&pool, shared, 32)
    });
    assert_eq!(got, expected);
    // Other tests in this binary may emit concurrently, so assert lower
    // bounds only: the recorded sum alone guarantees this much.
    assert!(report.executed >= 1, "workers executed jobs: {report:?}");
    assert!(report.joins >= 1, "joins recorded: {report:?}");
    assert!(!report.per_worker.is_empty());
    assert!(
        report.joins_stolen <= report.joins,
        "stolen joins are a subset: {report:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_trees_sum_correctly(
        data in proptest::collection::vec(0u64..1000, 1..2000),
        grain in 1usize..128,
        threads in 1usize..5,
    ) {
        let pool = ForkJoinPool::new(threads);
        let expected = seq_sum(&data);
        let got = par_sum(&pool, Arc::new(data), grain);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn results_are_deterministic_across_runs(
        data in proptest::collection::vec(0u64..1000, 64..512),
    ) {
        let pool = ForkJoinPool::new(4);
        let shared = Arc::new(data);
        let first = par_sum(&pool, Arc::clone(&shared), 16);
        for _ in 0..4 {
            prop_assert_eq!(par_sum(&pool, Arc::clone(&shared), 16), first);
        }
    }
}
