//! Seed/choice replay guarantees — the acceptance criteria of the
//! checker — plus the CI gates: a fixed regression-seed set and a
//! randomized smoke run whose seed comes from `PLCHECK_SMOKE_SEED`.

use crossbeam_deque::Worker;
use forkjoin::{CancelReason, CancelToken, Latch};
use std::sync::Arc;

/// A model with a genuine schedule-dependent bug: check-then-act on a
/// shared cell with a scheduling point in the window. Some schedules
/// pass, some double-claim — ideal for exercising replay.
fn check_then_act_model() {
    let cell = Arc::new(std::sync::Mutex::new(Some(42u64)));
    let account = Arc::new(plcheck::TaskAccount::new());
    account.produced(42);
    let take_racy = |cell: &std::sync::Mutex<Option<u64>>, account: &plcheck::TaskAccount| {
        plcheck::yield_op("racy::check");
        let present = cell.lock().unwrap().is_some();
        plcheck::yield_op("racy::act");
        if present {
            // BUG (deliberate): the value may be gone by now; claim
            // whatever the first check promised.
            let v = cell.lock().unwrap().take().unwrap_or(42);
            account.claimed(v);
        }
    };
    let (c, a) = (Arc::clone(&cell), Arc::clone(&account));
    let t = plcheck::spawn(move || take_racy(&c, &a));
    take_racy(&cell, &account);
    t.join();
    account.assert_balanced();
}

/// Random mode: a failing schedule's printed seed replays to the exact
/// same failure — message and interleaving trace — twice over.
#[test]
fn random_failure_replays_identically_from_its_seed() {
    let report = plcheck::Explorer::random(256, 0xBAD_CAFE).run(check_then_act_model);
    let failure = report.expect_failure("check-then-act double claim");
    let seed = match failure.spec {
        plcheck::ScheduleSpec::Seed(s) => s,
        ref other => panic!("random mode must report a seed, got {other}"),
    };
    let first = plcheck::Explorer::replay_seed(seed).run(check_then_act_model);
    let second = plcheck::Explorer::replay_seed(seed).run(check_then_act_model);
    let f1 = first.expect_failure("replay #1");
    let f2 = second.expect_failure("replay #2");
    assert_eq!(f1.message, failure.message);
    assert_eq!(
        f1.trace, failure.trace,
        "replay must walk the same interleaving"
    );
    assert_eq!(f1.message, f2.message);
    assert_eq!(
        f1.trace, f2.trace,
        "replay must be stable across invocations"
    );
}

/// Exhaustive mode: the printed branch-choice list replays the same
/// failing interleaving.
#[test]
fn exhaustive_failure_replays_from_its_choices() {
    let report = plcheck::Explorer::exhaustive(5_000).run(check_then_act_model);
    let failure = report.expect_failure("check-then-act double claim");
    let choices = match &failure.spec {
        plcheck::ScheduleSpec::Choices(c) => c.clone(),
        other => panic!("exhaustive mode must report choices, got {other}"),
    };
    let replay = plcheck::Explorer::replay_choices(choices).run(check_then_act_model);
    let f = replay.expect_failure("choice replay");
    assert_eq!(f.message, failure.message);
    assert_eq!(f.trace, failure.trace);
}

/// A healthy composite model touching every instrumented layer: deque
/// hand-off, latch signalling and first-cancel-wins.
fn healthy_composite_model() {
    let account = Arc::new(plcheck::TaskAccount::new());
    let done = Arc::new(Latch::new());
    let token = CancelToken::new();
    let w = Worker::new_lifo();
    let s = w.stealer();
    for id in 1..=2u64 {
        w.push(id);
        account.produced(id);
    }
    let (acc, d, t) = (Arc::clone(&account), Arc::clone(&done), token.clone());
    let peer = plcheck::spawn(move || {
        if let Some(v) = s.steal().success() {
            acc.claimed(v);
        }
        t.cancel(CancelReason::User);
        d.set();
    });
    while let Some(v) = w.pop() {
        account.claimed(v);
    }
    token.cancel(CancelReason::Deadline);
    done.wait();
    peer.join();
    while let Some(v) = w.pop() {
        account.claimed(v);
    }
    account.assert_balanced();
    assert!(token.is_cancelled());
    assert!(done.is_set());
}

/// Fixed regression-seed set, run on every CI pass: seeds that once
/// explored interesting interleavings stay pinned so they are re-walked
/// forever (a failure here prints the exact seed to replay).
#[test]
fn regression_seed_set_stays_green() {
    const REGRESSION_SEEDS: &[u64] = &[
        0x0000_0000_0000_0001,
        0x5EED_0000_0000_0001,
        0x5EED_0000_0000_0002,
        0xDEAD_BEEF_DEAD_BEEF,
        0xA5A5_A5A5_5A5A_5A5A,
        0x0123_4567_89AB_CDEF,
    ];
    for &seed in REGRESSION_SEEDS {
        plcheck::Explorer::replay_seed(seed)
            .run(healthy_composite_model)
            .assert_ok();
    }
}

/// Randomized smoke: a short random exploration whose base seed is
/// taken from `PLCHECK_SMOKE_SEED` (decimal or 0x-hex) when set, so CI
/// walks fresh schedules on every run while staying reproducible — on
/// failure, `assert_ok` prints the exact per-schedule seed to replay.
#[test]
fn randomized_smoke() {
    let base = match std::env::var("PLCHECK_SMOKE_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = v
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| v.parse());
            parsed.unwrap_or_else(|e| panic!("PLCHECK_SMOKE_SEED {v:?} is not a u64: {e}"))
        }
        Err(_) => 0x5EED_F00D,
    };
    eprintln!("plcheck randomized smoke: base seed {base:#018x}");
    plcheck::Explorer::random(64, base)
        .run(healthy_composite_model)
        .assert_ok();
}
