//! plcheck models of `jstreams::SharedState` — the paper's
//! outer-instance channel between splitting and collecting — and of the
//! instrumented `parking_lot` primitives it is built on.

use jstreams::SharedState;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The paper's synchronised max-update linearises: whatever order the
/// split tasks publish their local exponents in, the global value ends
/// at the maximum, every return value is an upper bound of the
/// caller's candidate, and the value never decreases.
#[test]
fn update_max_linearizes() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let state = SharedState::new(0u64);
        let s = state.clone();
        let t = plcheck::spawn(move || {
            let seen = s.update_max(3);
            assert!(seen >= 3);
        });
        let seen = state.update_max(5);
        assert!(seen >= 5);
        t.join();
        assert_eq!(state.get(), 5, "global max must be the largest candidate");
    });
    report.assert_ok();
}

/// Read-modify-write through `update` never loses an increment, in any
/// interleaving — the mutual exclusion the paper's `synchronized`
/// blocks promise.
#[test]
fn concurrent_updates_lose_nothing() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let state = SharedState::new(0u32);
        let s = state.clone();
        let t = plcheck::spawn(move || {
            for _ in 0..2 {
                s.update(|v| *v += 1);
            }
        });
        for _ in 0..2 {
            state.update(|v| *v += 1);
        }
        t.join();
        assert_eq!(state.get(), 4);
    });
    report.assert_ok();
}

/// A panicking update releases the lock in every interleaving — the
/// no-poisoning containment contract the fallible execution layer
/// depends on — and a concurrent updater is never wedged.
#[test]
fn panicking_update_never_wedges_a_peer() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let state = SharedState::new(0u32);
        let s = state.clone();
        let t = plcheck::spawn(move || {
            s.update(|v| *v += 1);
        });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.update(|v| {
                *v += 10;
                panic!("contained panic inside update");
            })
        }));
        assert!(caught.is_err());
        t.join();
        // Both effects visible: containment, not rollback.
        assert_eq!(state.get(), 11);
    });
    report.assert_ok();
}

/// `parking_lot::Mutex::try_lock` never blocks the caller: while a
/// holder sits on the lock, a try_lock either fails fast or succeeds
/// after the holder is done — and the exploration must witness both a
/// failed and a successful fast path.
#[test]
fn try_lock_never_blocks() {
    let failed = Arc::new(AtomicUsize::new(0));
    let succeeded = Arc::new(AtomicUsize::new(0));
    let (f, s) = (Arc::clone(&failed), Arc::clone(&succeeded));
    let report = plcheck::Explorer::exhaustive(5_000).run(move || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let (f, s) = (Arc::clone(&f), Arc::clone(&s));
        let prober = plcheck::spawn(move || match m2.try_lock() {
            Some(mut g) => {
                *g += 1;
                s.fetch_add(1, Ordering::SeqCst);
            }
            None => {
                f.fetch_add(1, Ordering::SeqCst);
            }
        });
        {
            let mut g = m.lock();
            *g += 1;
            plcheck::yield_op("critical-section");
        }
        prober.join();
        assert!(*m.lock() >= 1);
    });
    report.assert_ok();
    let (f, s) = (
        failed.load(Ordering::SeqCst),
        succeeded.load(Ordering::SeqCst),
    );
    assert!(
        f > 0 && s > 0,
        "exploration must cover contended and uncontended try_lock (failed {f}, ok {s})"
    );
}
