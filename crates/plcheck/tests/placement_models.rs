//! plcheck models of the destination-passing placement buffer
//! (`jstreams::PlacementBuf`): the disjoint-window invariant makes two
//! concurrent leaf writers race-free and exactly-once per output slot,
//! in every explored interleaving — and a deliberately overlapping
//! window assignment (the invariant's violation) is always caught
//! before any slot is read back.

use jstreams::{descend, PlacementBuf, Window, WindowRule};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Writes `mark + j` into every slot of `w`, yielding to the explorer
/// between slots and counting each write per absolute slot index.
fn write_counted(
    buf: &PlacementBuf<usize>,
    w: Window,
    mark: usize,
    counts: &[AtomicUsize],
    label: &'static str,
) {
    let wrote = buf.write(w, &mut |sink| {
        for j in 0..w.len {
            plcheck::yield_op(label);
            counts[w.slot(j)].fetch_add(1, Ordering::SeqCst);
            sink(mark + j);
        }
    });
    assert_eq!(wrote as usize, w.len);
}

fn slot_counts(n: usize) -> Arc<Vec<AtomicUsize>> {
    Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect())
}

/// Concat descent: two leaves writing the adjacent halves of the root
/// window interleave freely, yet every slot is written exactly once
/// and the finished vector is the in-order concatenation.
#[test]
fn adjacent_windows_are_race_free_and_exactly_once() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let buf = Arc::new(PlacementBuf::<usize>::new(8));
        let counts = slot_counts(8);
        let (left, right) = descend(Window::root(8), WindowRule::Concat, 4, 0);

        let (b, c) = (Arc::clone(&buf), Arc::clone(&counts));
        let t = plcheck::spawn(move || write_counted(&b, left, 100, &c, "left-leaf"));
        write_counted(&buf, right, 200, &counts, "right-leaf");
        t.join();

        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "slot {i} written != once");
        }
        let v = Arc::try_unwrap(buf)
            .unwrap_or_else(|_| panic!("buffer still shared"))
            .finish_vec();
        assert_eq!(v, vec![100, 101, 102, 103, 200, 201, 202, 203]);
    });
    report.assert_ok();
}

/// Interleave descent: two leaves writing the even and odd residue
/// classes of the root window (strided, step 2) stay exactly-once per
/// slot and reassemble into the paper's zip order.
#[test]
fn strided_windows_are_race_free_and_exactly_once() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let buf = Arc::new(PlacementBuf::<usize>::new(8));
        let counts = slot_counts(8);
        let (evens, odds) = descend(Window::root(8), WindowRule::Interleave, 4, 0);
        assert_eq!((evens.base, evens.step), (0, 2));
        assert_eq!((odds.base, odds.step), (1, 2));

        let (b, c) = (Arc::clone(&buf), Arc::clone(&counts));
        let t = plcheck::spawn(move || write_counted(&b, evens, 100, &c, "even-leaf"));
        write_counted(&buf, odds, 200, &counts, "odd-leaf");
        t.join();

        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "slot {i} written != once");
        }
        let v = Arc::try_unwrap(buf)
            .unwrap_or_else(|_| panic!("buffer still shared"))
            .finish_vec();
        assert_eq!(v, vec![100, 200, 101, 201, 102, 202, 103, 203]);
    });
    report.assert_ok();
}

/// The mutant: two windows that *overlap* (slots 3 and 4 have two
/// writers) violate the disjointness invariant — the buffer's
/// exactly-once audit must refuse to finish in **every** interleaving,
/// never handing back a vector with lost or duplicated writes.
#[test]
fn overlapping_windows_are_always_caught() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let buf = Arc::new(PlacementBuf::<usize>::new(8));
        let counts = slot_counts(8);
        let left = Window {
            base: 0,
            step: 1,
            len: 5,
        };
        let right = Window {
            base: 3,
            step: 1,
            len: 5,
        };

        let (b, c) = (Arc::clone(&buf), Arc::clone(&counts));
        let t = plcheck::spawn(move || write_counted(&b, left, 100, &c, "left-mutant"));
        write_counted(&buf, right, 200, &counts, "right-mutant");
        t.join();

        let doubled = counts
            .iter()
            .filter(|c| c.load(Ordering::SeqCst) > 1)
            .count();
        assert_eq!(doubled, 2, "slots 3 and 4 must have two writers");

        let buf = Arc::try_unwrap(buf).unwrap_or_else(|_| panic!("buffer still shared"));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buf.finish_vec()));
        assert!(
            caught.is_err(),
            "overlapping windows must never pass the exactly-once audit"
        );
    });
    report.assert_ok();
}
