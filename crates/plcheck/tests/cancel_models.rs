//! plcheck models of the cancellation machinery
//! (`forkjoin::{CancelToken, Deadline}`): first-cancel-wins under
//! three-way races, deterministic virtual-clock deadlines, and the
//! bounded-overrun contract of checkpoint-based pruning.

use forkjoin::{CancelReason, CancelToken, Deadline};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Three threads race to cancel with three different reasons: in every
/// interleaving exactly one wins, every observer reads the winner's
/// reason, and — across the exploration — more than one reason manages
/// to win (the race is real, not accidentally serialised).
#[test]
fn first_cancel_wins_three_way_race() {
    let winners_seen: Arc<std::sync::Mutex<Vec<CancelReason>>> = Arc::default();
    let seen = Arc::clone(&winners_seen);
    let report = plcheck::Explorer::exhaustive(5_000).run(move || {
        let token = CancelToken::new();
        let wins = Arc::new(AtomicUsize::new(0));
        let reasons = [CancelReason::Panic, CancelReason::User];
        let mut threads = Vec::new();
        for reason in reasons {
            let (t, w) = (token.clone(), Arc::clone(&wins));
            threads.push(plcheck::spawn(move || {
                if t.cancel(reason) {
                    w.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        if token.cancel(CancelReason::Deadline) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        for t in threads {
            t.join();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one canceller wins");
        let reason = token.reason().expect("token must be tripped");
        seen.lock().unwrap().push(reason);
    });
    report.assert_ok();
    let seen = winners_seen.lock().unwrap();
    let distinct: std::collections::HashSet<_> = seen.iter().map(|r| format!("{r:?}")).collect();
    assert!(
        distinct.len() >= 2,
        "exploration must let different cancellers win; only saw {distinct:?}"
    );
}

/// A `Deadline` constructed on a model thread measures against the
/// plcheck virtual clock: it expires when the clock passes it (here,
/// driven past by a timed park), deterministically and without
/// sleeping.
#[test]
fn deadline_is_virtual_on_the_model() {
    let wall = std::time::Instant::now();
    let report = plcheck::Explorer::exhaustive(100).run(|| {
        let deadline = Deadline::after(Duration::from_millis(10));
        assert!(!deadline.expired(), "fresh budget cannot be expired");
        assert!(deadline.remaining() > Duration::ZERO);
        // Drive the virtual clock past the budget.
        let why = plcheck::park(0xC10C, Some(Duration::from_millis(20)), "burn-budget");
        assert_eq!(why, plcheck::WakeReason::TimedOut);
        assert!(deadline.expired(), "virtual clock passed the budget");
        assert_eq!(deadline.remaining(), Duration::ZERO);
        assert!(deadline.elapsed() >= Duration::from_millis(10));
    });
    report.assert_ok();
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "virtual deadlines must not sleep wall-clock time"
    );
}

/// The bounded-overrun contract of cooperative cancellation: a worker
/// that polls the token before every leaf never *starts* a leaf after
/// the trip is known to it. The oracle flag is raised strictly after
/// `cancel` returns, so "flag seen high but token seen live" is
/// impossible — any leaf counted after the flag would be a checkpoint
/// that failed to prune.
#[test]
fn checkpoint_pruning_has_zero_leaves_after_observed_trip() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let token = CancelToken::new();
        let tripped = Arc::new(AtomicBool::new(false)); // oracle, not model state
        let (t, flag) = (token.clone(), Arc::clone(&tripped));
        let canceller = plcheck::spawn(move || {
            plcheck::yield_now();
            t.cancel(CancelReason::User);
            flag.store(true, Ordering::SeqCst);
        });
        let mut completed = 0u32;
        for _leaf in 0..4 {
            let tripped_before_check = tripped.load(Ordering::SeqCst);
            if token.is_cancelled() {
                break;
            }
            if tripped_before_check {
                plcheck::fail("checkpoint saw a live token after cancel() returned");
            }
            plcheck::yield_op("leaf::work");
            completed += 1;
        }
        canceller.join();
        assert!(completed <= 4);
        assert!(token.is_cancelled());
    });
    report.assert_ok();
}

/// Cancelling never corrupts the reason: concurrent readers either see
/// `None` (still live) or the final winning reason — no torn or
/// transient values, in any interleaving.
#[test]
fn reason_is_monotone_for_concurrent_readers() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let token = CancelToken::new();
        let t = token.clone();
        let reader = plcheck::spawn(move || {
            let mut last: Option<CancelReason> = None;
            for _ in 0..3 {
                plcheck::yield_op("reader::poll");
                let now = t.reason();
                if last.is_some() && now != last {
                    plcheck::fail(format!("reason changed {last:?} -> {now:?}"));
                }
                last = now;
            }
        });
        token.cancel(CancelReason::Deadline);
        token.cancel(CancelReason::User); // loser, must not overwrite
        reader.join();
        assert_eq!(token.reason(), Some(CancelReason::Deadline));
    });
    report.assert_ok();
}
