//! plcheck models of the vendored work-stealing deque
//! (`crossbeam-deque`): exactly-once task accounting under concurrent
//! owner-pop / thief-steal, FIFO steal order, injector batch migration,
//! bounded staleness of `Stealer::len`, and a deliberately broken
//! (TOCTOU) stack that the checker must catch.

use crossbeam_deque::{Injector, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Owner pops while a thief steals: across every interleaving, each
/// pushed task is claimed exactly once — the linearizability /
/// precedence oracle for the deque.
#[test]
fn owner_pop_vs_steal_is_exactly_once() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let account = Arc::new(plcheck::TaskAccount::new());
        let w = Worker::new_lifo();
        let s = w.stealer();
        for id in 1..=3u64 {
            w.push(id);
            account.produced(id);
        }
        let acc = Arc::clone(&account);
        let thief = plcheck::spawn(move || {
            for _ in 0..2 {
                if let Some(t) = s.steal().success() {
                    acc.claimed(t);
                }
            }
        });
        while let Some(t) = w.pop() {
            account.claimed(t);
        }
        thief.join();
        // Anything the thief's two attempts missed is still queued.
        while let Some(t) = w.pop() {
            account.claimed(t);
        }
        account.assert_balanced();
    });
    report.assert_ok();
    assert!(report.schedules > 1, "expected real interleaving choices");
}

/// Steals always observe the FIFO end: whatever interleaving runs, the
/// sequence of ids one thief steals from a single victim is strictly
/// increasing (the owner pushed ids in increasing order and never
/// pushes again).
#[test]
fn steal_order_is_fifo_under_concurrency() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for id in 1..=4u64 {
            w.push(id);
        }
        let thief = plcheck::spawn(move || {
            let mut last = 0u64;
            while let Some(t) = s.steal().success() {
                if t <= last {
                    plcheck::fail(format!("steal order regressed: {t} after {last}"));
                }
                last = t;
            }
        });
        // Owner drains from the LIFO end concurrently.
        let mut last_pop = u64::MAX;
        while let Some(t) = w.pop() {
            if t >= last_pop {
                plcheck::fail(format!("pop order regressed: {t} after {last_pop}"));
            }
            last_pop = t;
        }
        thief.join();
    });
    report.assert_ok();
}

/// `Injector::steal_batch_and_pop` migrates a batch into the thief's
/// deque: across two concurrent batch-stealers, every injected task
/// ends up claimed exactly once.
#[test]
fn injector_batch_steal_is_exactly_once() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let account = Arc::new(plcheck::TaskAccount::new());
        let inj = Arc::new(Injector::new());
        for id in 1..=6u64 {
            inj.push(id);
            account.produced(id);
        }
        let (inj2, acc2) = (Arc::clone(&inj), Arc::clone(&account));
        let thief = plcheck::spawn(move || {
            let mine = Worker::new_lifo();
            if let Some(t) = inj2.steal_batch_and_pop(&mine).success() {
                acc2.claimed(t);
            }
            while let Some(t) = mine.pop() {
                acc2.claimed(t);
            }
        });
        let mine = Worker::new_lifo();
        if let Some(t) = inj.steal_batch_and_pop(&mine).success() {
            account.claimed(t);
        }
        while let Some(t) = mine.pop() {
            account.claimed(t);
        }
        thief.join();
        // Whatever neither batch migrated is still in the injector.
        while let Some(t) = inj.steal().success() {
            account.claimed(t);
        }
        account.assert_balanced();
    });
    report.assert_ok();
}

/// Bounded staleness of `Stealer::len` under seeded random schedules:
/// the snapshot is always a value the deque actually held — never
/// exceeding the number of pushes started, and consistent with the
/// final drain. (`len()` returns `usize`, so "never negative" is the
/// type; the model checks the upper bound.)
#[test]
fn stealer_len_staleness_is_bounded() {
    let report = plcheck::Explorer::random(64, 0xD0_5EED).run(|| {
        // `pushes_started` is incremented *before* the push completes,
        // so at any instant len() <= pushes_started is a sound bound.
        let pushes_started = Arc::new(AtomicUsize::new(0));
        let w = Worker::new_lifo();
        let s = w.stealer();
        let started = Arc::clone(&pushes_started);
        let observer = plcheck::spawn(move || {
            for _ in 0..6 {
                let len = s.len();
                // `bound` is read *after* the snapshot and the counter
                // is monotone, so every task len() counted came from a
                // push that had started by the time bound was read.
                let bound = started.load(Ordering::SeqCst);
                if len > bound {
                    plcheck::fail(format!("stale len {len} exceeds pushes started {bound}"));
                }
                if len > 4 {
                    plcheck::fail(format!("len {len} exceeds total pushes 4"));
                }
            }
        });
        for id in 1..=4u64 {
            pushes_started.fetch_add(1, Ordering::SeqCst);
            w.push(id);
        }
        observer.join();
        let mut drained = 0;
        while w.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 4, "nothing was stolen, all pushes must drain");
    });
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Known-bad mutation model: a stack with a classic TOCTOU pop
// (observe the top, yield, then remove). The checker must find the
// interleaving where two poppers observe the same top and one value is
// claimed twice while another is lost.
// ---------------------------------------------------------------------

struct RacyStack {
    items: std::sync::Mutex<Vec<u64>>,
}

impl RacyStack {
    fn new(items: Vec<u64>) -> Self {
        RacyStack {
            items: std::sync::Mutex::new(items),
        }
    }

    /// BUG (deliberate): the read of the top and its removal are two
    /// separate critical sections with a scheduling point between them.
    fn pop_racy(&self) -> Option<u64> {
        plcheck::yield_op("racy::observe");
        let top = self.items.lock().unwrap().last().copied();
        plcheck::yield_op("racy::remove");
        top.inspect(|_| {
            self.items.lock().unwrap().pop();
        })
    }
}

fn racy_stack_model() {
    let account = Arc::new(plcheck::TaskAccount::new());
    let stack = Arc::new(RacyStack::new(vec![1, 2]));
    account.produced(1);
    account.produced(2);
    let (st, acc) = (Arc::clone(&stack), Arc::clone(&account));
    let other = plcheck::spawn(move || {
        if let Some(v) = st.pop_racy() {
            acc.claimed(v);
        }
    });
    if let Some(v) = stack.pop_racy() {
        account.claimed(v);
    }
    other.join();
    while let Some(v) = stack.pop_racy() {
        account.claimed(v);
    }
    account.assert_balanced();
}

/// The mutation test of the acceptance criteria: the checker must catch
/// the TOCTOU duplicate, and replaying the printed choice list must
/// reproduce exactly the same failure.
#[test]
fn racy_stack_duplicate_is_caught_and_replays() {
    let report = plcheck::Explorer::exhaustive(5_000).run(racy_stack_model);
    let failure = report.expect_failure("TOCTOU duplicate claim");
    assert!(
        failure.message.contains("claimed 2 times"),
        "unexpected failure: {failure}"
    );
    let choices = match &failure.spec {
        plcheck::ScheduleSpec::Choices(c) => c.clone(),
        other => panic!("exhaustive mode must report choices, got {other}"),
    };
    let replay = plcheck::Explorer::replay_choices(choices).run(racy_stack_model);
    let replayed = replay.expect_failure("replayed TOCTOU duplicate");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(
        replayed.trace, failure.trace,
        "replay must walk the same interleaving"
    );
}

/// Living documentation: run with `--ignored` to see a complete plcheck
/// failure report (schedule identity + message + interleaving trace)
/// for the TOCTOU stack. This test FAILS by design — `assert_ok` prints
/// the report.
#[test]
#[ignore = "intentionally failing demo of a plcheck failure report; run with --ignored"]
fn racy_stack_failure_report_demo() {
    plcheck::Explorer::exhaustive(5_000)
        .run(racy_stack_model)
        .assert_ok();
}
