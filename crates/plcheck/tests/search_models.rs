//! plcheck models of the short-circuiting search protocol
//! (`jstreams::search`): the record-before-cancel invariant behind
//! `Found` pruning, the minimal-index guarantee of the `FirstHit` cell
//! under encounter-order pruning, and the private-session contract of
//! `SearchSession`.

use forkjoin::{CancelReason, CancelToken};
use jstreams::{ExecConfig, FirstHit, Interrupt, SearchSession};
use parking_lot::Mutex;
use std::sync::Arc;

/// The `Found` short-circuit is lossless because leaves *record before
/// they cancel*: a hit is published to the shared sink strictly before
/// the token trips. Any task that observes `Found` — in any
/// interleaving — must therefore find the answer already in the sink.
/// This is the exact protocol of `search_leaf`'s `record` closure,
/// modelled with the real `CancelToken` and an any-sink.
#[test]
fn found_observers_always_find_a_recorded_hit() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let token = CancelToken::new();
        let sink: Arc<Mutex<Option<i64>>> = Arc::default();

        // Two leaves hit concurrently; each records, then cancels.
        let mut leaves = Vec::new();
        for hit in [10i64, 20] {
            let (t, s) = (token.clone(), Arc::clone(&sink));
            leaves.push(plcheck::spawn(move || {
                {
                    let mut slot = s.lock();
                    if slot.is_none() {
                        *slot = Some(hit);
                    }
                }
                t.cancel(CancelReason::Found);
            }));
        }

        // A sibling subtree checkpoints: the moment it sees the trip it
        // may abandon its scan, relying on the sink being populated.
        if token.reason() == Some(CancelReason::Found) {
            assert!(
                sink.lock().is_some(),
                "observed Found but the sink is empty: a pruned subtree \
                 would have discarded the only copy of the answer"
            );
        }
        for leaf in leaves {
            leaf.join();
        }
        // Quiescence: the search ended with a trip and an answer.
        assert_eq!(token.reason(), Some(CancelReason::Found));
        let v = sink.lock().expect("some hit must have been recorded");
        assert!(v == 10 || v == 20);
    });
    report.assert_ok();
}

/// `find_first`'s minimal-index guarantee: leaves offer hits into a
/// [`FirstHit`] cell while subtrees prune themselves when their base
/// encounter index is at or past the recorded bound. In *every*
/// interleaving of offers and prune checks, the subtree that holds the
/// minimal hit can never be pruned (its base lies below its own hit,
/// and the bound can never drop below the global minimum), so the cell
/// always ends holding the minimal index.
#[test]
fn first_hit_pruning_never_loses_the_minimum() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let cell: Arc<FirstHit<i64>> = Arc::new(FirstHit::new());

        // Subtree A: base 2, holds the minimal hit at index 3.
        let a = {
            let cell = Arc::clone(&cell);
            plcheck::spawn(move || {
                if !cell.prunes(2) {
                    cell.offer(3, 30);
                }
            })
        };
        // Subtree B: base 8, holds a later hit at index 9. It may or
        // may not get pruned depending on what it observes — both are
        // sound.
        let b = {
            let cell = Arc::clone(&cell);
            plcheck::spawn(move || {
                if !cell.prunes(8) {
                    cell.offer(9, 90);
                }
            })
        };
        // The root leaf records its own hit at index 5 unconditionally.
        cell.offer(5, 50);
        a.join();
        b.join();

        // A's subtree can only be pruned when bound() <= 2, and no
        // offer in this run can push the bound below 3 — so the global
        // minimum always survives.
        assert_eq!(
            cell.take(),
            Some((3, 30)),
            "encounter-order pruning lost the minimal hit"
        );
    });
    report.assert_ok();
}

/// Improve-only publication: once the cell holds an index, a racing
/// offer with a *larger* index never replaces it, and `bound()` is
/// monotonically non-increasing across any interleaving.
#[test]
fn first_hit_offers_only_improve() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let cell: Arc<FirstHit<&'static str>> = Arc::new(FirstHit::new());
        let t = {
            let cell = Arc::clone(&cell);
            plcheck::spawn(move || {
                cell.offer(7, "seven");
            })
        };
        let before = cell.bound();
        cell.offer(12, "twelve");
        let after = cell.bound();
        assert!(after <= before, "bound must never move up");
        t.join();
        assert_eq!(
            cell.get(),
            Some((7, "seven")),
            "a later index must never displace an earlier one"
        );
    });
    report.assert_ok();
}

/// The private-session contract: a caller-held token racing a `Found`
/// trip. Whatever the interleaving, `check()` resolves to exactly one
/// of "answered" (`Ok(true)`) or "cancelled by the caller" — never a
/// silent `Ok(false)` continue — and the `Found` trip never leaks onto
/// the caller's token.
#[test]
fn search_session_keeps_found_off_the_caller_token() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let caller = CancelToken::new();
        let cfg = ExecConfig::par().with_cancel_token(caller.clone());
        let session = SearchSession::new(&cfg);

        let canceller = {
            let caller = caller.clone();
            plcheck::spawn(move || {
                caller.cancel(CancelReason::User);
            })
        };
        let found = session.found();
        assert!(found || session.token().is_cancelled());
        match session.check() {
            Ok(true) => {}
            Err(Interrupt::Cancelled(CancelReason::User)) => {}
            Ok(false) => panic!("check() returned Ok(false) after a Found trip"),
            Err(_) => panic!("check() surfaced an unexpected interrupt"),
        }
        canceller.join();
        assert_ne!(
            caller.reason(),
            Some(CancelReason::Found),
            "Found must stay on the private token"
        );
    });
    report.assert_ok();
}
