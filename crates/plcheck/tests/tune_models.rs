//! plcheck models of the `pltune` plan-cache protocol and the
//! `demand_split` off-pool contract — the concurrency surface of the
//! self-tuning execution layer.
//!
//! The cache's claim under scrutiny: across *every* interleaving of two
//! threads that miss on the same fingerprint, exactly one claims the
//! calibration ticket (the other proceeds untuned, never blocking), an
//! installed plan is never lost, and an abandoned ticket reverts its
//! slot so a later sight can retry.

use forkjoin::{demand_split, SplitPolicy};
use pltune::{Fingerprint, Lookup, Plan, PlanCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fp(width: usize) -> Fingerprint {
    Fingerprint::new("model<u64>", "sum", 1 << 12, true, width)
}

fn plan(leaf: usize) -> Plan {
    Plan {
        policy: SplitPolicy::Fixed(leaf),
        score_ns: leaf as u64,
        candidates: 1,
    }
}

/// Two threads race a cold cache on the same fingerprint: exactly one
/// gets [`Lookup::Claimed`] in every interleaving; the loser observes
/// `Busy` (winner still calibrating) or `Hit` (winner already
/// installed) — never a second claim, and never a lost install.
#[test]
fn racing_cache_misses_claim_exactly_once() {
    let busy_seen = Arc::new(AtomicUsize::new(0));
    let hit_seen = Arc::new(AtomicUsize::new(0));
    let (bs, hs) = (Arc::clone(&busy_seen), Arc::clone(&hit_seen));
    let report = plcheck::Explorer::exhaustive(5_000).run(move || {
        let cache = Arc::new(PlanCache::new());
        let claims = Arc::new(AtomicUsize::new(0));

        let c2 = Arc::clone(&cache);
        let cl2 = Arc::clone(&claims);
        let (bs2, hs2) = (Arc::clone(&bs), Arc::clone(&hs));
        let racer = plcheck::spawn(move || match c2.lookup(&fp(2)) {
            Lookup::Claimed(ticket) => {
                cl2.fetch_add(1, Ordering::SeqCst);
                ticket.install(plan(64));
            }
            Lookup::Busy => {
                bs2.fetch_add(1, Ordering::SeqCst);
            }
            Lookup::Hit(p) => {
                hs2.fetch_add(1, Ordering::SeqCst);
                assert_eq!(
                    p.policy,
                    SplitPolicy::Fixed(32),
                    "a hit must see a full install"
                );
            }
        });

        match cache.lookup(&fp(2)) {
            Lookup::Claimed(ticket) => {
                claims.fetch_add(1, Ordering::SeqCst);
                ticket.install(plan(32));
            }
            Lookup::Busy => {}
            Lookup::Hit(p) => assert_eq!(p.policy, SplitPolicy::Fixed(64)),
        }
        racer.join();

        assert_eq!(
            claims.load(Ordering::SeqCst),
            1,
            "exactly one thread may calibrate a fingerprint"
        );
        // The winner's install is never lost: the slot is Ready and a
        // later sight hits.
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup(&fp(2)), Lookup::Hit(_)));
    });
    report.assert_ok();
    // The exploration must witness the loser in the Busy state (claimed
    // but not yet installed) — that is the interleaving the non-blocking
    // protocol exists for.
    assert!(
        busy_seen.load(Ordering::SeqCst) > 0,
        "some interleaving must observe a calibration in flight"
    );
}

/// A claimant that abandons its ticket (sweep panicked) reverts the
/// slot in every interleaving: the racer is never wedged, and the next
/// sight can claim again — no permanently-poisoned fingerprint.
#[test]
fn abandoned_ticket_reverts_for_retry() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let racer = plcheck::spawn(move || {
            // The racer never blocks, whatever state it observes.
            match c2.lookup(&fp(2)) {
                Lookup::Claimed(t) => drop(t), // claim, then abandon
                Lookup::Busy | Lookup::Hit(_) => {}
            }
        });
        match cache.lookup(&fp(2)) {
            Lookup::Claimed(t) => drop(t),
            Lookup::Busy | Lookup::Hit(_) => {}
        }
        racer.join();
        // Both tickets died uninstalled: the slot must be vacant again,
        // so the next sight claims instead of starving.
        assert!(cache.is_empty());
        assert!(matches!(cache.lookup(&fp(2)), Lookup::Claimed(_)));
    });
    report.assert_ok();
}

/// Concurrent lookups at *different* pool widths: whichever width is
/// observed last purges the other's plans, so the surviving entries are
/// always width-consistent — a plan tuned for a 2-wide pool is never
/// served to an 8-wide one.
#[test]
fn width_races_leave_a_width_consistent_cache() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let racer = plcheck::spawn(move || {
            if let Lookup::Claimed(t) = c2.lookup(&fp(8)) {
                t.install(plan(8));
            }
        });
        if let Lookup::Claimed(t) = cache.lookup(&fp(2)) {
            t.install(plan(2));
        }
        racer.join();
        let entries = cache.ready_entries();
        if let Some((first, _)) = entries.first() {
            assert!(
                entries
                    .iter()
                    .all(|(f, _)| f.pool_width == first.pool_width),
                "entries of mixed widths survived: {entries:?}"
            );
        }
        // A settling lookup at width 8 must leave only width-8 plans.
        let _ = cache.lookup(&fp(8));
        assert!(cache.ready_entries().iter().all(|(f, _)| f.pool_width == 8));
    });
    report.assert_ok();
}

/// The `demand_split` off-pool contract (satellite of the tuner's
/// calibration probe, which may run on a non-worker thread): a caller
/// with no worker context *always* splits and never perturbs the steal
/// baseline — correct because its joins migrate onto the global pool,
/// where parallelism is available. Pinned under concurrent callers so
/// the decision is shown to be thread-independent.
#[test]
fn demand_split_off_pool_always_splits_deterministically() {
    let report = plcheck::Explorer::exhaustive(2_000).run(|| {
        let t = plcheck::spawn(|| {
            assert_eq!(
                demand_split(2, 7),
                (true, 7),
                "off-pool callers always split"
            );
        });
        assert_eq!(
            demand_split(2, 7),
            (true, 7),
            "off-pool callers always split"
        );
        t.join();
    });
    report.assert_ok();
}
