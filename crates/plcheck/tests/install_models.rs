//! plcheck models of the pool's install protocols, kept as permanent
//! regression models for two shipped fixes:
//!
//! * the **claim-back race** of `try_install` (a queued stub and the
//!   installing thread both reach for the same `TaskSlot`) — exactly
//!   one claimant may obtain the closure;
//! * the **cross-pool deadlock** (two threads each waiting on work only
//!   the other's queue holds) — fixed by help-while-waiting, and
//!   demonstrably a deadlock when the help loop is removed.

use crossbeam_deque::Worker;
use forkjoin::task::TaskSlot;
use forkjoin::Latch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The try_install claim-back protocol: a closure lives in a shared
/// [`TaskSlot`]; a stub in the deque claims it, and the installing
/// thread may claim it back first. Across every interleaving exactly
/// one side runs the closure — and the exploration must visit both
/// winners.
#[test]
fn try_install_claim_back_is_exactly_once() {
    let owner_wins = Arc::new(AtomicUsize::new(0));
    let thief_wins = Arc::new(AtomicUsize::new(0));
    let (ow, tw) = (Arc::clone(&owner_wins), Arc::clone(&thief_wins));
    let report = plcheck::Explorer::exhaustive(5_000).run(move || {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let slot = TaskSlot::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        // The queued stub a thief would execute.
        let deque = Worker::new_lifo();
        let stealer = deque.stealer();
        let stub_slot = Arc::clone(&slot);
        deque.push(Box::new(move || {
            if let Some(f) = stub_slot.claim() {
                f();
            }
        }) as Box<dyn FnOnce() + Send>);
        let thief = plcheck::spawn(move || {
            if let Some(stub) = stealer.steal().success() {
                stub();
            }
        });
        // The installing thread claims back after finishing its own half.
        let claimed_back = match slot.claim() {
            Some(f) => {
                f();
                true
            }
            None => false,
        };
        thief.join();
        // Whether or not the thief stole the stub, the closure ran
        // exactly once.
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "closure must run exactly once"
        );
        assert!(slot.is_claimed());
        if claimed_back {
            ow.fetch_add(1, Ordering::SeqCst);
        } else {
            tw.fetch_add(1, Ordering::SeqCst);
        }
    });
    report.assert_ok();
    let (o, t) = (
        owner_wins.load(Ordering::SeqCst),
        thief_wins.load(Ordering::SeqCst),
    );
    assert!(
        o > 0 && t > 0,
        "both winners must occur (owner {o}, thief {t})"
    );
}

/// One job, two racing executors of the *same queued stub object*: the
/// slot linearises the claim, so a stub that loses finds the slot empty
/// and becomes a no-op (the real pool's "stale stub" path).
#[test]
fn stale_stub_is_a_noop() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let slot = TaskSlot::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let s2 = Arc::clone(&slot);
        let racer = plcheck::spawn(move || {
            plcheck::yield_now();
            if let Some(f) = s2.claim() {
                f();
            }
        });
        plcheck::yield_now();
        if let Some(f) = slot.claim() {
            f();
        }
        racer.join();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    });
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Cross-pool wait models. Each of two threads waits on a latch only a
// task in its *own* deque sets — the shape of the PR 3 cross-pool
// deadlock. Helping while waiting drains the local deque and always
// terminates; blocking without helping deadlocks, and the checker must
// say so.
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send>;

fn cross_pool_model(help_while_waiting: bool) {
    let latch_a = Arc::new(Latch::new()); // set by the task in A's deque
    let latch_b = Arc::new(Latch::new()); // set by the task in B's deque
    let deque_a = Worker::new_lifo();
    let deque_b = Worker::new_lifo();
    let la = Arc::clone(&latch_a);
    deque_a.push(Box::new(move || la.set()) as Job);
    let lb = Arc::clone(&latch_b);
    deque_b.push(Box::new(move || lb.set()) as Job);

    // Each side waits for the *other* side's latch while (maybe)
    // helping from its own deque — like a worker whose pending local
    // task is the only thing that can unblock its peer.
    fn wait_side(target: &Latch, own: &Worker<Job>, help: bool) {
        if help {
            while !target.is_set() {
                match own.pop() {
                    Some(job) => job(),
                    // Nothing local to run: bounded park, then recheck
                    // (the pool's park tick).
                    None => {
                        target.wait_timeout(Duration::from_millis(1));
                    }
                }
            }
            // The wait may have been satisfied before the local task
            // ran; a real worker's main loop would still execute it, so
            // the model must too (the peer is waiting on it).
            while let Some(job) = own.pop() {
                job();
            }
        } else {
            target.wait(); // BUG shape: blocking wait, no helping
        }
    }

    let (lb2, sa) = (Arc::clone(&latch_b), deque_a.stealer());
    let side_a = plcheck::spawn(move || {
        // Rebuild a Worker view over A's queue via its stealer: the
        // helping loop runs A's own pending task.
        let own = Worker::new_lifo();
        while let Some(j) = sa.steal().success() {
            own.push(j);
        }
        wait_side(&lb2, &own, help_while_waiting);
    });
    let own_b = Worker::new_lifo();
    while let Some(j) = deque_b.stealer().steal().success() {
        own_b.push(j);
    }
    wait_side(&latch_a, &own_b, help_while_waiting);
    side_a.join();
    assert!(latch_a.is_set() && latch_b.is_set());
}

/// With help-while-waiting (the shipped fix), every interleaving
/// terminates with both latches set.
#[test]
fn cross_pool_wait_with_helping_never_deadlocks() {
    // The helping loop's park tick makes the schedule tree deeper than
    // the pure-deque models; random exploration covers it well.
    let report = plcheck::Explorer::random(128, 0xC805_5EED).run(|| cross_pool_model(true));
    report.assert_ok();
}

/// Without helping — the pre-fix shape — the checker must find the
/// mutual wait and report a deadlock naming both parked threads.
#[test]
fn cross_pool_wait_without_helping_deadlocks() {
    let report = plcheck::Explorer::exhaustive(2_000).run(|| cross_pool_model(false));
    let failure = report.expect_failure("cross-pool mutual wait");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}

/// Living documentation of the pre-fix deadlock report; fails by
/// design, run with `--ignored` to see it.
#[test]
#[ignore = "intentionally failing demo of the cross-pool deadlock report; run with --ignored"]
fn cross_pool_deadlock_report_demo() {
    plcheck::Explorer::exhaustive(2_000)
        .run(|| cross_pool_model(false))
        .assert_ok();
}
