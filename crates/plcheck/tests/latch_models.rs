//! plcheck models of the fork-join completion signals
//! (`forkjoin::{Latch, CountLatch}`) and of the pool's two-phase park
//! protocol, plus a deliberately broken latch whose lost wakeup the
//! deadlock detector must catch.

use forkjoin::{CountLatch, Latch};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One setter, one waiter: across every interleaving the waiter wakes
/// and observes the latch set — the mutex bridge in `Latch::set` closes
/// the check-then-wait window that would otherwise lose the wakeup
/// (the deadlock detector fails any schedule where the waiter parks
/// forever).
#[test]
fn latch_set_never_loses_the_wakeup() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let latch = Arc::new(Latch::new());
        let l = Arc::clone(&latch);
        let waiter = plcheck::spawn(move || {
            l.wait();
            assert!(l.is_set());
        });
        latch.set();
        waiter.join();
    });
    report.assert_ok();
    assert!(report.schedules > 1, "set/wait must actually interleave");
}

/// Two concurrent decrements bring the count to zero: the waiter always
/// wakes, and the latch sets on exactly the decrement that reaches
/// zero, never before.
#[test]
fn count_latch_concurrent_decrements_release_waiter() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let latch = Arc::new(CountLatch::new(2));
        let l1 = Arc::clone(&latch);
        let d1 = plcheck::spawn(move || l1.decrement());
        let l2 = Arc::clone(&latch);
        let d2 = plcheck::spawn(move || l2.decrement());
        latch.wait();
        assert!(latch.is_set());
        assert_eq!(latch.count(), 0);
        d1.join();
        d2.join();
    });
    report.assert_ok();
}

/// A timed wait on a latch nobody sets expires on the *virtual* clock:
/// the schedule terminates (the clock jumps to the timer), the wait
/// reports "not set", and no wall-clock time is spent.
#[test]
fn latch_wait_timeout_expires_on_virtual_clock() {
    let wall = std::time::Instant::now();
    let report = plcheck::Explorer::exhaustive(100).run(|| {
        let latch = Latch::new();
        let before = plcheck::virtual_now_ns().expect("on model");
        let set = latch.wait_timeout(Duration::from_millis(5));
        assert!(!set, "nobody sets the latch");
        let after = plcheck::virtual_now_ns().expect("on model");
        assert!(
            after >= before + 5_000_000,
            "virtual clock must cover the timeout: {before} -> {after}"
        );
    });
    report.assert_ok();
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "virtual timeouts must not sleep wall-clock time"
    );
}

/// Model of `PoolState::park`'s two-phase protocol (the shape the real
/// pool uses): publish work, then recheck-under-lock with a timed wait.
/// The consumer must always obtain the work item — the recheck plus the
/// bounded wait make the protocol immune to the publish/park race.
#[test]
fn pool_park_protocol_never_loses_work() {
    let report = plcheck::Explorer::exhaustive(5_000).run(|| {
        let work = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (w, p) = (Arc::clone(&work), Arc::clone(&pair));
        let consumer = plcheck::spawn(move || {
            // Phase 1: opportunistic check; Phase 2: recheck under the
            // lock, then a *timed* wait (the pool's 1 ms park tick).
            let mut got = w.swap(false, Ordering::AcqRel);
            while !got {
                let (m, cv) = &*p;
                let mut g = m.lock();
                got = w.swap(false, Ordering::AcqRel);
                if got {
                    break;
                }
                cv.wait_for(&mut g, Duration::from_millis(1));
                drop(g);
                got = w.swap(false, Ordering::AcqRel);
            }
            assert!(got);
        });
        work.store(true, Ordering::Release);
        let (m, cv) = &*pair;
        let _g = m.lock();
        cv.notify_all();
        drop(_g);
        consumer.join();
    });
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Known-bad mutation model: a latch whose wait() does not recheck the
// flag under the mutex and whose set() skips the mutex bridge. The
// waiter can check the flag (unset), lose the race to set+notify, then
// park forever — a textbook lost wakeup the deadlock detector reports.
// ---------------------------------------------------------------------

struct BadLatch {
    done: AtomicBool,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl BadLatch {
    fn new() -> Self {
        BadLatch {
            done: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// BUG (deliberate): notify without holding the mutex, so the
    /// notification can slip into the waiter's check-to-park window.
    fn set(&self) {
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// BUG (deliberate): no recheck of `done` once the mutex is held.
    fn wait(&self) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let mut g = self.mutex.lock();
        self.cv.wait(&mut g);
    }
}

fn bad_latch_model() {
    let latch = Arc::new(BadLatch::new());
    let l = Arc::clone(&latch);
    let waiter = plcheck::spawn(move || l.wait());
    latch.set();
    waiter.join();
}

/// The checker must find the lost-wakeup interleaving and report it as
/// a deadlock, and the printed schedule must replay to the same report.
#[test]
fn bad_latch_lost_wakeup_is_caught_and_replays() {
    let report = plcheck::Explorer::exhaustive(5_000).run(bad_latch_model);
    let failure = report.expect_failure("lost wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
    let choices = match &failure.spec {
        plcheck::ScheduleSpec::Choices(c) => c.clone(),
        other => panic!("exhaustive mode must report choices, got {other}"),
    };
    let replay = plcheck::Explorer::replay_choices(choices).run(bad_latch_model);
    let replayed = replay.expect_failure("replayed lost wakeup");
    assert_eq!(replayed.message, failure.message);
}

/// Living documentation: run with `--ignored` for the full failure
/// report (deadlocked thread states + interleaving trace). Fails by
/// design.
#[test]
#[ignore = "intentionally failing demo of a lost-wakeup deadlock report; run with --ignored"]
fn bad_latch_failure_report_demo() {
    plcheck::Explorer::exhaustive(5_000)
        .run(bad_latch_model)
        .assert_ok();
}

/// The fixed `forkjoin::Latch` under the *same* exploration budget as
/// the bad one: a direct A/B demonstration that the mutation (not the
/// harness) is what the checker catches. Also counts wakeup paths via
/// an oracle to show both fast-path and parked wakeups are explored.
#[test]
fn good_latch_survives_the_same_exploration() {
    let fast = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fast);
    let report = plcheck::Explorer::exhaustive(5_000).run(move || {
        let latch = Arc::new(Latch::new());
        let (l, f) = (Arc::clone(&latch), Arc::clone(&f));
        let waiter = plcheck::spawn(move || {
            if l.is_set() {
                f.fetch_add(1, Ordering::SeqCst); // fast path taken
            }
            l.wait();
        });
        latch.set();
        waiter.join();
    });
    report.assert_ok();
    let fast_hits = fast.load(Ordering::SeqCst);
    assert!(
        fast_hits > 0 && fast_hits < report.schedules,
        "exploration must cover both the fast path and the parked path \
         ({fast_hits} fast of {} schedules)",
        report.schedules
    );
}
