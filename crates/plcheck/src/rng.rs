//! Deterministic seed arithmetic for schedule selection.
//!
//! plcheck cannot depend on the workspace `rand` stand-in (the
//! instrumented crates sit *above* plcheck in the dependency graph), so
//! it carries its own tiny generator: SplitMix64, the canonical 64-bit
//! seeding mixer. Every random schedule is a pure function of one `u64`
//! seed, which is what makes "replay the failing schedule from its
//! printed seed" exact.

/// SplitMix64: a tiny, fast, full-period 64-bit generator.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire output stream is determined by `seed`.
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform-ish choice in `0..n` (`n >= 1`).
    pub(crate) fn choose(&mut self, n: usize) -> u32 {
        debug_assert!(n >= 1);
        (self.next_u64() % n as u64) as u32
    }
}

/// Derives the seed of the `i`-th schedule of a random exploration from
/// its base seed. One mixing round keeps neighbouring schedule seeds
/// decorrelated while staying printable/replayable as a plain `u64`.
pub(crate) fn schedule_seed(base: u64, i: u64) -> u64 {
    let mut g = SplitMix64::new(base ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
    g.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_stays_in_range() {
        let mut g = SplitMix64::new(7);
        for n in 1..20 {
            for _ in 0..50 {
                assert!((g.choose(n) as usize) < n);
            }
        }
    }

    #[test]
    fn schedule_seeds_differ() {
        let a = schedule_seed(1, 0);
        let b = schedule_seed(1, 1);
        let c = schedule_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
