//! The cooperative scheduler: model threads, turn passing, virtual time.
//!
//! A schedule runs the model on real OS threads but **serialises** them:
//! exactly one model thread executes at any moment, and control returns
//! to the scheduler at every *yield point* (the instrumentation hooks in
//! the vendored concurrency crates). At each scheduling point the
//! [`Source`] — a seeded RNG or a scripted choice prefix — picks which
//! runnable thread proceeds, so a schedule is a pure function of its
//! seed/choice list and the (deterministic) model body.
//!
//! Blocking is cooperative: an instrumented mutex that would block
//! reports [`block_on`]; an instrumented condvar wait reports [`park`].
//! Blocked and parked threads are invisible to the picker until a
//! matching [`release`]/[`notify`] (or a virtual-clock timeout) makes
//! them runnable again. When no thread is runnable and no timer is
//! armed, the schedule has genuinely deadlocked — the checker reports it
//! with every thread's last known operation. A step bound catches
//! livelocks (schedules that spin without making progress).
//!
//! Time is virtual: a logical nanosecond clock advances by a fixed
//! quantum per scheduling step and *jumps* to the earliest armed timer
//! when every thread is parked, so timed waits (`Condvar::wait_for`,
//! `Latch::wait_timeout`, `Deadline`) resolve instantly and
//! deterministically instead of sleeping wall-clock time.

use crate::rng::SplitMix64;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Resource-id namespace for "thread `tid` finished" (used by
/// [`JoinHandle::join`]); high bit keeps it clear of real addresses.
const THREAD_DONE_NS: usize = 1usize << (usize::BITS - 1);

/// Virtual nanoseconds charged per scheduling step.
const QUANTUM_NS: u64 = 1_000;

/// Why a [`park`]ed thread woke up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeReason {
    /// A [`notify`] selected this thread.
    Notified,
    /// The virtual clock reached the park timeout.
    TimedOut,
}

#[derive(Clone, Debug)]
enum Status {
    Runnable,
    Running,
    Blocked { res: usize },
    Parked { res: usize, wake_at: Option<u64> },
    Done,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Turn {
    Control,
    Thread(usize),
}

/// Where the next scheduling choices come from.
pub(crate) enum Source {
    /// Seeded pseudo-random choices: the fuzzing mode.
    Random(SplitMix64),
    /// A forced prefix of branch choices (first-alternative beyond it):
    /// the DFS enumeration and choice-replay mode.
    Scripted { prefix: Vec<u32>, pos: usize },
}

impl Source {
    fn choose(&mut self, n: usize) -> u32 {
        match self {
            Source::Random(g) => g.choose(n),
            Source::Scripted { prefix, pos } => {
                let c = if *pos < prefix.len() {
                    prefix[*pos].min(n as u32 - 1)
                } else {
                    0
                };
                *pos += 1;
                c
            }
        }
    }
}

struct TraceEntry {
    step: usize,
    clock_ns: u64,
    tid: usize,
    label: &'static str,
}

struct SchedState {
    status: Vec<Status>,
    /// Last hook label seen per thread; used in deadlock reports.
    last_label: Vec<&'static str>,
    wake_reason: Vec<WakeReason>,
    turn: Turn,
    clock_ns: u64,
    steps: usize,
    /// `(chosen, alternatives)` at every branching scheduling point.
    decisions: Vec<(u32, u32)>,
    source: Source,
    trace: Vec<TraceEntry>,
    failure: Option<String>,
    aborting: bool,
}

impl SchedState {
    fn record(&mut self, tid: usize, label: &'static str) {
        self.last_label[tid] = label;
        self.trace.push(TraceEntry {
            step: self.steps,
            clock_ns: self.clock_ns,
            tid,
            label,
        });
    }

    fn decide(&mut self, n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        let c = self.source.choose(n);
        self.decisions.push((c, n as u32));
        c
    }
}

pub(crate) struct Session {
    m: Mutex<SchedState>,
    cv: Condvar,
    max_steps: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Sentinel panic payload used to unwind model threads during teardown
/// of a failed or deadlocked schedule. Never reported as a failure.
struct Abort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Session>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Session>, usize)> {
    // Hooks must stay inert while a model thread unwinds (guard drops
    // run during teardown) — panicking inside a panic would abort the
    // whole process.
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// `true` when the calling thread is a model thread of an active
/// schedule — i.e. the instrumentation hooks are live.
pub fn active() -> bool {
    current().is_some()
}

/// The virtual clock of the active schedule, in nanoseconds; `None` off
/// the model. Lets time-based primitives (`forkjoin::Deadline`) measure
/// deterministic virtual time under the checker.
pub fn virtual_now_ns() -> Option<u64> {
    let (sess, _) = current()?;
    let g = lock(&sess.m);
    Some(g.clock_ns)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parks the calling model thread until control hands the turn back.
/// `g` must already reflect the thread's new status and `turn ==
/// Control`. Returns with the turn re-acquired; unwinds on abort.
fn hand_to_control(sess: &Session, tid: usize, mut g: std::sync::MutexGuard<'_, SchedState>) {
    sess.cv.notify_all();
    while g.turn != Turn::Thread(tid) {
        g = sess
            .cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let abort = g.aborting;
    g.status[tid] = Status::Running;
    drop(g);
    if abort {
        std::panic::panic_any(Abort);
    }
}

/// A scheduling point: the calling model thread offers the scheduler a
/// chance to run any other thread. Instrumented primitives call this
/// before every visible operation; model code may also call it directly
/// to widen an interleaving window. No-op off the model.
pub fn yield_op(label: &'static str) {
    let Some((sess, tid)) = current() else { return };
    let mut g = lock(&sess.m);
    if g.aborting {
        drop(g);
        std::panic::panic_any(Abort);
    }
    g.record(tid, label);
    g.status[tid] = Status::Runnable;
    g.turn = Turn::Control;
    hand_to_control(&sess, tid, g);
}

/// Convenience alias for an explicit model-level scheduling point.
pub fn yield_now() {
    yield_op("yield");
}

/// Reports that the calling model thread would block on `res` (an
/// instrumented mutex, a join target, …). The scheduler will not run it
/// again until a matching [`release`] — the caller retries its
/// operation on return. No-op off the model.
pub fn block_on(res: usize, label: &'static str) {
    let Some((sess, tid)) = current() else { return };
    let mut g = lock(&sess.m);
    if g.aborting {
        drop(g);
        std::panic::panic_any(Abort);
    }
    g.record(tid, label);
    g.status[tid] = Status::Blocked { res };
    g.turn = Turn::Control;
    hand_to_control(&sess, tid, g);
}

/// Wakes every thread [`block_on`]ed on `res` (they re-contend; losers
/// re-block). Called by instrumented unlock paths. Does **not** yield —
/// release+park sequences in condvar shims must stay atomic with
/// respect to the model. No-op off the model.
pub fn release(res: usize) {
    let Some((sess, _tid)) = current() else {
        return;
    };
    let mut g = lock(&sess.m);
    for st in g.status.iter_mut() {
        if matches!(st, Status::Blocked { res: r } if *r == res) {
            *st = Status::Runnable;
        }
    }
}

/// Condvar-style wait: parks the calling model thread on `res` until a
/// [`notify`] selects it or the virtual clock reaches `timeout`.
/// Returns why it woke. Off the model this is a bug in the shim — it
/// returns `Notified` immediately.
pub fn park(res: usize, timeout: Option<Duration>, label: &'static str) -> WakeReason {
    let Some((sess, tid)) = current() else {
        return WakeReason::Notified;
    };
    let mut g = lock(&sess.m);
    if g.aborting {
        drop(g);
        std::panic::panic_any(Abort);
    }
    g.record(tid, label);
    let wake_at = timeout.map(|d| {
        g.clock_ns
            .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    });
    g.status[tid] = Status::Parked { res, wake_at };
    g.turn = Turn::Control;
    hand_to_control(&sess, tid, g);
    let g = lock(&sess.m);
    g.wake_reason[tid]
}

/// Wakes threads [`park`]ed on `res`: all of them, or — `all == false`
/// — one picked by the schedule source (a real scheduling decision:
/// which waiter a `notify_one` wakes is nondeterministic in the wild).
/// Waking nobody when nobody is parked is deliberate: that is exactly
/// the lost-wakeup semantics of a real condvar. No-op off the model.
pub fn notify(res: usize, all: bool) {
    let Some((sess, _tid)) = current() else {
        return;
    };
    let mut g = lock(&sess.m);
    let waiters: Vec<usize> = g
        .status
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st, Status::Parked { res: r, .. } if *r == res))
        .map(|(i, _)| i)
        .collect();
    if waiters.is_empty() {
        return;
    }
    if all {
        for t in waiters {
            g.status[t] = Status::Runnable;
            g.wake_reason[t] = WakeReason::Notified;
        }
    } else {
        let c = g.decide(waiters.len()) as usize;
        let t = waiters[c];
        g.status[t] = Status::Runnable;
        g.wake_reason[t] = WakeReason::Notified;
    }
}

/// Records a checker failure for the current schedule and unwinds the
/// calling model thread without tripping the process panic hook (unlike
/// an `assert!`, which also works but prints a backtrace). Off the
/// model it degenerates to a plain panic.
pub fn fail(msg: impl Into<String>) -> ! {
    let msg = msg.into();
    match current() {
        Some((sess, tid)) => {
            let mut g = lock(&sess.m);
            if g.failure.is_none() {
                let failure = format!("model thread {tid} failed at step {}: {msg}", g.steps);
                g.failure = Some(failure);
            }
            g.aborting = true;
            drop(g);
            std::panic::panic_any(Abort);
        }
        None => panic!("{msg}"),
    }
}

/// Handle to a model thread created with [`spawn`].
pub struct JoinHandle {
    sess: Arc<Session>,
    tid: usize,
}

impl JoinHandle {
    /// Blocks (cooperatively) until the spawned model thread finishes.
    /// A panic in the target is reported as a schedule failure by the
    /// checker itself, so `join` carries no result.
    pub fn join(self) {
        yield_op("thread::join");
        loop {
            {
                let g = lock(&self.sess.m);
                if matches!(g.status[self.tid], Status::Done) {
                    return;
                }
            }
            block_on(THREAD_DONE_NS | self.tid, "thread::join");
        }
    }
}

/// Spawns an additional model thread into the active schedule. The new
/// thread starts runnable and runs only when the scheduler picks it.
///
/// # Panics
///
/// Panics when called outside a model (there is no schedule to join).
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (sess, _me) = current().expect("plcheck::spawn called outside a model");
    let tid = {
        let mut g = lock(&sess.m);
        let tid = g.status.len();
        g.status.push(Status::Runnable);
        g.last_label.push("spawned");
        g.wake_reason.push(WakeReason::Notified);
        tid
    };
    spawn_model_thread(&sess, tid, f);
    // A spawn is a visible operation: give the scheduler the chance to
    // run the child (or anyone else) right away.
    yield_op("thread::spawn");
    JoinHandle { sess, tid }
}

fn spawn_model_thread(sess: &Arc<Session>, tid: usize, f: impl FnOnce() + Send + 'static) {
    let s = Arc::clone(sess);
    let h = std::thread::Builder::new()
        .name(format!("plcheck-model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&s), tid)));
            // Wait for the first dispatch.
            {
                let mut g = lock(&s.m);
                while g.turn != Turn::Thread(tid) {
                    g =
                        s.cv.wait(g)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                let abort = g.aborting;
                g.status[tid] = Status::Running;
                drop(g);
                if !abort {
                    let r = catch_unwind(AssertUnwindSafe(f));
                    let mut g = lock(&s.m);
                    if let Err(payload) = r {
                        if payload.downcast_ref::<Abort>().is_none() && g.failure.is_none() {
                            let failure = format!(
                                "model thread {tid} panicked at step {}: {}",
                                g.steps,
                                payload_message(&payload)
                            );
                            g.failure = Some(failure);
                        }
                    }
                    drop(g);
                }
            }
            let mut g = lock(&s.m);
            g.status[tid] = Status::Done;
            // Wake cooperative joiners.
            let done_res = THREAD_DONE_NS | tid;
            for st in g.status.iter_mut() {
                if matches!(st, Status::Blocked { res } if *res == done_res) {
                    *st = Status::Runnable;
                }
            }
            g.turn = Turn::Control;
            s.cv.notify_all();
        })
        .expect("failed to spawn plcheck model thread");
    lock(&sess.handles).push(h);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Result of running one schedule to completion.
pub(crate) struct Outcome {
    pub(crate) failure: Option<String>,
    pub(crate) trace: String,
    pub(crate) decisions: Vec<(u32, u32)>,
    pub(crate) steps: usize,
}

fn deadlock_report(g: &SchedState) -> String {
    let mut s = String::from("deadlock: every live thread is blocked or parked with no timer\n");
    for (tid, st) in g.status.iter().enumerate() {
        let state = match st {
            Status::Blocked { .. } => "blocked",
            Status::Parked { .. } => "parked",
            Status::Done => continue,
            _ => "runnable?",
        };
        s.push_str(&format!(
            "  thread {tid}: {state} at `{}`\n",
            g.last_label[tid]
        ));
    }
    s
}

fn render_trace(trace: &[TraceEntry]) -> String {
    const TAIL: usize = 120;
    let skipped = trace.len().saturating_sub(TAIL);
    let mut s = String::new();
    if skipped > 0 {
        s.push_str(&format!("  … {skipped} earlier steps elided …\n"));
    }
    for e in &trace[skipped..] {
        s.push_str(&format!(
            "  #{:<4} t{} {:<22} @{}ns\n",
            e.step, e.tid, e.label, e.clock_ns
        ));
    }
    s
}

/// Runs one schedule of `body` under `source`, returning its outcome.
/// The caller's thread acts as the scheduler (control); the model body
/// runs as model thread 0.
pub(crate) fn run_schedule(
    source: Source,
    max_steps: usize,
    body: Arc<dyn Fn() + Send + Sync>,
) -> Outcome {
    let sess = Arc::new(Session {
        m: Mutex::new(SchedState {
            status: vec![Status::Runnable],
            last_label: vec!["start"],
            wake_reason: vec![WakeReason::Notified],
            turn: Turn::Control,
            clock_ns: 0,
            steps: 0,
            decisions: Vec::new(),
            source,
            trace: Vec::new(),
            failure: None,
            aborting: false,
        }),
        cv: Condvar::new(),
        max_steps,
        handles: Mutex::new(Vec::new()),
    });
    spawn_model_thread(&sess, 0, move || body());

    let mut g = lock(&sess.m);
    loop {
        while g.turn != Turn::Control {
            g = sess
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if g.failure.is_some() {
            g.aborting = true;
        }
        if g.aborting {
            // Teardown: dispatch every live thread once so it unwinds
            // via the Abort sentinel (hooks observe `aborting`).
            match g.status.iter().position(|s| !matches!(s, Status::Done)) {
                Some(tid) => {
                    g.turn = Turn::Thread(tid);
                    sess.cv.notify_all();
                    continue;
                }
                None => break,
            }
        }
        let runnable: Vec<usize> = g
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if g.status.iter().all(|s| matches!(s, Status::Done)) {
                break;
            }
            // Virtual-clock jump: wake the earliest armed timer(s).
            let min_wake = g
                .status
                .iter()
                .filter_map(|s| match s {
                    Status::Parked {
                        wake_at: Some(t), ..
                    } => Some(*t),
                    _ => None,
                })
                .min();
            match min_wake {
                Some(t) => {
                    g.clock_ns = g.clock_ns.max(t);
                    let now = g.clock_ns;
                    let state = &mut *g;
                    for (i, st) in state.status.iter_mut().enumerate() {
                        if let Status::Parked {
                            wake_at: Some(w), ..
                        } = st
                        {
                            if *w <= now {
                                *st = Status::Runnable;
                                state.wake_reason[i] = WakeReason::TimedOut;
                            }
                        }
                    }
                    continue;
                }
                None => {
                    g.failure = Some(deadlock_report(&g));
                    continue;
                }
            }
        }
        if g.steps >= sess.max_steps {
            g.failure = Some(format!(
                "schedule exceeded the {}-step bound (livelock?)",
                sess.max_steps
            ));
            continue;
        }
        let c = g.decide(runnable.len()) as usize;
        let tid = runnable[c];
        g.status[tid] = Status::Running;
        g.steps += 1;
        g.clock_ns += QUANTUM_NS;
        g.turn = Turn::Thread(tid);
        sess.cv.notify_all();
    }
    let outcome = Outcome {
        failure: g.failure.clone(),
        trace: render_trace(&g.trace),
        decisions: g.decisions.clone(),
        steps: g.steps,
    };
    drop(g);
    for h in lock(&sess.handles).drain(..) {
        let _ = h.join();
    }
    outcome
}
