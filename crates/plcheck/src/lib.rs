//! # plcheck — a deterministic concurrency checker for the fork-join runtime
//!
//! The shared-state channel, the fork-join pool and the cancel/deadline
//! machinery of this workspace all rest on hand-vendored concurrency
//! primitives (`crossbeam-deque`, `parking_lot`, `crossbeam-channel`).
//! Ordinary tests only ever see the interleavings the OS scheduler
//! happens to produce; `plcheck` explores interleavings *on purpose*, in
//! the style of [loom](https://github.com/tokio-rs/loom):
//!
//! * a **cooperative scheduler** ([`Explorer`]) serialises N model
//!   threads and picks, at every yield point, which one runs next —
//!   from a seeded RNG (fuzzing) or a depth-first enumeration of the
//!   schedule tree (bounded exhaustive mode, for ≤ 3-thread models);
//! * the vendored primitives carry **instrumentation shims** — every
//!   deque push/pop/steal, every `parking_lot` lock acquisition, every
//!   condvar park/notify and every `CancelToken`/`Deadline` operation is
//!   a scheduling point when (and only when) it executes on a model
//!   thread; production threads never pay more than a thread-local read;
//! * **checkers** ride on top: a deadlock/lost-wakeup detector built
//!   into the scheduler (no runnable thread + no armed timer = report),
//!   a livelock step bound, the exactly-once [`TaskAccount`] oracle for
//!   the deque, and model assertions via [`fail`];
//! * time is **virtual**: timed waits and [`forkjoin`-style deadlines]
//!   resolve against a logical clock that jumps when every thread is
//!   parked, so timeout paths run deterministically and instantly.
//!
//! [`forkjoin`-style deadlines]: virtual_now_ns
//!
//! Every failing schedule prints its identity — a `u64` seed in random
//! mode, a branch-choice list in exhaustive mode — and
//! [`Explorer::replay_seed`] / [`Explorer::replay_choices`] re-run
//! exactly that interleaving, because a schedule is a pure function of
//! its choices and the (deterministic) model body.
//!
//! ## Writing a model
//!
//! A model is a closure run once per schedule on model thread 0; it
//! spawns siblings with [`spawn`] and joins them with
//! [`JoinHandle::join`]. Inside a model, the instrumented primitives
//! (`parking_lot::Mutex`/`Condvar`, the `crossbeam-deque` types,
//! `forkjoin::{Latch, CountLatch, CancelToken, Deadline}`,
//! `jstreams::SharedState`) interleave under the checker; `std::sync`
//! primitives do **not** and are reserved for oracle bookkeeping.
//! Models must not spawn raw OS threads or touch wall-clock time, and
//! should drive the *primitives* directly rather than a live
//! `ForkJoinPool` (pool workers are real threads outside the model).
//!
//! ```
//! use std::sync::Arc;
//!
//! let report = plcheck::Explorer::exhaustive(1_000).run(|| {
//!     let account = Arc::new(plcheck::TaskAccount::new());
//!     let w = crossbeam_deque::Worker::new_lifo();
//!     let s = w.stealer();
//!     w.push(1u64);
//!     w.push(2);
//!     account.produced(1);
//!     account.produced(2);
//!     let acc = Arc::clone(&account);
//!     let thief = plcheck::spawn(move || {
//!         if let Some(t) = s.steal().success() {
//!             acc.claimed(t);
//!         }
//!     });
//!     while let Some(t) = w.pop() {
//!         account.claimed(t);
//!     }
//!     thief.join();
//!     // A task may still sit in the deque only if the thief lost the
//!     // race entirely; drain the remainder before balancing.
//!     while let Some(t) = w.pop() {
//!         account.claimed(t);
//!     }
//!     account.assert_balanced();
//! });
//! report.assert_ok();
//! ```

#![warn(missing_docs)]

mod explore;
mod oracle;
mod rng;
mod sched;

pub use explore::{Explorer, Failure, Report, ScheduleSpec};
pub use oracle::TaskAccount;
pub use sched::{
    active, block_on, fail, notify, park, release, spawn, virtual_now_ns, yield_now, yield_op,
    JoinHandle, WakeReason,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn hooks_are_inert_off_model() {
        assert!(!active());
        assert_eq!(virtual_now_ns(), None);
        yield_op("noop");
        yield_now();
        block_on(1, "noop");
        release(1);
        notify(1, true);
        assert_eq!(park(1, None, "noop"), WakeReason::Notified);
    }

    #[test]
    fn single_thread_model_runs_once_exhaustively() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let report = Explorer::exhaustive(100).run(move || {
            r.fetch_add(1, Ordering::SeqCst);
            yield_now();
            yield_now();
        });
        report.assert_ok();
        // No branching points: the schedule tree has exactly one leaf.
        assert_eq!(report.schedules, 1);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn two_thread_model_explores_both_orders() {
        // Record which thread reaches the shared cell first; both
        // orders must occur across the enumeration.
        let first: Arc<std::sync::Mutex<Vec<usize>>> = Arc::default();
        let f = Arc::clone(&first);
        let report = Explorer::exhaustive(1_000).run(move || {
            let cell = Arc::new(std::sync::Mutex::new(None::<usize>));
            let c = Arc::clone(&cell);
            let t = spawn(move || {
                yield_now();
                c.lock().unwrap().get_or_insert(1);
            });
            yield_now();
            cell.lock().unwrap().get_or_insert(0);
            t.join();
            f.lock().unwrap().push(cell.lock().unwrap().unwrap());
        });
        report.assert_ok();
        assert!(report.schedules >= 2, "saw {} schedules", report.schedules);
        let seen = first.lock().unwrap();
        assert!(
            seen.contains(&0) && seen.contains(&1),
            "orders seen: {seen:?}"
        );
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        // A thread that parks forever with nobody to notify it.
        let report = Explorer::exhaustive(10).run(|| {
            park(0xDEAD, None, "orphan-park");
        });
        let f = report.expect_failure("orphaned park");
        assert!(f.message.contains("deadlock"), "message: {}", f.message);
        assert!(f.trace.contains("orphan-park"), "trace: {}", f.trace);
    }

    #[test]
    fn livelock_hits_the_step_bound() {
        let report = Explorer::exhaustive(10).with_max_steps(50).run(|| loop {
            yield_now();
        });
        let f = report.expect_failure("livelock");
        assert!(f.message.contains("step bound"), "message: {}", f.message);
    }

    #[test]
    fn timed_park_wakes_via_virtual_clock() {
        let report = Explorer::exhaustive(10).run(|| {
            let before = virtual_now_ns().unwrap();
            let why = park(7, Some(std::time::Duration::from_micros(50)), "timed-park");
            assert_eq!(why, WakeReason::TimedOut);
            let after = virtual_now_ns().unwrap();
            assert!(
                after >= before + 50_000,
                "clock must jump: {before} -> {after}"
            );
        });
        report.assert_ok();
    }

    #[test]
    fn fail_aborts_all_threads() {
        let report = Explorer::exhaustive(10).run(|| {
            let _t = spawn(|| {
                // Never notified; teardown must still unwind it.
                park(9, None, "victim-park");
            });
            yield_now();
            fail("model says no");
        });
        let f = report.expect_failure("explicit fail");
        assert!(f.message.contains("model says no"));
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let model = || {
            let t = spawn(|| {
                yield_now();
            });
            yield_now();
            t.join();
        };
        let a = Explorer::replay_seed(0x1234).run(model);
        let b = Explorer::replay_seed(0x1234).run(model);
        a.assert_ok();
        b.assert_ok();
    }
}
