//! Checker oracles: invariant bookkeeping that stays *outside* the
//! explored schedule.
//!
//! Oracles deliberately use `std::sync` primitives, not the
//! instrumented ones — their bookkeeping must be invisible to the
//! scheduler, or observing an invariant would itself perturb the
//! interleavings being checked.

use std::collections::HashMap;
use std::sync::Mutex;

#[derive(Default, Clone, Copy)]
struct Account {
    produced: usize,
    claimed: usize,
}

/// Exactly-once accounting for queue-like structures: every produced
/// task id must be claimed exactly once, across any number of
/// concurrent claimants.
///
/// This is the linearizability/precedence oracle for the work-stealing
/// deque: `produced` at push, `claimed` at pop/steal (a duplicate claim
/// fails the schedule immediately), and [`TaskAccount::assert_balanced`]
/// at the end catches lost tasks.
#[derive(Default)]
pub struct TaskAccount {
    inner: Mutex<HashMap<u64, Account>>,
}

impl TaskAccount {
    /// An empty account.
    pub fn new() -> Self {
        TaskAccount::default()
    }

    /// Records that task `id` was made claimable (pushed).
    pub fn produced(&self, id: u64) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(id)
            .or_default()
            .produced += 1;
    }

    /// Records that task `id` was claimed (popped or stolen). Fails the
    /// schedule on a duplicate or phantom claim.
    pub fn claimed(&self, id: u64) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let a = g.entry(id).or_default();
        a.claimed += 1;
        if a.claimed > a.produced {
            let (claimed, produced) = (a.claimed, a.produced);
            drop(g);
            crate::fail(format!(
                "task {id} claimed {claimed} times but produced {produced} times \
                 (duplicated or phantom task)"
            ));
        }
    }

    /// Fails the schedule unless every produced task was claimed
    /// exactly once. Call after all claimants have joined.
    pub fn assert_balanced(&self) {
        let g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (id, a) in g.iter() {
            if a.claimed != a.produced {
                let msg = format!(
                    "task {id} produced {} times but claimed {} times (lost task)",
                    a.produced, a.claimed
                );
                drop(g);
                crate::fail(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_account_passes() {
        let a = TaskAccount::new();
        a.produced(1);
        a.produced(2);
        a.claimed(1);
        a.claimed(2);
        a.assert_balanced();
    }

    #[test]
    #[should_panic(expected = "claimed 2 times")]
    fn duplicate_claim_fails_off_model() {
        let a = TaskAccount::new();
        a.produced(1);
        a.claimed(1);
        a.claimed(1);
    }

    #[test]
    #[should_panic(expected = "lost task")]
    fn lost_task_fails_off_model() {
        let a = TaskAccount::new();
        a.produced(1);
        a.assert_balanced();
    }
}
