//! Schedule exploration: seeded random fuzzing, bounded exhaustive
//! enumeration, and exact replay of a failing schedule.
//!
//! Both modes drive [`crate::sched::run_schedule`] with a [`Source`]:
//!
//! * **Random** — each schedule is a pure function of one `u64` seed
//!   derived from the base seed; a failure prints the schedule's own
//!   seed, and [`Explorer::replay_seed`] re-runs exactly that
//!   interleaving.
//! * **Exhaustive** — depth-first enumeration of the schedule tree
//!   (DPOR-lite: no partial-order reduction, but branching is bounded
//!   by `branch_depth` and a schedule cap, which is tractable for the
//!   ≤ 3-thread models this workspace checks). Every run records
//!   `(chosen, alternatives)` at each branching point; backtracking
//!   bumps the deepest choice with an unexplored alternative. A failure
//!   prints the choice list, replayable with
//!   [`Explorer::replay_choices`].

use crate::rng::{schedule_seed, SplitMix64};
use crate::sched::{run_schedule, Outcome, Source};
use std::sync::Arc;

/// How a failing schedule is identified and replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// Random-mode schedule: replay with [`Explorer::replay_seed`].
    Seed(u64),
    /// Exhaustive-mode schedule: the branch-choice prefix, replay with
    /// [`Explorer::replay_choices`].
    Choices(Vec<u32>),
}

impl std::fmt::Display for ScheduleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleSpec::Seed(s) => write!(
                f,
                "seed {s:#018x} — replay with plcheck::Explorer::replay_seed({s:#x})"
            ),
            ScheduleSpec::Choices(c) => write!(
                f,
                "choices {c:?} — replay with plcheck::Explorer::replay_choices(vec!{c:?})"
            ),
        }
    }
}

/// A schedule on which the model failed: an assertion/panic, a
/// [`crate::fail`], a deadlock, or the livelock step bound.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Identity of the failing schedule (printed seed or choice list).
    pub spec: ScheduleSpec,
    /// What went wrong.
    pub message: String,
    /// The interleaving, one line per scheduling step (tail-truncated).
    pub trace: String,
    /// Scheduling steps executed before the failure surfaced.
    pub steps: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plcheck failure on {}", self.spec)?;
        writeln!(
            f,
            "{} (after {} scheduling steps)",
            self.message, self.steps
        )?;
        writeln!(f, "interleaving:")?;
        write!(f, "{}", self.trace)
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// `true` when exhaustive enumeration stopped at the schedule cap
    /// before covering the whole (bounded) tree.
    pub truncated: bool,
    /// The first failing schedule, if any (exploration stops there).
    pub failure: Option<Failure>,
}

impl Report {
    /// `true` when every executed schedule passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the full failure report (seed/choices + trace) when
    /// a schedule failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("{f}");
        }
    }

    /// The failure, for tests that *expect* the checker to catch a bug.
    pub fn expect_failure(&self, what: &str) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "checker missed the {what} ({} schedules ran clean)",
                self.schedules
            )
        })
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.failure {
            Some(fail) => write!(f, "{fail}"),
            None => write!(
                f,
                "plcheck: {} schedules passed{}",
                self.schedules,
                if self.truncated {
                    " (exploration truncated at the schedule cap)"
                } else {
                    ""
                }
            ),
        }
    }
}

enum Mode {
    Exhaustive { max_schedules: usize },
    Random { schedules: usize, base_seed: u64 },
    ReplaySeed(u64),
    ReplayChoices(Vec<u32>),
}

/// Configures and runs a schedule exploration over a model.
///
/// A *model* is a closure re-run once per schedule; it may spawn more
/// model threads with [`crate::spawn`] and must be deterministic apart
/// from scheduling (no wall-clock reads, no OS randomness).
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let hits = Arc::new(AtomicUsize::new(0));
/// let h = Arc::clone(&hits);
/// let report = plcheck::Explorer::exhaustive(100).run(move || {
///     let h = Arc::clone(&h);
///     let t = plcheck::spawn(move || {
///         h.fetch_add(1, Ordering::SeqCst);
///     });
///     plcheck::yield_now();
///     t.join();
/// });
/// report.assert_ok();
/// assert!(hits.load(Ordering::SeqCst) >= 1);
/// ```
pub struct Explorer {
    mode: Mode,
    max_steps: usize,
    branch_depth: usize,
}

impl Explorer {
    /// Bounded exhaustive enumeration of the schedule tree, stopping at
    /// `max_schedules` schedules. Intended for models of ≤ 3 threads.
    pub fn exhaustive(max_schedules: usize) -> Self {
        Explorer {
            mode: Mode::Exhaustive { max_schedules },
            max_steps: 20_000,
            branch_depth: 400,
        }
    }

    /// Seeded random-schedule fuzzing: `schedules` runs whose seeds all
    /// derive from `base_seed`. Intended for models too large to
    /// enumerate.
    pub fn random(schedules: usize, base_seed: u64) -> Self {
        Explorer {
            mode: Mode::Random {
                schedules,
                base_seed,
            },
            max_steps: 20_000,
            branch_depth: 400,
        }
    }

    /// Replays exactly the random schedule identified by a printed
    /// `seed` (deterministic: same seed, same interleaving).
    pub fn replay_seed(seed: u64) -> Self {
        Explorer {
            mode: Mode::ReplaySeed(seed),
            max_steps: 20_000,
            branch_depth: 400,
        }
    }

    /// Replays exactly the exhaustive-mode schedule identified by a
    /// printed branch-choice list.
    pub fn replay_choices(choices: Vec<u32>) -> Self {
        Explorer {
            mode: Mode::ReplayChoices(choices),
            max_steps: 20_000,
            branch_depth: 400,
        }
    }

    /// Overrides the per-schedule step bound (livelock detector).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Overrides how many branching points may deviate from the
    /// first-alternative schedule in exhaustive mode (the depth bound).
    pub fn with_branch_depth(mut self, branch_depth: usize) -> Self {
        self.branch_depth = branch_depth;
        self
    }

    /// Runs the exploration, stopping at the first failing schedule.
    pub fn run<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        match &self.mode {
            Mode::Random {
                schedules,
                base_seed,
            } => {
                for i in 0..*schedules {
                    let seed = schedule_seed(*base_seed, i as u64);
                    let outcome = run_schedule(
                        Source::Random(SplitMix64::new(seed)),
                        self.max_steps,
                        Arc::clone(&body),
                    );
                    if let Some(f) = failure_of(outcome, ScheduleSpec::Seed(seed)) {
                        return Report {
                            schedules: i + 1,
                            truncated: false,
                            failure: Some(f),
                        };
                    }
                }
                Report {
                    schedules: *schedules,
                    truncated: false,
                    failure: None,
                }
            }
            Mode::ReplaySeed(seed) => {
                let outcome =
                    run_schedule(Source::Random(SplitMix64::new(*seed)), self.max_steps, body);
                Report {
                    schedules: 1,
                    truncated: false,
                    failure: failure_of(outcome, ScheduleSpec::Seed(*seed)),
                }
            }
            Mode::ReplayChoices(choices) => {
                let outcome = run_schedule(
                    Source::Scripted {
                        prefix: choices.clone(),
                        pos: 0,
                    },
                    self.max_steps,
                    body,
                );
                Report {
                    schedules: 1,
                    truncated: false,
                    failure: failure_of(outcome, ScheduleSpec::Choices(choices.clone())),
                }
            }
            Mode::Exhaustive { max_schedules } => {
                let mut prefix: Vec<u32> = Vec::new();
                let mut schedules = 0usize;
                loop {
                    let outcome = run_schedule(
                        Source::Scripted {
                            prefix: prefix.clone(),
                            pos: 0,
                        },
                        self.max_steps,
                        Arc::clone(&body),
                    );
                    schedules += 1;
                    let decisions = outcome.decisions.clone();
                    if let Some(f) = failure_of(
                        outcome,
                        ScheduleSpec::Choices(decisions.iter().map(|(c, _)| *c).collect()),
                    ) {
                        return Report {
                            schedules,
                            truncated: false,
                            failure: Some(f),
                        };
                    }
                    if schedules >= *max_schedules {
                        return Report {
                            schedules,
                            truncated: true,
                            failure: None,
                        };
                    }
                    // Backtrack: bump the deepest branch point (within
                    // the depth bound) that still has an unexplored
                    // alternative.
                    let limit = decisions.len().min(self.branch_depth);
                    let mut advanced = false;
                    for i in (0..limit).rev() {
                        let (chosen, alts) = decisions[i];
                        if chosen + 1 < alts {
                            prefix = decisions[..i].iter().map(|(c, _)| *c).collect();
                            prefix.push(chosen + 1);
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        return Report {
                            schedules,
                            truncated: false,
                            failure: None,
                        };
                    }
                }
            }
        }
    }
}

fn failure_of(outcome: Outcome, spec: ScheduleSpec) -> Option<Failure> {
    outcome.failure.map(|message| Failure {
        spec,
        message,
        trace: outcome.trace,
        steps: outcome.steps,
    })
}
