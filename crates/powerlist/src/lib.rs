//! # PowerList and PList data structures
//!
//! This crate implements the recursive data structures underlying the paper
//! *"Enhancing Java Streams API with PowerList Computation"*:
//!
//! * [`PowerList`] — a non-empty linear structure whose length is always a
//!   power of two, with the two characteristic constructors of Misra's
//!   PowerList algebra:
//!   * **tie** (written `p | q` in the theory): the elements of `p`
//!     followed by the elements of `q`;
//!   * **zip** (written `p ♮ q`): the elements of `p` and `q` taken
//!     alternately, starting with `p`.
//! * [`PowerView`] — a *no-copy* descriptor `(storage, start, length,
//!   increment)` over shared storage. The JPLF framework avoids copying by
//!   only updating this "data structure information" when deconstructing;
//!   the view type reproduces that design.
//! * [`PowerArray`] — a growable container with `tie_all` / `zip_all`
//!   mutable combiners. This is the accumulation container used by the
//!   streams adaptation (the paper's Figure 2 class): it starts empty while
//!   a collect is in flight, and is promoted to a [`PowerList`] once the
//!   power-of-two invariant holds again.
//! * [`PList`] — Kornerup's generalisation to arbitrary lengths and *n*-way
//!   `tie` / `zip` operators, enabling multi-way divide-and-conquer.
//!
//! The algebra's laws (e.g. `unzip ∘ zip = id`, `untie ∘ tie = id`,
//! `inv ∘ inv = id`, the tie/zip exchange law) are enforced by an extensive
//! property-test suite in `tests/`.
//!
//! ## Quick start
//!
//! ```
//! use powerlist::PowerList;
//!
//! let p = PowerList::from_vec(vec![0, 1, 2, 3]).unwrap();
//! let q = PowerList::from_vec(vec![4, 5, 6, 7]).unwrap();
//!
//! // The two constructors:
//! assert_eq!(PowerList::tie(p.clone(), q.clone()).as_slice(),
//!            &[0, 1, 2, 3, 4, 5, 6, 7]);
//! assert_eq!(PowerList::zip(p.clone(), q.clone()).as_slice(),
//!            &[0, 4, 1, 5, 2, 6, 3, 7]);
//!
//! // ... and their inverses:
//! let (l, r) = PowerList::zip(p.clone(), q.clone()).unzip().unwrap();
//! assert_eq!((l, r), (p, q));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod iter;
pub mod ops;
pub mod perm;
pub mod plist;
pub mod powerarray;
pub mod powerlist;
pub mod storage;
pub mod view;

pub use error::{Error, Result};
pub use plist::PList;
pub use powerarray::PowerArray;
pub use powerlist::{tabulate, PowerList};
pub use storage::Storage;
pub use view::PowerView;

/// Returns `true` when `n` is a power of two (and non-zero).
///
/// This is the central shape invariant of the PowerList theory: every
/// PowerList has a length of exactly `2^k` for some `k ≥ 0`.
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Fallible base-2 logarithm of a power of two: the *depth* of the
/// divide-and-conquer tree of a PowerList of length `n`, or
/// [`Error::NotPowerOfTwo`] when `n` has no such depth.
///
/// This is the checked entry point for untrusted lengths; the panicking
/// [`log2_exact`] remains for lengths already validated by construction.
#[inline]
pub fn try_log2_exact(n: usize) -> Result<u32> {
    if is_power_of_two(n) {
        Ok(n.trailing_zeros())
    } else {
        Err(Error::NotPowerOfTwo(n))
    }
}

/// Base-2 logarithm of a power of two.
///
/// Returns the *depth* of the divide-and-conquer tree of a PowerList of
/// length `n` — the number of deconstruction steps to reach singletons.
///
/// # Panics
///
/// Panics if `n` is not a power of two; use [`try_log2_exact`] (or
/// [`is_power_of_two`]) when the input is untrusted.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    match try_log2_exact(n) {
        Ok(k) => k,
        Err(_) => panic!("log2_exact: {n} is not a power of two"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_predicate() {
        assert!(!is_power_of_two(0));
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(!is_power_of_two(3));
        assert!(is_power_of_two(4));
        assert!(!is_power_of_two(6));
        assert!(is_power_of_two(1 << 20));
        assert!(!is_power_of_two((1 << 20) + 1));
        assert!(is_power_of_two(usize::MAX / 2 + 1));
    }

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(1024), 10);
        assert_eq!(log2_exact(1 << 26), 26);
    }

    #[test]
    fn try_log2_routes_shape_errors() {
        assert_eq!(try_log2_exact(1), Ok(0));
        assert_eq!(try_log2_exact(64), Ok(6));
        assert_eq!(try_log2_exact(0), Err(Error::NotPowerOfTwo(0)));
        assert_eq!(try_log2_exact(12), Err(Error::NotPowerOfTwo(12)));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_powers() {
        log2_exact(12);
    }
}
