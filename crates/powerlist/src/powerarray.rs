//! The growable accumulation container of the streams adaptation.
//!
//! The paper's Figure 2 introduces a `PowerList` class extending
//! `ArrayList` with `tieAll` / `zipAll` methods, used as the **mutable
//! result container** of `collect`: the *supplier* creates fresh empty
//! instances, the *accumulator* appends leaf results, and the *combiner*
//! merges two partial containers with `tieAll` (concatenation) or `zipAll`
//! (interleaving). To keep the strict power-of-two invariant on the theory
//! type, this Rust port separates the roles: [`crate::PowerList`] is the
//! immutable algebra object, and [`PowerArray`] is the growable collect
//! container, promoted back to a `PowerList` with
//! [`PowerArray::into_powerlist`] once a collect completes.

use crate::error::{Error, Result};
use crate::is_power_of_two;
use crate::powerlist::PowerList;
use std::fmt;

/// Growable container with the `tie_all` / `zip_all` combiners of the
/// paper's streams adaptation.
///
/// Unlike [`PowerList`], a `PowerArray` may be empty or of non-power-of-two
/// length *while a collect is in flight*; shape is re-validated on
/// promotion.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct PowerArray<T> {
    elems: Vec<T>,
}

impl<T> PowerArray<T> {
    /// Creates an empty container — the role of the collect *supplier*.
    pub fn new() -> Self {
        PowerArray { elems: Vec::new() }
    }

    /// Creates an empty container with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        PowerArray {
            elems: Vec::with_capacity(cap),
        }
    }

    /// Appends one element — the role of the collect *accumulator*.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.elems.push(value);
    }

    /// **tie** combiner: appends all elements of `other` after the
    /// elements of `self` (the paper's `tieAll`).
    ///
    /// Used when the stream was decomposed with a `TieSpliterator`: tie
    /// deconstruction is undone by plain concatenation.
    pub fn tie_all(&mut self, other: Self) {
        let mut other = other;
        self.elems.append(&mut other.elems);
    }

    /// **zip** combiner: interleaves the elements of `self` and `other`,
    /// starting with `self` (the paper's `zipAll`).
    ///
    /// Used when the stream was decomposed with a `ZipSpliterator`: "a
    /// source split using a ZipSpliterator could not be recreated by using
    /// simple concatenation" (paper, Section IV.A). Requires the two
    /// partial containers to have equal lengths, which balanced power-of-
    /// two splitting guarantees.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ; use [`PowerArray::try_zip_all`] for
    /// the fallible variant.
    pub fn zip_all(&mut self, other: Self) {
        self.try_zip_all(other)
            .expect("zip_all requires equally sized partial results")
    }

    /// Fallible [`PowerArray::zip_all`].
    pub fn try_zip_all(&mut self, other: Self) -> Result<()> {
        if self.elems.len() != other.elems.len() {
            return Err(Error::LengthMismatch {
                left: self.elems.len(),
                right: other.elems.len(),
            });
        }
        let mut out = Vec::with_capacity(self.elems.len() * 2);
        for (a, b) in self.elems.drain(..).zip(other.elems) {
            out.push(a);
            out.push(b);
        }
        self.elems = out;
        Ok(())
    }

    /// Current number of accumulated elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// `true` when no elements have been accumulated yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Borrow the accumulated elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }

    /// Promotes the container to a [`PowerList`], re-validating the
    /// power-of-two shape invariant.
    pub fn into_powerlist(self) -> Result<PowerList<T>> {
        PowerList::from_vec(self.elems)
    }

    /// Consumes the container and returns the raw vector (no shape check).
    pub fn into_vec(self) -> Vec<T> {
        self.elems
    }

    /// `true` when the current length satisfies the PowerList invariant.
    pub fn is_power2(&self) -> bool {
        is_power_of_two(self.elems.len())
    }
}

impl<T> From<Vec<T>> for PowerArray<T> {
    fn from(v: Vec<T>) -> Self {
        PowerArray { elems: v }
    }
}

impl<T> Extend<T> for PowerArray<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.elems.extend(iter);
    }
}

impl<T> FromIterator<T> for PowerArray<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PowerArray {
            elems: iter.into_iter().collect(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PowerArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PowerArray(len={}) ", self.len())?;
        f.debug_list().entries(self.elems.iter().take(8)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let a: PowerArray<i32> = PowerArray::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(!a.is_power2()); // 0 is not a valid PowerList length
    }

    #[test]
    fn accumulates_elements() {
        let mut a = PowerArray::new();
        a.push(1);
        a.push(2);
        assert_eq!(a.as_slice(), &[1, 2]);
        assert!(a.is_power2());
    }

    #[test]
    fn tie_all_concatenates() {
        let mut a = PowerArray::from(vec![1, 2]);
        a.tie_all(PowerArray::from(vec![3, 4]));
        assert_eq!(a.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn zip_all_interleaves() {
        let mut a = PowerArray::from(vec![1, 2]);
        a.zip_all(PowerArray::from(vec![3, 4]));
        assert_eq!(a.as_slice(), &[1, 3, 2, 4]);
    }

    #[test]
    fn zip_all_rejects_unequal() {
        let mut a = PowerArray::from(vec![1]);
        let err = a.try_zip_all(PowerArray::from(vec![2, 3])).unwrap_err();
        assert_eq!(err, Error::LengthMismatch { left: 1, right: 2 });
    }

    #[test]
    fn combiner_agrees_with_powerlist_constructors() {
        // The combiner on partial containers must compute the same list as
        // the algebra's constructor — this is the collect soundness
        // condition ("combiner compatible with accumulator").
        let p = PowerList::from_vec(vec![5, 6, 7, 8]).unwrap();
        let q = PowerList::from_vec(vec![1, 2, 3, 4]).unwrap();

        let mut at = PowerArray::from(p.clone().into_vec());
        at.tie_all(PowerArray::from(q.clone().into_vec()));
        assert_eq!(
            at.into_powerlist().unwrap(),
            PowerList::tie(p.clone(), q.clone())
        );

        let mut az = PowerArray::from(p.clone().into_vec());
        az.zip_all(PowerArray::from(q.clone().into_vec()));
        assert_eq!(az.into_powerlist().unwrap(), PowerList::zip(p, q));
    }

    #[test]
    fn promotion_validates_shape() {
        let a = PowerArray::from(vec![1, 2, 3]);
        assert_eq!(a.into_powerlist().unwrap_err(), Error::NotPowerOfTwo(3));
        let b: PowerArray<i32> = PowerArray::new();
        assert_eq!(b.into_powerlist().unwrap_err(), Error::Empty);
    }

    #[test]
    fn extend_and_collect() {
        let mut a = PowerArray::new();
        a.extend([1, 2, 3, 4]);
        assert_eq!(a.len(), 4);
        let b: PowerArray<i32> = (0..8).collect();
        assert_eq!(b.len(), 8);
        assert!(b.is_power2());
    }
}
