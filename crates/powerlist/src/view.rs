//! No-copy PowerList views: `(storage, start, length, increment)`.
//!
//! A [`PowerView`] is the "data structure information" of the JPLF design
//! (paper, Section V): deconstruction with `tie` or `zip` produces two new
//! views over the *same* storage in O(1), by arithmetic on the descriptor
//! alone:
//!
//! * `untie`  — halves the length; the right half starts `len/2 * incr`
//!   elements later, the increment is unchanged;
//! * `unzip`  — halves the length; the odd view starts one `incr` later,
//!   and both increments double.
//!
//! This is exactly the `(list, start, end, incr)` state that the paper's
//! `ZipSpliterator` carries (Section IV.A), so the streams crate builds its
//! spliterators directly on top of this type.

use crate::error::{Error, Result};
use crate::iter::ViewIter;
use crate::powerlist::PowerList;
use crate::storage::Storage;
use crate::{is_power_of_two, log2_exact};
use std::fmt;

/// A power-of-two-length window into shared [`Storage`], with a stride.
///
/// Logical index `i` of the view maps to physical index
/// `start + i * incr` of the storage. All deconstruction operators are
/// O(1) and allocation-free.
pub struct PowerView<T> {
    storage: Storage<T>,
    start: usize,
    len: usize,
    incr: usize,
}

impl<T> Clone for PowerView<T> {
    fn clone(&self) -> Self {
        PowerView {
            storage: self.storage.clone(),
            start: self.start,
            len: self.len,
            incr: self.incr,
        }
    }
}

impl<T> PowerView<T> {
    /// Builds a view covering an entire storage buffer.
    ///
    /// Fails with [`Error::Empty`] / [`Error::NotPowerOfTwo`] when the
    /// buffer violates the PowerList shape invariant.
    pub fn full(storage: Storage<T>) -> Result<Self> {
        let len = storage.len();
        if len == 0 {
            return Err(Error::Empty);
        }
        if !is_power_of_two(len) {
            return Err(Error::NotPowerOfTwo(len));
        }
        Ok(PowerView {
            storage,
            start: 0,
            len,
            incr: 1,
        })
    }

    /// Builds a view from raw descriptor parts.
    ///
    /// Validates the shape invariant and that every logical index stays in
    /// bounds of the storage.
    pub fn from_parts(storage: Storage<T>, start: usize, len: usize, incr: usize) -> Result<Self> {
        if len == 0 {
            return Err(Error::Empty);
        }
        if !is_power_of_two(len) {
            return Err(Error::NotPowerOfTwo(len));
        }
        let last = start + (len - 1) * incr;
        assert!(
            last < storage.len(),
            "view descriptor out of bounds: last physical index {last} >= storage length {}",
            storage.len()
        );
        Ok(PowerView {
            storage,
            start,
            len,
            incr,
        })
    }

    /// Number of logical elements in the view (always a power of two).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Views are never empty, by construction; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when the view holds exactly one element — the base case of
    /// every PowerList recursion.
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.len == 1
    }

    /// Depth of the divide-and-conquer tree rooted at this view.
    #[inline]
    pub fn depth(&self) -> u32 {
        log2_exact(self.len)
    }

    /// First physical index of the view.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Stride between consecutive logical elements.
    #[inline]
    pub fn incr(&self) -> usize {
        self.incr
    }

    /// Borrow the logical element at index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        assert!(
            i < self.len,
            "index {i} out of bounds for view of length {}",
            self.len
        );
        self.storage.get(self.start + i * self.incr)
    }

    /// The single element of a singleton view.
    ///
    /// # Panics
    ///
    /// Panics when the view is not a singleton.
    #[inline]
    pub fn singleton_value(&self) -> &T {
        assert!(
            self.is_singleton(),
            "singleton_value on a view of length {}",
            self.len
        );
        self.storage.get(self.start)
    }

    /// Deconstructs with **tie**: `(p, q)` such that `self = p | q`.
    ///
    /// O(1): only the descriptor is rewritten; the storage is shared.
    pub fn untie(&self) -> Result<(Self, Self)> {
        if self.is_singleton() {
            return Err(Error::SingletonSplit);
        }
        let half = self.len / 2;
        let left = PowerView {
            storage: self.storage.clone(),
            start: self.start,
            len: half,
            incr: self.incr,
        };
        let right = PowerView {
            storage: self.storage.clone(),
            start: self.start + half * self.incr,
            len: half,
            incr: self.incr,
        };
        Ok((left, right))
    }

    /// Deconstructs with **zip**: `(p, q)` such that `self = p ♮ q`
    /// (`p` holds the even logical positions, `q` the odd ones).
    ///
    /// O(1): the start of `q` advances by one stride and both strides
    /// double.
    pub fn unzip(&self) -> Result<(Self, Self)> {
        if self.is_singleton() {
            return Err(Error::SingletonSplit);
        }
        let half = self.len / 2;
        let even = PowerView {
            storage: self.storage.clone(),
            start: self.start,
            len: half,
            incr: self.incr * 2,
        };
        let odd = PowerView {
            storage: self.storage.clone(),
            start: self.start + self.incr,
            len: half,
            incr: self.incr * 2,
        };
        Ok((even, odd))
    }

    /// Iterate the logical elements in order.
    pub fn iter(&self) -> ViewIter<'_, T> {
        ViewIter::new(self)
    }

    /// Diagnostic used by tests: number of live handles on the storage.
    pub fn storage_handles(&self) -> usize {
        self.storage.handle_count()
    }

    /// A handle to the shared storage backing this view (O(1) clone).
    ///
    /// Exposed so that external splittable iterators — the stream
    /// spliterators — can be built over the same no-copy descriptor
    /// scheme.
    pub fn storage(&self) -> Storage<T> {
        self.storage.clone()
    }
}

impl<T: Clone> PowerView<T> {
    /// Materialises the view into an owned [`PowerList`] (copies the
    /// `len()` logical elements).
    pub fn to_powerlist(&self) -> PowerList<T> {
        let v: Vec<T> = self.iter().cloned().collect();
        PowerList::from_vec(v).expect("view length invariant guarantees a power of two")
    }

    /// Copies the logical elements into a plain vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

impl<T: fmt::Debug> fmt::Debug for PowerView<T> {
    // Shows at most 8 elements so that debug output of huge views stays
    // readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PowerView {{ start: {}, len: {}, incr: {}, head: [",
            self.start, self.len, self.incr
        )?;
        for i in 0..self.len.min(8) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", self.get(i))?;
        }
        if self.len > 8 {
            write!(f, ", ...")?;
        }
        write!(f, "] }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(v: Vec<i32>) -> PowerView<i32> {
        PowerView::full(Storage::new(v)).unwrap()
    }

    #[test]
    fn full_view_reads_in_order() {
        let v = view_of(vec![5, 6, 7, 8]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.depth(), 2);
        assert_eq!(*v.get(0), 5);
        assert_eq!(*v.get(3), 8);
        assert_eq!(v.to_vec(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn full_rejects_bad_shapes() {
        assert_eq!(
            PowerView::full(Storage::new(Vec::<i32>::new())).unwrap_err(),
            Error::Empty
        );
        assert_eq!(
            PowerView::full(Storage::new(vec![1, 2, 3])).unwrap_err(),
            Error::NotPowerOfTwo(3)
        );
    }

    #[test]
    fn untie_splits_halves() {
        let v = view_of(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let (l, r) = v.untie().unwrap();
        assert_eq!(l.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(r.to_vec(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn unzip_splits_parity() {
        let v = view_of(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let (e, o) = v.unzip().unwrap();
        assert_eq!(e.to_vec(), vec![0, 2, 4, 6]);
        assert_eq!(o.to_vec(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn nested_mixed_deconstruction() {
        // unzip then untie on the even part: strides compose.
        let v = view_of(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let (e, _) = v.unzip().unwrap();
        let (el, er) = e.untie().unwrap();
        assert_eq!(el.to_vec(), vec![0, 2]);
        assert_eq!(er.to_vec(), vec![4, 6]);
        let (ee, eo) = e.unzip().unwrap();
        assert_eq!(ee.to_vec(), vec![0, 4]);
        assert_eq!(eo.to_vec(), vec![2, 6]);
    }

    #[test]
    fn deconstruction_never_copies() {
        let v = view_of((0..1024).collect());
        let handles_before = v.storage_handles();
        let (a, b) = v.unzip().unwrap();
        let (c, d) = a.untie().unwrap();
        // Five live views, one storage allocation.
        assert_eq!(v.storage_handles(), handles_before + 4);
        assert_eq!(*b.get(0), 1);
        assert_eq!(*c.get(0), 0);
        assert_eq!(*d.get(0), 512);
    }

    #[test]
    fn singleton_split_is_error() {
        let v = view_of(vec![42]);
        assert!(v.is_singleton());
        assert_eq!(*v.singleton_value(), 42);
        assert_eq!(v.untie().unwrap_err(), Error::SingletonSplit);
        assert_eq!(v.unzip().unwrap_err(), Error::SingletonSplit);
    }

    #[test]
    fn from_parts_checks_bounds() {
        let s = Storage::new(vec![0; 8]);
        assert!(PowerView::from_parts(s.clone(), 0, 4, 2).is_ok());
        assert!(PowerView::from_parts(s.clone(), 1, 4, 2).is_ok());
        assert_eq!(
            PowerView::from_parts(s.clone(), 0, 6, 1).unwrap_err(),
            Error::NotPowerOfTwo(6)
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_parts_rejects_overrun() {
        let s = Storage::new(vec![0; 8]);
        let _ = PowerView::from_parts(s, 2, 4, 2); // last = 2 + 3*2 = 8
    }

    #[test]
    fn to_powerlist_roundtrip() {
        let v = view_of(vec![9, 8, 7, 6]);
        let (_, o) = v.unzip().unwrap();
        let p = o.to_powerlist();
        assert_eq!(p.as_slice(), &[8, 6]);
    }

    #[test]
    fn debug_formatting_truncates() {
        let v = view_of((0..16).collect());
        let s = format!("{v:?}");
        assert!(s.contains("len: 16"));
        assert!(s.contains("..."));
    }
}
