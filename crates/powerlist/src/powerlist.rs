//! The owned [`PowerList`] type: Misra's PowerList algebra.
//!
//! A PowerList is a non-empty list of *similar* elements whose length is a
//! power of two. Its algebra has a singleton constructor `[a]` plus two
//! binary constructors on similar lists:
//!
//! * `tie`: `p | q` — concatenation,
//! * `zip`: `p ♮ q` — perfect interleaving,
//!
//! and the matching deconstructors [`PowerList::untie`] /
//! [`PowerList::unzip`]. Every PowerList of length ≥ 2 has a *unique*
//! decomposition under each operator, which is what makes structural
//! induction (and hence divide-and-conquer program derivation) sound.

use crate::error::{Error, Result};
use crate::storage::Storage;
use crate::view::PowerView;
use crate::{is_power_of_two, log2_exact};
use std::fmt;
use std::ops::Index;

/// An owned, non-empty list whose length is always a power of two.
///
/// The element buffer is contiguous (`Vec<T>`), so `tie` is a plain
/// append and `zip` an interleave; the no-copy deconstruction story lives
/// in [`PowerView`], obtained via [`PowerList::view`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PowerList<T> {
    elems: Vec<T>,
}

impl<T> PowerList<T> {
    /// The singleton constructor `[a]` — the base case of the algebra.
    pub fn singleton(value: T) -> Self {
        PowerList { elems: vec![value] }
    }

    /// Validates and wraps a vector. The length must be a non-zero power
    /// of two.
    pub fn from_vec(elems: Vec<T>) -> Result<Self> {
        if elems.is_empty() {
            return Err(Error::Empty);
        }
        if !is_power_of_two(elems.len()) {
            return Err(Error::NotPowerOfTwo(elems.len()));
        }
        Ok(PowerList { elems })
    }

    /// **tie** constructor: elements of `p` followed by elements of `q`.
    ///
    /// # Panics
    ///
    /// Panics when the operands are not similar (different lengths). Use
    /// [`PowerList::try_tie`] for a fallible variant.
    pub fn tie(p: Self, q: Self) -> Self {
        Self::try_tie(p, q).expect("tie operands must be similar")
    }

    /// Fallible [`PowerList::tie`].
    pub fn try_tie(mut p: Self, mut q: Self) -> Result<Self> {
        if p.len() != q.len() {
            return Err(Error::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        p.elems.append(&mut q.elems);
        Ok(p)
    }

    /// **zip** constructor: elements of `p` and `q` taken alternately,
    /// starting with `p`.
    ///
    /// # Panics
    ///
    /// Panics when the operands are not similar. Use
    /// [`PowerList::try_zip`] for a fallible variant.
    pub fn zip(p: Self, q: Self) -> Self {
        Self::try_zip(p, q).expect("zip operands must be similar")
    }

    /// Fallible [`PowerList::zip`].
    pub fn try_zip(p: Self, q: Self) -> Result<Self> {
        if p.len() != q.len() {
            return Err(Error::LengthMismatch {
                left: p.len(),
                right: q.len(),
            });
        }
        let mut out = Vec::with_capacity(p.len() * 2);
        for (a, b) in p.elems.into_iter().zip(q.elems) {
            out.push(a);
            out.push(b);
        }
        Ok(PowerList { elems: out })
    }

    /// **tie** deconstructor: the unique `(p, q)` with `self = p | q`.
    ///
    /// Fails with [`Error::SingletonSplit`] on singletons.
    pub fn untie(mut self) -> Result<(Self, Self)> {
        if self.len() == 1 {
            return Err(Error::SingletonSplit);
        }
        let right = self.elems.split_off(self.len() / 2);
        Ok((PowerList { elems: self.elems }, PowerList { elems: right }))
    }

    /// **zip** deconstructor: the unique `(p, q)` with `self = p ♮ q`.
    ///
    /// Fails with [`Error::SingletonSplit`] on singletons.
    pub fn unzip(self) -> Result<(Self, Self)> {
        if self.len() == 1 {
            return Err(Error::SingletonSplit);
        }
        let half = self.len() / 2;
        let mut even = Vec::with_capacity(half);
        let mut odd = Vec::with_capacity(half);
        for (i, x) in self.elems.into_iter().enumerate() {
            if i % 2 == 0 {
                even.push(x);
            } else {
                odd.push(x);
            }
        }
        Ok((PowerList { elems: even }, PowerList { elems: odd }))
    }

    /// Length of the list (always `2^k` for some `k ≥ 0`).
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// PowerLists are non-empty by definition; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `log2(len)` — the depth of the full divide-and-conquer tree.
    #[inline]
    pub fn depth(&self) -> u32 {
        log2_exact(self.len())
    }

    /// `true` when the list holds exactly one element.
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.len() == 1
    }

    /// Borrow the elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }

    /// Mutable access to the elements. The length cannot change through a
    /// slice, so the shape invariant is preserved.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.elems
    }

    /// Consumes the list and returns the raw element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.elems
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.elems.iter()
    }

    /// Moves the elements into shared [`Storage`] and returns a full
    /// no-copy [`PowerView`] over them.
    pub fn view(self) -> PowerView<T> {
        let storage = Storage::new(self.elems);
        PowerView::full(storage).expect("PowerList invariant guarantees a valid view")
    }
}

impl<T: Clone> PowerList<T> {
    /// A PowerList of `len` copies of `value`. `len` must be a non-zero
    /// power of two.
    pub fn repeat(value: T, len: usize) -> Result<Self> {
        if len == 0 {
            return Err(Error::Empty);
        }
        if !is_power_of_two(len) {
            return Err(Error::NotPowerOfTwo(len));
        }
        Ok(PowerList {
            elems: vec![value; len],
        })
    }
}

impl<T> Index<usize> for PowerList<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.elems[i]
    }
}

impl<T> IntoIterator for PowerList<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a PowerList<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for PowerList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PowerList(len={}) ", self.len())?;
        f.debug_list().entries(self.elems.iter().take(8)).finish()?;
        if self.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

/// Generates the PowerList `[f(0), f(1), ..., f(len-1)]`.
///
/// `len` must be a non-zero power of two. This is the `tabulate`
/// convenience used throughout the algorithm catalogue and the benchmark
/// workload generators.
pub fn tabulate<T>(len: usize, mut f: impl FnMut(usize) -> T) -> Result<PowerList<T>> {
    if len == 0 {
        return Err(Error::Empty);
    }
    if !is_power_of_two(len) {
        return Err(Error::NotPowerOfTwo(len));
    }
    Ok(PowerList {
        elems: (0..len).map(&mut f).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(v: Vec<i32>) -> PowerList<i32> {
        PowerList::from_vec(v).unwrap()
    }

    #[test]
    fn singleton_has_length_one() {
        let s = PowerList::singleton(7);
        assert_eq!(s.len(), 1);
        assert!(s.is_singleton());
        assert_eq!(s.depth(), 0);
        assert_eq!(s.as_slice(), &[7]);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(PowerList::from_vec(vec![1]).is_ok());
        assert!(PowerList::from_vec(vec![1, 2]).is_ok());
        assert_eq!(
            PowerList::from_vec(vec![1, 2, 3]).unwrap_err(),
            Error::NotPowerOfTwo(3)
        );
        assert_eq!(
            PowerList::from_vec(Vec::<i32>::new()).unwrap_err(),
            Error::Empty
        );
    }

    #[test]
    fn tie_concatenates() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![3, 4]);
        assert_eq!(PowerList::tie(p, q).as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn zip_interleaves() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![3, 4]);
        assert_eq!(PowerList::zip(p, q).as_slice(), &[1, 3, 2, 4]);
    }

    #[test]
    fn dissimilar_operands_rejected() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![3, 4, 5, 6]);
        assert_eq!(
            PowerList::try_tie(p.clone(), q.clone()).unwrap_err(),
            Error::LengthMismatch { left: 2, right: 4 }
        );
        assert_eq!(
            PowerList::try_zip(p, q).unwrap_err(),
            Error::LengthMismatch { left: 2, right: 4 }
        );
    }

    #[test]
    fn untie_inverts_tie() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![3, 4]);
        let (a, b) = PowerList::tie(p.clone(), q.clone()).untie().unwrap();
        assert_eq!((a, b), (p, q));
    }

    #[test]
    fn unzip_inverts_zip() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![3, 4]);
        let (a, b) = PowerList::zip(p.clone(), q.clone()).unzip().unwrap();
        assert_eq!((a, b), (p, q));
    }

    #[test]
    fn singleton_deconstruction_fails() {
        assert_eq!(
            PowerList::singleton(1).untie().unwrap_err(),
            Error::SingletonSplit
        );
        assert_eq!(
            PowerList::singleton(1).unzip().unwrap_err(),
            Error::SingletonSplit
        );
    }

    #[test]
    fn misra_example_tie_zip_differ() {
        // The canonical illustration: tie keeps blocks, zip interleaves.
        let p = pl(vec![0, 1, 2, 3]);
        let q = pl(vec![4, 5, 6, 7]);
        assert_eq!(
            PowerList::tie(p.clone(), q.clone()).as_slice(),
            &[0, 1, 2, 3, 4, 5, 6, 7]
        );
        assert_eq!(PowerList::zip(p, q).as_slice(), &[0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn tabulate_generates() {
        let t = tabulate(8, |i| i * i).unwrap();
        assert_eq!(t.as_slice(), &[0, 1, 4, 9, 16, 25, 36, 49]);
        assert_eq!(tabulate(3, |i| i).unwrap_err(), Error::NotPowerOfTwo(3));
        assert_eq!(tabulate(0, |i| i).unwrap_err(), Error::Empty);
    }

    #[test]
    fn repeat_fills() {
        let r = PowerList::repeat(9, 4).unwrap();
        assert_eq!(r.as_slice(), &[9, 9, 9, 9]);
        assert!(PowerList::repeat(9, 5).is_err());
    }

    #[test]
    fn view_roundtrip() {
        let p = pl(vec![1, 2, 3, 4]);
        let v = p.clone().view();
        assert_eq!(v.to_powerlist(), p);
    }

    #[test]
    fn indexing_and_iteration() {
        let p = pl(vec![10, 20, 30, 40]);
        assert_eq!(p[2], 30);
        assert_eq!(p.iter().sum::<i32>(), 100);
        assert_eq!((&p).into_iter().count(), 4);
        assert_eq!(p.into_iter().last(), Some(40));
    }

    #[test]
    fn mutation_through_slice() {
        let mut p = pl(vec![1, 2, 3, 4]);
        p.as_mut_slice()[0] = 99;
        assert_eq!(p.as_slice(), &[99, 2, 3, 4]);
    }
}
