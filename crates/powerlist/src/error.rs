//! Error types for PowerList construction and deconstruction.
//!
//! The PowerList algebra is only defined on lists whose length is a power
//! of two, and its binary constructors are only defined on *similar* lists
//! (same length, same element type). Rather than panicking, the public
//! constructors return a typed [`Error`] so that callers — in particular
//! the streams adaptation, which validates the `POWER2` characteristic
//! before running a collect — can surface shape violations to their own
//! users.

use std::fmt;

/// Convenient alias for results carrying a PowerList [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Shape violations of the PowerList / PList algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The length of the input is not a power of two.
    ///
    /// Carried value: the offending length. Raised by
    /// [`PowerList::from_vec`](crate::PowerList::from_vec) and by the
    /// `POWER2` characteristic check of the streams adaptation.
    NotPowerOfTwo(usize),
    /// An empty list was supplied where the theory requires at least a
    /// singleton (PowerLists are non-empty by definition).
    Empty,
    /// The two operands of `tie` / `zip` are not *similar*: their lengths
    /// differ.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An *n*-way PList operator was applied to a list whose length is not
    /// divisible by the arity.
    NotDivisible {
        /// Length of the list being deconstructed.
        len: usize,
        /// Requested arity.
        arity: usize,
    },
    /// An *n*-way PList constructor received parts of unequal lengths.
    RaggedParts {
        /// The distinct lengths observed (first two shown).
        first: usize,
        /// A length differing from `first`.
        other: usize,
    },
    /// An operator requiring arity ≥ 1 was invoked with arity 0.
    ZeroArity,
    /// A singleton was deconstructed; `tie` / `zip` deconstruction needs
    /// length ≥ 2.
    SingletonSplit,
    /// A `(start, end, incr)` spliterator descriptor supplied an
    /// increment of zero (must be ≥ 1).
    ZeroIncrement,
    /// A spliterator descriptor's inclusive `end` index lies outside its
    /// backing storage.
    DescriptorOutOfBounds {
        /// The offending inclusive end index.
        end: usize,
        /// Length of the backing storage.
        len: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotPowerOfTwo(n) => {
                write!(f, "length {n} is not a power of two (POWER2 violated)")
            }
            Error::Empty => write!(f, "PowerLists are non-empty; got an empty input"),
            Error::LengthMismatch { left, right } => write!(
                f,
                "tie/zip operands must be similar: left length {left} != right length {right}"
            ),
            Error::NotDivisible { len, arity } => {
                write!(f, "length {len} is not divisible by arity {arity}")
            }
            Error::RaggedParts { first, other } => write!(
                f,
                "n-way parts must have equal lengths: saw {first} and {other}"
            ),
            Error::ZeroArity => write!(f, "n-way operators require arity >= 1"),
            Error::SingletonSplit => {
                write!(f, "cannot deconstruct a singleton with tie/zip")
            }
            Error::ZeroIncrement => {
                write!(f, "spliterator descriptors require an increment >= 1")
            }
            Error::DescriptorOutOfBounds { end, len } => write!(
                f,
                "descriptor end {end} out of bounds for storage of length {len}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::NotPowerOfTwo(12).to_string().contains("12"));
        assert!(Error::NotPowerOfTwo(12).to_string().contains("POWER2"));
        assert!(Error::LengthMismatch { left: 4, right: 8 }
            .to_string()
            .contains("4"));
        assert!(Error::NotDivisible { len: 10, arity: 3 }
            .to_string()
            .contains("arity 3"));
        assert!(Error::RaggedParts { first: 2, other: 3 }
            .to_string()
            .contains("equal lengths"));
        assert!(Error::Empty.to_string().contains("non-empty"));
        assert!(Error::SingletonSplit.to_string().contains("singleton"));
        assert!(Error::ZeroArity.to_string().contains(">= 1"));
        assert!(Error::ZeroIncrement.to_string().contains("increment"));
        assert!(Error::DescriptorOutOfBounds { end: 9, len: 8 }
            .to_string()
            .contains("end 9"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NotPowerOfTwo(3), Error::NotPowerOfTwo(3));
        assert_ne!(Error::NotPowerOfTwo(3), Error::NotPowerOfTwo(5));
        assert_ne!(Error::Empty, Error::ZeroArity);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::Empty);
    }
}
