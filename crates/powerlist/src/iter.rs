//! Iterators over PowerList views.

use crate::view::PowerView;

/// Iterator over the logical elements of a [`PowerView`], in order.
///
/// Walks the storage with the view's stride; `DoubleEndedIterator` and
/// `ExactSizeIterator` are implemented so the iterator composes with the
/// full standard adapter set.
pub struct ViewIter<'a, T> {
    view: &'a PowerView<T>,
    front: usize,
    back: usize, // exclusive
}

impl<'a, T> ViewIter<'a, T> {
    pub(crate) fn new(view: &'a PowerView<T>) -> Self {
        ViewIter {
            view,
            front: 0,
            back: view.len(),
        }
    }
}

impl<'a, T> Iterator for ViewIter<'a, T> {
    type Item = &'a T;

    #[inline]
    fn next(&mut self) -> Option<&'a T> {
        if self.front == self.back {
            return None;
        }
        let item = self.view.get(self.front);
        self.front += 1;
        Some(item)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl<'a, T> DoubleEndedIterator for ViewIter<'a, T> {
    #[inline]
    fn next_back(&mut self) -> Option<&'a T> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(self.view.get(self.back))
    }
}

impl<'a, T> ExactSizeIterator for ViewIter<'a, T> {}

impl<'a, T> IntoIterator for &'a PowerView<T> {
    type Item = &'a T;
    type IntoIter = ViewIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use crate::storage::Storage;
    use crate::view::PowerView;

    fn view_of(v: Vec<i32>) -> PowerView<i32> {
        PowerView::full(Storage::new(v)).unwrap()
    }

    #[test]
    fn forward_iteration() {
        let v = view_of(vec![1, 2, 3, 4]);
        let collected: Vec<i32> = v.iter().copied().collect();
        assert_eq!(collected, vec![1, 2, 3, 4]);
    }

    #[test]
    fn strided_iteration_after_unzip() {
        let v = view_of(vec![0, 10, 20, 30, 40, 50, 60, 70]);
        let (even, odd) = v.unzip().unwrap();
        assert_eq!(
            even.iter().copied().collect::<Vec<_>>(),
            vec![0, 20, 40, 60]
        );
        assert_eq!(
            odd.iter().copied().collect::<Vec<_>>(),
            vec![10, 30, 50, 70]
        );
    }

    #[test]
    fn reverse_iteration() {
        let v = view_of(vec![1, 2, 3, 4]);
        let rev: Vec<i32> = v.iter().rev().copied().collect();
        assert_eq!(rev, vec![4, 3, 2, 1]);
    }

    #[test]
    fn meet_in_the_middle() {
        let v = view_of(vec![1, 2, 3, 4]);
        let mut it = v.iter();
        assert_eq!(it.next(), Some(&1));
        assert_eq!(it.next_back(), Some(&4));
        assert_eq!(it.next(), Some(&2));
        assert_eq!(it.next_back(), Some(&3));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn exact_size() {
        let v = view_of(vec![1, 2, 3, 4]);
        let mut it = v.iter();
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn into_iterator_for_ref() {
        let v = view_of(vec![7, 8]);
        let mut sum = 0;
        for x in &v {
            sum += *x;
        }
        assert_eq!(sum, 15);
    }
}
