//! Shared, immutable element storage backing no-copy views.
//!
//! The JPLF framework's key optimisation (paper, Section V) is that the
//! multithreaded executors never copy elements while descending: a split
//! only rewrites the *data structure information* — a reference to the
//! storage plus `(start, end, increment)`. [`Storage`] is that shared
//! reference: a cheaply-clonable, thread-safe handle to an immutable
//! element buffer.

use std::fmt;
use std::sync::Arc;

/// Reference-counted immutable element buffer.
///
/// Cloning a `Storage` clones the `Arc`, not the elements, so views
/// produced by deconstruction are O(1) regardless of list length. The
/// buffer is immutable once constructed; result-producing algorithms
/// allocate fresh storage for their output (mirroring the collect-based
/// streams path) or write through [`PowerArray`](crate::PowerArray)
/// accumulation.
pub struct Storage<T> {
    // `Arc<Vec<T>>` rather than `Arc<[T]>`: wrapping an existing vector
    // is then a single small allocation (the Arc header) instead of the
    // element-by-element move `Arc::<[T]>::from(Vec<T>)` performs, which
    // dominated collect setup for multi-megabyte lists. The extra
    // pointer hop is paid once per leaf, not per element, on the
    // borrowed-slice path.
    buf: Arc<Vec<T>>,
}

impl<T> Storage<T> {
    /// Wraps a vector of elements into shared storage — O(1), the vector
    /// buffer is adopted, not copied.
    pub fn new(elements: Vec<T>) -> Self {
        Storage {
            buf: Arc::new(elements),
        }
    }

    /// Number of elements in the underlying buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the whole buffer as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Element at physical index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        &self.buf[i]
    }

    /// Number of live handles to this buffer (diagnostic; used by tests to
    /// verify that deconstruction does not copy).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }
}

impl<T> Clone for Storage<T> {
    fn clone(&self) -> Self {
        Storage {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Storage")
            .field("len", &self.buf.len())
            .field("handles", &Arc::strong_count(&self.buf))
            .finish()
    }
}

impl<T> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Self {
        Storage::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_reads_elements() {
        let s = Storage::new(vec![10, 20, 30]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(*s.get(0), 10);
        assert_eq!(*s.get(2), 30);
        assert_eq!(s.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn clone_shares_not_copies() {
        let s = Storage::new(vec![1u64; 1024]);
        assert_eq!(s.handle_count(), 1);
        let t = s.clone();
        assert_eq!(s.handle_count(), 2);
        // Same allocation: the slices have the same address.
        assert_eq!(s.as_slice().as_ptr(), t.as_slice().as_ptr());
        drop(t);
        assert_eq!(s.handle_count(), 1);
    }

    #[test]
    fn empty_storage_is_representable() {
        // Storage itself allows emptiness; the PowerList invariant is
        // enforced one level up.
        let s: Storage<i32> = Storage::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let s = Storage::new(vec![1]);
        s.get(1);
    }
}
