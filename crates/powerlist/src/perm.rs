//! Structural permutations: `inv` (bit-reversal) and `rev`.
//!
//! `inv` is the paper's flagship example of a function that *needs both*
//! deconstruction operators (Eq. 2):
//!
//! ```text
//! inv([a])   = [a]
//! inv(p | q) = inv(p) ♮ inv(q)
//! ```
//!
//! It permutes the input so that the element at index `b` moves to the
//! position whose index is the bit-reversal of `b` (over `log2(len)`
//! bits). `inv` is its own inverse — a law the property suite checks — and
//! is the data reordering at the heart of iterative FFT implementations.
//!
//! Both a direct index-arithmetic implementation ([`inv_indexed`]) and the
//! structural recursion of Eq. 2 ([`inv_structural`]) are provided; tests
//! assert they agree, which validates the algebraic definition against the
//! conventional one.

use crate::powerlist::PowerList;
use crate::view::PowerView;

/// Reverses the low `bits` bits of `i`.
#[inline]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - bits)
}

/// `inv` by direct index arithmetic: element `b` lands at position
/// `bit_reverse(b)`.
pub fn inv_indexed<T: Clone>(p: &PowerList<T>) -> PowerList<T> {
    let bits = p.depth();
    let n = p.len();
    let mut out: Vec<Option<T>> = vec![None; n];
    for b in 0..n {
        out[bit_reverse(b, bits)] = Some(p[b].clone());
    }
    PowerList::from_vec(
        out.into_iter()
            .map(|x| x.expect("permutation is total"))
            .collect(),
    )
    .expect("permutation preserves length")
}

/// `inv` by the structural recursion of the paper's Eq. 2:
/// `inv(p | q) = inv(p) ♮ inv(q)`.
pub fn inv_structural<T: Clone>(p: &PowerList<T>) -> PowerList<T> {
    fn go<T: Clone>(v: &PowerView<T>) -> PowerList<T> {
        if v.is_singleton() {
            return PowerList::singleton(v.singleton_value().clone());
        }
        let (l, r) = v.untie().expect("non-singleton");
        PowerList::zip(go(&l), go(&r))
    }
    go(&p.clone().view())
}

/// The dual recursion `inv(p ♮ q) = inv(p) | inv(q)` — equal to
/// [`inv_structural`] by the algebra's exchange laws; implemented
/// separately so tests can confirm the duality.
pub fn inv_structural_dual<T: Clone>(p: &PowerList<T>) -> PowerList<T> {
    fn go<T: Clone>(v: &PowerView<T>) -> PowerList<T> {
        if v.is_singleton() {
            return PowerList::singleton(v.singleton_value().clone());
        }
        let (e, o) = v.unzip().expect("non-singleton");
        PowerList::tie(go(&e), go(&o))
    }
    go(&p.clone().view())
}

/// List reversal via structural recursion:
/// `rev(p | q) = rev(q) | rev(p)`.
pub fn rev<T: Clone>(p: &PowerList<T>) -> PowerList<T> {
    let mut v = p.clone().into_vec();
    v.reverse();
    PowerList::from_vec(v).expect("reverse preserves length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlist::tabulate;

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0, 3), 0);
        assert_eq!(bit_reverse(1, 3), 4); // 001 -> 100
        assert_eq!(bit_reverse(3, 3), 6); // 011 -> 110
        assert_eq!(bit_reverse(0, 0), 0);
        assert_eq!(bit_reverse(5, 4), 10); // 0101 -> 1010
    }

    #[test]
    fn inv_on_eight_elements() {
        let p = tabulate(8, |i| i).unwrap();
        // index bit-reversals over 3 bits: 0,4,2,6,1,5,3,7
        assert_eq!(inv_indexed(&p).as_slice(), &[0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn structural_matches_indexed() {
        for k in 0..7 {
            let p = tabulate(1 << k, |i| i as i64 * 3 - 5).unwrap();
            assert_eq!(inv_structural(&p), inv_indexed(&p), "length 2^{k}");
        }
    }

    #[test]
    fn dual_recursion_agrees() {
        for k in 0..7 {
            let p = tabulate(1 << k, |i| i as i64).unwrap();
            assert_eq!(inv_structural_dual(&p), inv_structural(&p), "length 2^{k}");
        }
    }

    #[test]
    fn inv_is_involution() {
        let p = tabulate(64, |i| i * 7 % 13).unwrap();
        assert_eq!(inv_indexed(&inv_indexed(&p)), p);
    }

    #[test]
    fn inv_singleton_is_identity() {
        let s = PowerList::singleton(99);
        assert_eq!(inv_indexed(&s), s);
        assert_eq!(inv_structural(&s), s);
    }

    #[test]
    fn rev_reverses() {
        let p = tabulate(8, |i| i).unwrap();
        assert_eq!(rev(&p).as_slice(), &[7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(rev(&rev(&p)), p);
    }
}
