//! Extended element-wise operators on PowerLists.
//!
//! The FFT definition (paper, Eq. 3) uses `+` and `×` as *extensions* of
//! the scalar operators: two similar PowerLists are combined by applying
//! the scalar operator position-wise. This module provides the generic
//! [`zip_with`] combinator plus the named extensions the paper uses
//! (`add`, `sub`, `mul`) and scalar broadcasts (`x · p`, used in the
//! polynomial evaluation definition, Eq. 4).
//!
//! An algebraic fact exploited by the property tests: extended operators
//! commute with *both* deconstruction operators, i.e.
//! `zip_with(f, p, q) = zip_with(f, p₀, q₀) | zip_with(f, p₁, q₁)` for the
//! tie split and likewise for zip. This is what makes them trivially
//! parallelisable on either decomposition.

use crate::error::{Error, Result};
use crate::powerlist::PowerList;
use std::ops::{Add, Mul, Sub};

/// Applies a binary scalar function position-wise to two similar
/// PowerLists — the generic extended operator.
///
/// Fails with [`Error::LengthMismatch`] when the operands are not similar.
pub fn zip_with<A, B, C>(
    p: &PowerList<A>,
    q: &PowerList<B>,
    mut f: impl FnMut(&A, &B) -> C,
) -> Result<PowerList<C>> {
    if p.len() != q.len() {
        return Err(Error::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let elems: Vec<C> = p.iter().zip(q.iter()).map(|(a, b)| f(a, b)).collect();
    PowerList::from_vec(elems)
}

/// Extended `+` on similar PowerLists (paper, Eq. 3).
pub fn add<T>(p: &PowerList<T>, q: &PowerList<T>) -> Result<PowerList<T>>
where
    T: Add<Output = T> + Clone,
{
    zip_with(p, q, |a, b| a.clone() + b.clone())
}

/// Extended `-` on similar PowerLists (the `P - u × Q` half of Eq. 3).
pub fn sub<T>(p: &PowerList<T>, q: &PowerList<T>) -> Result<PowerList<T>>
where
    T: Sub<Output = T> + Clone,
{
    zip_with(p, q, |a, b| a.clone() - b.clone())
}

/// Extended `×` on similar PowerLists (paper, Eq. 3).
pub fn mul<T>(p: &PowerList<T>, q: &PowerList<T>) -> Result<PowerList<T>>
where
    T: Mul<Output = T> + Clone,
{
    zip_with(p, q, |a, b| a.clone() * b.clone())
}

/// Scalar broadcast `x · p`: multiplies every element by `x` (paper,
/// Eq. 4: "every element of the list p is multiplied with x").
pub fn scale<T>(x: &T, p: &PowerList<T>) -> PowerList<T>
where
    T: Mul<Output = T> + Clone,
{
    map(p, |a| x.clone() * a.clone())
}

/// Sequential element-wise map — the specification that all parallel map
/// implementations in this repository are tested against.
pub fn map<A, B>(p: &PowerList<A>, f: impl FnMut(&A) -> B) -> PowerList<B> {
    PowerList::from_vec(p.iter().map(f).collect()).expect("map preserves the shape invariant")
}

/// `shift`: prepends `first` and drops the last element, preserving the
/// length — the auxiliary operator of the prefix-sum recursion
/// (`ps(p ♮ q) = (shift(t) ⊕ p) ♮ t`).
pub fn shift<T: Clone>(first: T, p: &PowerList<T>) -> PowerList<T> {
    let mut v = Vec::with_capacity(p.len());
    v.push(first);
    v.extend(p.iter().take(p.len() - 1).cloned());
    PowerList::from_vec(v).expect("shift preserves length")
}

/// Sequential left-to-right reduction with an associative operator — the
/// specification all parallel reduce implementations are tested against.
///
/// The operator must be associative for the parallel versions to agree;
/// this is the same contract Java's `Stream::reduce` imposes.
pub fn reduce<T: Clone>(p: &PowerList<T>, mut op: impl FnMut(&T, &T) -> T) -> T {
    let mut acc = p[0].clone();
    for x in p.iter().skip(1) {
        acc = op(&acc, x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(v: Vec<i64>) -> PowerList<i64> {
        PowerList::from_vec(v).unwrap()
    }

    #[test]
    fn zip_with_applies_positionwise() {
        let p = pl(vec![1, 2, 3, 4]);
        let q = pl(vec![10, 20, 30, 40]);
        let r = zip_with(&p, &q, |a, b| a + b).unwrap();
        assert_eq!(r.as_slice(), &[11, 22, 33, 44]);
    }

    #[test]
    fn named_extensions() {
        let p = pl(vec![5, 6]);
        let q = pl(vec![2, 3]);
        assert_eq!(add(&p, &q).unwrap().as_slice(), &[7, 9]);
        assert_eq!(sub(&p, &q).unwrap().as_slice(), &[3, 3]);
        assert_eq!(mul(&p, &q).unwrap().as_slice(), &[10, 18]);
    }

    #[test]
    fn dissimilar_rejected() {
        let p = pl(vec![1, 2]);
        let q = pl(vec![1, 2, 3, 4]);
        assert_eq!(
            add(&p, &q).unwrap_err(),
            Error::LengthMismatch { left: 2, right: 4 }
        );
    }

    #[test]
    fn scale_broadcasts() {
        let p = pl(vec![1, 2, 3, 4]);
        assert_eq!(scale(&3, &p).as_slice(), &[3, 6, 9, 12]);
    }

    #[test]
    fn map_preserves_shape() {
        let p = pl(vec![1, 2, 3, 4]);
        let m = map(&p, |x| x * x);
        assert_eq!(m.as_slice(), &[1, 4, 9, 16]);
        assert_eq!(m.len(), p.len());
    }

    #[test]
    fn reduce_folds_left() {
        let p = pl(vec![1, 2, 3, 4]);
        assert_eq!(reduce(&p, |a, b| a + b), 10);
        assert_eq!(reduce(&p, |a, b| *a.max(b)), 4);
        let s = PowerList::singleton(42i64);
        assert_eq!(reduce(&s, |a, b| a + b), 42);
    }

    #[test]
    fn shift_prepends_and_drops() {
        let p = pl(vec![1, 2, 3, 4]);
        assert_eq!(shift(0, &p).as_slice(), &[0, 1, 2, 3]);
        let s = PowerList::singleton(9i64);
        assert_eq!(shift(-1, &s).as_slice(), &[-1]);
    }

    #[test]
    fn shift_supports_scan_recursion() {
        // ps(p ♮ q) = (shift(t) ⊕ p) ♮ t with t = ps(p ⊕ q), length 4.
        let input = pl(vec![1, 2, 3, 4]);
        let (p, q) = input.clone().unzip().unwrap();
        let sums = add(&p, &q).unwrap(); // [3, 7]
        let t = pl(vec![3, 10]); // ps(sums), by hand
        assert_eq!(reduce(&sums, |a, b| a + b), 10);
        let evens = add(&shift(0, &t), &p).unwrap(); // [0+1, 3+3]
        let result = PowerList::zip(evens, t);
        assert_eq!(result.as_slice(), &[1, 3, 6, 10]);
    }

    #[test]
    fn extended_ops_commute_with_tie_split() {
        // zip_with(f, p, q) = zip_with(f,p0,q0) | zip_with(f,p1,q1)
        let p = pl(vec![1, 2, 3, 4]);
        let q = pl(vec![5, 6, 7, 8]);
        let whole = add(&p, &q).unwrap();
        let (p0, p1) = p.untie().unwrap();
        let (q0, q1) = q.untie().unwrap();
        let split = PowerList::tie(add(&p0, &q0).unwrap(), add(&p1, &q1).unwrap());
        assert_eq!(whole, split);
    }

    #[test]
    fn extended_ops_commute_with_zip_split() {
        let p = pl(vec![1, 2, 3, 4]);
        let q = pl(vec![5, 6, 7, 8]);
        let whole = mul(&p, &q).unwrap();
        let (p0, p1) = p.unzip().unwrap();
        let (q0, q1) = q.unzip().unwrap();
        let split = PowerList::zip(mul(&p0, &q0).unwrap(), mul(&p1, &q1).unwrap());
        assert_eq!(whole, split);
    }
}
