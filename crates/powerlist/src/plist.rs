//! [`PList`]: Kornerup's generalisation of PowerLists to arbitrary
//! lengths and *n*-way divide-and-conquer.
//!
//! A PList has three constructors (paper, Section II): the singleton
//! `[a]`, the *n*-way concatenation `(n-way |)`, and the *n*-way
//! interleaving `(n-way ♮)`. For similar PLists `p.0 … p.(n-1)`:
//!
//! * `[ | i : i ∈ n̄ : p.i ]` concatenates them in index order;
//! * `[ ♮ i : i ∈ n̄ : p.i ]` interleaves them, element `j` of part `i`
//!   landing at position `j·n + i`.
//!
//! The paper's worked example (with `p.i = [3i, 3i+1, 3i+2]`, `n = 3`):
//!
//! ```
//! use powerlist::PList;
//!
//! let parts: Vec<PList<i32>> = (0..3)
//!     .map(|i| PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap())
//!     .collect();
//! assert_eq!(PList::tie_n(parts.clone()).unwrap().as_slice(),
//!            &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
//! assert_eq!(PList::zip_n(parts).unwrap().as_slice(),
//!            &[0, 3, 6, 1, 4, 7, 2, 5, 8]);
//! ```
//!
//! The deconstructors [`PList::untie_n`] / [`PList::unzip_n`] require the
//! length to be divisible by the arity. The paper notes that Java's binary
//! `Spliterator::trySplit` cannot express these *n*-way splits; the
//! `jstreams` crate implements the extension the paper sketches
//! (`NWaySpliterator`), and the `jplf` executors run PList functions
//! directly.

use crate::error::{Error, Result};
use crate::powerlist::PowerList;
use std::fmt;
use std::ops::Index;

/// A non-empty list with *n*-way tie / zip (de)constructors.
///
/// Unlike [`PowerList`], the length may be any positive integer; shape
/// obligations are checked per operation (divisibility by the arity).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PList<T> {
    elems: Vec<T>,
}

impl<T> PList<T> {
    /// The singleton constructor `[a]`.
    pub fn singleton(value: T) -> Self {
        PList { elems: vec![value] }
    }

    /// Wraps a non-empty vector.
    pub fn from_vec(elems: Vec<T>) -> Result<Self> {
        if elems.is_empty() {
            return Err(Error::Empty);
        }
        Ok(PList { elems })
    }

    /// *n*-way **tie**: concatenates the similar parts in index order.
    ///
    /// Fails with [`Error::ZeroArity`] on an empty part list and
    /// [`Error::RaggedParts`] when part lengths differ.
    pub fn tie_n(parts: Vec<Self>) -> Result<Self> {
        Self::check_parts(&parts)?;
        let mut out = Vec::with_capacity(parts.len() * parts[0].len());
        for p in parts {
            out.extend(p.elems);
        }
        Ok(PList { elems: out })
    }

    /// *n*-way **zip**: interleaves the similar parts; element `j` of part
    /// `i` lands at position `j·n + i`.
    ///
    /// Fails with [`Error::ZeroArity`] / [`Error::RaggedParts`] like
    /// [`PList::tie_n`].
    pub fn zip_n(parts: Vec<Self>) -> Result<Self> {
        Self::check_parts(&parts)?;
        let n = parts.len();
        let m = parts[0].len();
        let mut slots: Vec<std::vec::IntoIter<T>> =
            parts.into_iter().map(|p| p.elems.into_iter()).collect();
        let mut out = Vec::with_capacity(n * m);
        for _ in 0..m {
            for it in slots.iter_mut() {
                out.push(it.next().expect("checked length"));
            }
        }
        Ok(PList { elems: out })
    }

    fn check_parts(parts: &[Self]) -> Result<()> {
        if parts.is_empty() {
            return Err(Error::ZeroArity);
        }
        let first = parts[0].len();
        for p in &parts[1..] {
            if p.len() != first {
                return Err(Error::RaggedParts {
                    first,
                    other: p.len(),
                });
            }
        }
        Ok(())
    }

    /// *n*-way **tie** deconstructor: splits into `n` contiguous blocks.
    ///
    /// Fails when `n == 0` or the length is not divisible by `n`.
    pub fn untie_n(self, n: usize) -> Result<Vec<Self>> {
        if n == 0 {
            return Err(Error::ZeroArity);
        }
        if !self.len().is_multiple_of(n) {
            return Err(Error::NotDivisible {
                len: self.len(),
                arity: n,
            });
        }
        let m = self.len() / n;
        let mut parts = Vec::with_capacity(n);
        let mut it = self.elems.into_iter();
        for _ in 0..n {
            parts.push(PList {
                elems: it.by_ref().take(m).collect(),
            });
        }
        Ok(parts)
    }

    /// *n*-way **zip** deconstructor: part `i` receives the elements at
    /// positions `≡ i (mod n)`.
    ///
    /// Fails when `n == 0` or the length is not divisible by `n`.
    pub fn unzip_n(self, n: usize) -> Result<Vec<Self>> {
        if n == 0 {
            return Err(Error::ZeroArity);
        }
        if !self.len().is_multiple_of(n) {
            return Err(Error::NotDivisible {
                len: self.len(),
                arity: n,
            });
        }
        let m = self.len() / n;
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::with_capacity(m)).collect();
        for (i, x) in self.elems.into_iter().enumerate() {
            parts[i % n].push(x);
        }
        Ok(parts.into_iter().map(|elems| PList { elems }).collect())
    }

    /// Length of the list (any positive integer).
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// PLists are non-empty by definition; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` for length-one lists — the recursion base case.
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.len() == 1
    }

    /// Borrow the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<T> {
        self.elems
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.elems.iter()
    }

    /// Converts to a strict [`PowerList`] when the length is a power of
    /// two. Every PowerList is a PList; the converse holds exactly when
    /// this succeeds.
    pub fn into_powerlist(self) -> Result<PowerList<T>> {
        PowerList::from_vec(self.elems)
    }
}

impl<T> From<PowerList<T>> for PList<T> {
    fn from(p: PowerList<T>) -> Self {
        PList {
            elems: p.into_vec(),
        }
    }
}

impl<T> Index<usize> for PList<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.elems[i]
    }
}

impl<T> IntoIterator for PList<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for PList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PList(len={}) ", self.len())?;
        f.debug_list().entries(self.elems.iter().take(8)).finish()
    }
}

/// The ordered quantification `[ | i : i ∈ n̄ : f(i) ]` of the PList
/// algebra: builds the parts from a generator and concatenates them.
pub fn tie_quantified<T>(n: usize, mut f: impl FnMut(usize) -> PList<T>) -> Result<PList<T>> {
    PList::tie_n((0..n).map(&mut f).collect())
}

/// The ordered quantification `[ ♮ i : i ∈ n̄ : f(i) ]`: builds the parts
/// from a generator and interleaves them.
pub fn zip_quantified<T>(n: usize, mut f: impl FnMut(usize) -> PList<T>) -> Result<PList<T>> {
    PList::zip_n((0..n).map(&mut f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts3() -> Vec<PList<i32>> {
        (0..3)
            .map(|i| PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap())
            .collect()
    }

    #[test]
    fn paper_example_tie() {
        let t = PList::tie_n(parts3()).unwrap();
        assert_eq!(t.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn paper_example_zip() {
        let z = PList::zip_n(parts3()).unwrap();
        assert_eq!(z.as_slice(), &[0, 3, 6, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn untie_inverts_tie_n() {
        let parts = parts3();
        let t = PList::tie_n(parts.clone()).unwrap();
        assert_eq!(t.untie_n(3).unwrap(), parts);
    }

    #[test]
    fn unzip_inverts_zip_n() {
        let parts = parts3();
        let z = PList::zip_n(parts.clone()).unwrap();
        assert_eq!(z.unzip_n(3).unwrap(), parts);
    }

    #[test]
    fn binary_case_agrees_with_powerlist() {
        let p = PowerList::from_vec(vec![1, 2]).unwrap();
        let q = PowerList::from_vec(vec![3, 4]).unwrap();
        let tie2 = PList::tie_n(vec![p.clone().into(), q.clone().into()]).unwrap();
        assert_eq!(
            tie2.as_slice(),
            PowerList::tie(p.clone(), q.clone()).as_slice()
        );
        let zip2 = PList::zip_n(vec![p.clone().into(), q.clone().into()]).unwrap();
        assert_eq!(zip2.as_slice(), PowerList::zip(p, q).as_slice());
    }

    #[test]
    fn shape_errors() {
        assert_eq!(PList::<i32>::tie_n(vec![]).unwrap_err(), Error::ZeroArity);
        let ragged = vec![
            PList::from_vec(vec![1, 2]).unwrap(),
            PList::from_vec(vec![3]).unwrap(),
        ];
        assert_eq!(
            PList::tie_n(ragged).unwrap_err(),
            Error::RaggedParts { first: 2, other: 1 }
        );
        let p = PList::from_vec(vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(
            p.clone().untie_n(2).unwrap_err(),
            Error::NotDivisible { len: 5, arity: 2 }
        );
        assert_eq!(p.clone().unzip_n(0).unwrap_err(), Error::ZeroArity);
        assert_eq!(
            PList::from_vec(Vec::<i32>::new()).unwrap_err(),
            Error::Empty
        );
    }

    #[test]
    fn arity_one_is_identity() {
        let p = PList::from_vec(vec![4, 5, 6]).unwrap();
        assert_eq!(p.clone().untie_n(1).unwrap(), vec![p.clone()]);
        assert_eq!(p.clone().unzip_n(1).unwrap(), vec![p.clone()]);
        assert_eq!(PList::tie_n(vec![p.clone()]).unwrap(), p);
        assert_eq!(PList::zip_n(vec![p.clone()]).unwrap(), p);
    }

    #[test]
    fn quantified_forms() {
        let t = tie_quantified(3, |i| {
            PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap()
        })
        .unwrap();
        assert_eq!(t.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let z = zip_quantified(3, |i| {
            PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap()
        })
        .unwrap();
        assert_eq!(z.as_slice(), &[0, 3, 6, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn powerlist_roundtrip() {
        let p = PList::from_vec(vec![1, 2, 3, 4]).unwrap();
        let pow = p.clone().into_powerlist().unwrap();
        assert_eq!(PList::from(pow), p);
        let odd = PList::from_vec(vec![1, 2, 3]).unwrap();
        assert_eq!(odd.into_powerlist().unwrap_err(), Error::NotPowerOfTwo(3));
    }
}
