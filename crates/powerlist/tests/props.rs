//! Property-based tests of the PowerList / PList algebra laws.
//!
//! These are the laws the paper's correctness story rests on (Section II):
//! unique deconstruction, constructor/deconstructor inverses, the tie/zip
//! exchange behaviour of `inv`, and the distribution of extended operators
//! over both deconstructions.

use powerlist::ops::{add, map, mul, reduce, zip_with};
use powerlist::perm::{inv_indexed, inv_structural, inv_structural_dual, rev};
use powerlist::{tabulate, PList, PowerArray, PowerList};
use proptest::prelude::*;

/// Strategy: a PowerList of i64 with length 2^k, 0 <= k <= max_k.
fn powerlist_strategy(max_k: u32) -> impl Strategy<Value = PowerList<i64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1000i64..1000, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).expect("generated power-of-two length"))
}

/// Strategy: a pair of similar PowerLists.
fn similar_pair(max_k: u32) -> impl Strategy<Value = (PowerList<i64>, PowerList<i64>)> {
    (0..=max_k).prop_flat_map(|k| {
        let n = 1usize << k;
        (
            proptest::collection::vec(-1000i64..1000, n),
            proptest::collection::vec(-1000i64..1000, n),
        )
            .prop_map(|(a, b)| {
                (
                    PowerList::from_vec(a).unwrap(),
                    PowerList::from_vec(b).unwrap(),
                )
            })
    })
}

proptest! {
    #[test]
    fn untie_inverts_tie((p, q) in similar_pair(6)) {
        let (a, b) = PowerList::tie(p.clone(), q.clone()).untie().unwrap();
        prop_assert_eq!(a, p);
        prop_assert_eq!(b, q);
    }

    #[test]
    fn unzip_inverts_zip((p, q) in similar_pair(6)) {
        let (a, b) = PowerList::zip(p.clone(), q.clone()).unzip().unwrap();
        prop_assert_eq!(a, p);
        prop_assert_eq!(b, q);
    }

    #[test]
    fn tie_then_untie_roundtrips_any(p in powerlist_strategy(7)) {
        prop_assume!(p.len() >= 2);
        let (a, b) = p.clone().untie().unwrap();
        prop_assert_eq!(PowerList::tie(a, b), p);
    }

    #[test]
    fn zip_then_unzip_roundtrips_any(p in powerlist_strategy(7)) {
        prop_assume!(p.len() >= 2);
        let (a, b) = p.clone().unzip().unwrap();
        prop_assert_eq!(PowerList::zip(a, b), p);
    }

    #[test]
    fn view_deconstruction_matches_owned(p in powerlist_strategy(7)) {
        prop_assume!(p.len() >= 2);
        let v = p.clone().view();
        let (vt_l, vt_r) = v.untie().unwrap();
        let (ot_l, ot_r) = p.clone().untie().unwrap();
        prop_assert_eq!(vt_l.to_powerlist(), ot_l);
        prop_assert_eq!(vt_r.to_powerlist(), ot_r);
        let (vz_e, vz_o) = v.unzip().unwrap();
        let (oz_e, oz_o) = p.unzip().unwrap();
        prop_assert_eq!(vz_e.to_powerlist(), oz_e);
        prop_assert_eq!(vz_o.to_powerlist(), oz_o);
    }

    #[test]
    fn inv_is_involution(p in powerlist_strategy(7)) {
        prop_assert_eq!(inv_indexed(&inv_indexed(&p)), p);
    }

    #[test]
    fn inv_implementations_agree(p in powerlist_strategy(6)) {
        let a = inv_indexed(&p);
        prop_assert_eq!(inv_structural(&p), a.clone());
        prop_assert_eq!(inv_structural_dual(&p), a);
    }

    #[test]
    fn inv_exchanges_tie_and_zip((p, q) in similar_pair(5)) {
        // Eq. 2: inv(p | q) = inv(p) ♮ inv(q)
        let lhs = inv_indexed(&PowerList::tie(p.clone(), q.clone()));
        let rhs = PowerList::zip(inv_indexed(&p), inv_indexed(&q));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn inv_exchanges_zip_and_tie((p, q) in similar_pair(5)) {
        // The dual: inv(p ♮ q) = inv(p) | inv(q)
        let lhs = inv_indexed(&PowerList::zip(p.clone(), q.clone()));
        let rhs = PowerList::tie(inv_indexed(&p), inv_indexed(&q));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rev_is_involution(p in powerlist_strategy(7)) {
        prop_assert_eq!(rev(&rev(&p)), p);
    }

    #[test]
    fn extended_add_distributes_over_tie((p, q) in similar_pair(6)) {
        prop_assume!(p.len() >= 2);
        let whole = add(&p, &q).unwrap();
        let (p0, p1) = p.untie().unwrap();
        let (q0, q1) = q.untie().unwrap();
        let split = PowerList::tie(add(&p0, &q0).unwrap(), add(&p1, &q1).unwrap());
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn extended_mul_distributes_over_zip((p, q) in similar_pair(6)) {
        prop_assume!(p.len() >= 2);
        let whole = mul(&p, &q).unwrap();
        let (p0, p1) = p.unzip().unwrap();
        let (q0, q1) = q.unzip().unwrap();
        let split = PowerList::zip(mul(&p0, &q0).unwrap(), mul(&p1, &q1).unwrap());
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn map_fusion(p in powerlist_strategy(7)) {
        // map(g) . map(f) = map(g . f)
        let two_pass = map(&map(&p, |x| x + 1), |x| x * 2);
        let fused = map(&p, |x| (x + 1) * 2);
        prop_assert_eq!(two_pass, fused);
    }

    #[test]
    fn map_commutes_with_zip((p, q) in similar_pair(6)) {
        // Eq. 1 (zip variant): map(f, p ♮ q) = map(f, p) ♮ map(f, q)
        let lhs = map(&PowerList::zip(p.clone(), q.clone()), |x| x - 7);
        let rhs = PowerList::zip(map(&p, |x| x - 7), map(&q, |x| x - 7));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn reduce_splits_associatively((p, q) in similar_pair(6)) {
        // reduce(op, p | q) = op(reduce(op, p), reduce(op, q))
        let whole = reduce(&PowerList::tie(p.clone(), q.clone()), |a, b| a + b);
        let split = reduce(&p, |a, b| a + b) + reduce(&q, |a, b| a + b);
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn reduce_insensitive_to_decomposition(p in powerlist_strategy(7)) {
        // For a commutative-associative op, reducing via tie or via zip
        // decomposition yields the same result.
        prop_assume!(p.len() >= 2);
        let (t0, t1) = p.clone().untie().unwrap();
        let (z0, z1) = p.clone().unzip().unwrap();
        let via_tie = reduce(&t0, |a, b| a + b) + reduce(&t1, |a, b| a + b);
        let via_zip = reduce(&z0, |a, b| a + b) + reduce(&z1, |a, b| a + b);
        prop_assert_eq!(via_tie, via_zip);
        prop_assert_eq!(via_tie, reduce(&p, |a, b| a + b));
    }

    #[test]
    fn zip_with_length_preserved((p, q) in similar_pair(6)) {
        let r = zip_with(&p, &q, |a, b| a.wrapping_mul(*b)).unwrap();
        prop_assert_eq!(r.len(), p.len());
    }

    #[test]
    fn powerarray_combiners_model_constructors((p, q) in similar_pair(6)) {
        let mut at = PowerArray::from(p.clone().into_vec());
        at.tie_all(PowerArray::from(q.clone().into_vec()));
        prop_assert_eq!(at.into_powerlist().unwrap(),
                        PowerList::tie(p.clone(), q.clone()));

        let mut az = PowerArray::from(p.clone().into_vec());
        az.zip_all(PowerArray::from(q.clone().into_vec()));
        prop_assert_eq!(az.into_powerlist().unwrap(), PowerList::zip(p, q));
    }

    #[test]
    fn plist_untie_roundtrip(v in proptest::collection::vec(-100i64..100, 1..60),
                             n in 1usize..6) {
        prop_assume!(v.len() % n == 0 && !v.is_empty());
        let p = PList::from_vec(v).unwrap();
        let parts = p.clone().untie_n(n).unwrap();
        prop_assert_eq!(PList::tie_n(parts).unwrap(), p);
    }

    #[test]
    fn plist_unzip_roundtrip(v in proptest::collection::vec(-100i64..100, 1..60),
                             n in 1usize..6) {
        prop_assume!(v.len() % n == 0 && !v.is_empty());
        let p = PList::from_vec(v).unwrap();
        let parts = p.clone().unzip_n(n).unwrap();
        prop_assert_eq!(PList::zip_n(parts).unwrap(), p);
    }

    #[test]
    fn tabulate_then_index(k in 0u32..8) {
        let p = tabulate(1usize << k, |i| i as i64 * 2).unwrap();
        for i in 0..p.len() {
            prop_assert_eq!(p[i], i as i64 * 2);
        }
    }
}
