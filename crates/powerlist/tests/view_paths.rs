//! Deep decomposition-path properties of the no-copy views.
//!
//! A PowerList view deconstructed by an arbitrary sequence of tie/zip
//! choices must agree element-wise with the index arithmetic of the
//! algebra. These tests drive the stride/offset computations through
//! random paths — the exact machinery the spliterators (and hence every
//! parallel collect) stand on.

use powerlist::{tabulate, PowerList, PowerView};
use proptest::prelude::*;

/// Follows a path of (use_zip, go_right) choices from the root view and
/// returns the reached view.
fn follow(view: PowerView<usize>, path: &[(bool, bool)]) -> PowerView<usize> {
    let mut v = view;
    for &(use_zip, go_right) in path {
        if v.is_singleton() {
            break;
        }
        let (l, r) = if use_zip {
            v.unzip().unwrap()
        } else {
            v.untie().unwrap()
        };
        v = if go_right { r } else { l };
    }
    v
}

/// The same path computed by index arithmetic on `0..n`: a tie step
/// keeps a contiguous half, a zip step a parity class.
fn follow_indices(n: usize, path: &[(bool, bool)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for &(use_zip, go_right) in path {
        if idx.len() == 1 {
            break;
        }
        let half = idx.len() / 2;
        idx = if use_zip {
            idx.iter()
                .enumerate()
                .filter(|(i, _)| (i % 2 == 1) == go_right)
                .map(|(_, &x)| x)
                .collect()
        } else if go_right {
            idx[half..].to_vec()
        } else {
            idx[..half].to_vec()
        };
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_paths_match_index_arithmetic(
        k in 0u32..10,
        path in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..12),
    ) {
        let n = 1usize << k;
        let list = tabulate(n, |i| i).unwrap();
        let reached = follow(list.view(), &path);
        let expected = follow_indices(n, &path);
        prop_assert_eq!(reached.len(), expected.len());
        for (i, &e) in expected.iter().enumerate() {
            prop_assert_eq!(*reached.get(i), e, "position {} of path {:?}", i, &path);
        }
    }

    #[test]
    fn full_depth_paths_reach_correct_singleton(
        k in 1u32..9,
        bits in any::<u64>(),
        zips in any::<u64>(),
    ) {
        // Choose one decomposition operator and one direction per level.
        let n = 1usize << k;
        let path: Vec<(bool, bool)> = (0..k)
            .map(|d| ((zips >> d) & 1 == 1, (bits >> d) & 1 == 1))
            .collect();
        let list = tabulate(n, |i| i).unwrap();
        let reached = follow(list.view(), &path);
        prop_assert!(reached.is_singleton());
        let expected = follow_indices(n, &path);
        prop_assert_eq!(*reached.singleton_value(), expected[0]);
    }

    #[test]
    fn sibling_views_partition_the_elements(
        k in 1u32..10,
        use_zip in any::<bool>(),
    ) {
        let n = 1usize << k;
        let list = tabulate(n, |i| i).unwrap();
        let v = list.view();
        let (l, r) = if use_zip { v.unzip().unwrap() } else { v.untie().unwrap() };
        let mut seen = vec![false; n];
        for i in 0..l.len() {
            seen[*l.get(i)] = true;
        }
        for i in 0..r.len() {
            prop_assert!(!seen[*r.get(i)], "element {} in both halves", r.get(i));
            seen[*r.get(i)] = true;
        }
        prop_assert!(seen.iter().all(|&b| b), "halves must cover the source");
    }

    #[test]
    fn reconstruction_inverts_any_single_step(
        k in 1u32..10,
        use_zip in any::<bool>(),
    ) {
        let n = 1usize << k;
        let list = tabulate(n, |i| i as i64 * 3).unwrap();
        let (l, r) = if use_zip {
            list.clone().unzip().unwrap()
        } else {
            list.clone().untie().unwrap()
        };
        let back = if use_zip {
            PowerList::zip(l, r)
        } else {
            PowerList::tie(l, r)
        };
        prop_assert_eq!(back, list);
    }
}
