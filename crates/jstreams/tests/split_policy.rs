//! Split-policy integration tests: the non-SIZED depth-capped descent,
//! exact leaf item accounting through filters, and re-entrant collects
//! across pools.
//!
//! The recorded tests install a **global** plobs sink, so every test in
//! this binary serializes on [`LOCK`] — cargo runs tests of one binary
//! on multiple threads, and a concurrently running collect would leak
//! its events into another test's report.

use forkjoin::ForkJoinPool;
use jstreams::{stream_support, AdaptiveSplit, ReduceCollector, SliceSpliterator, SplitPolicy};
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The satellite-1 fix, observed: a filtered (non-SIZED) pipeline whose
/// `estimate_size` upper bound never drops below the leaf size still
/// splits — the old size-gated stop would have run the whole stream as
/// one sequential leaf.
#[test]
fn filtered_collect_splits_beyond_size_gate() {
    let _guard = lock();
    let n = 1usize << 10;
    let pool = Arc::new(ForkJoinPool::new(2));
    // Leaf size == n: a SIZED source would never split under this
    // policy, and the old size-gated recursion treated the filter's
    // upper-bound estimate the same way.
    let policy = SplitPolicy::Fixed(n);
    let cap = policy.depth_cap(pool.threads());
    let p2 = Arc::clone(&pool);
    let (sum, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new((0..n as i64).collect()), true)
            .with_pool(p2)
            .with_split_policy(policy)
            .filter(|x| x % 2 == 0)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(sum, (0..n as i64).filter(|x| x % 2 == 0).sum::<i64>());
    assert!(
        report.splits > 0,
        "non-SIZED pipeline must split past the size gate:\n{}",
        report.tree_summary()
    );
    assert!(
        report.max_split_depth() < cap,
        "unsized descent must stop at the depth cap {cap}, saw {}",
        report.max_split_depth()
    );

    // Control: the same policy on the SIZED, unfiltered source is a
    // single sequential leaf — the gate itself is unchanged.
    let p2 = Arc::clone(&pool);
    let (_, control) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new((0..n as i64).collect()), true)
            .with_pool(p2)
            .with_split_policy(policy)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(
        control.splits, 0,
        "SIZED source at leaf size must not split"
    );
}

/// The satellite-2 fix, observed: leaf `items` totals through a filter
/// equal the true surviving element count — not the pre-filter size
/// estimate the old accounting reported.
#[test]
fn leaf_item_totals_are_exact_through_filters() {
    let _guard = lock();
    let n = 3000i64; // not a power of two, not a leaf multiple
    let data: Vec<i64> = (0..n).collect();
    let survivors = data.iter().filter(|x| *x % 3 == 0).count() as u64;
    let pool = Arc::new(ForkJoinPool::new(2));
    for policy in [
        SplitPolicy::Fixed(64),
        SplitPolicy::Adaptive(AdaptiveSplit {
            min_leaf: 16,
            ..AdaptiveSplit::default()
        }),
    ] {
        let d = data.clone();
        let p2 = Arc::clone(&pool);
        let (sum, report) = plobs::recorded(move || {
            stream_support(SliceSpliterator::new(d), true)
                .with_pool(p2)
                .with_split_policy(policy)
                .filter(|x| x % 3 == 0)
                .reduce(0i64, |a, b| a + b)
        });
        assert_eq!(sum, (0..n).filter(|x| x % 3 == 0).sum::<i64>());
        assert_eq!(
            report.routes.total_items(),
            survivors,
            "leaf items must count drained survivors under {:?}:\n{}",
            policy,
            report.tree_summary()
        );
    }
}

/// Zero-copy routes report borrow lengths: an unfiltered slice collect
/// accounts every element exactly once.
#[test]
fn zero_copy_item_totals_are_exact() {
    let _guard = lock();
    let n = 2048i64;
    let pool = Arc::new(ForkJoinPool::new(2));
    let (sum, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new((0..n).collect()), true)
            .with_pool(pool)
            .with_split_policy(SplitPolicy::Fixed(128))
            .collect(ReduceCollector::new(0i64, |a, b| a + b))
    });
    assert_eq!(sum, (0..n).sum::<i64>());
    assert_eq!(report.routes.total_items(), n as u64);
    assert_eq!(report.routes.cloning_drain.items, 0);
}

/// The satellite-3 fix, observed: a worker of one pool installing a
/// parallel collect on a *different* pool helps its own pool while the
/// foreign latch is pending instead of blocking a worker thread — with
/// 1-worker pools on both sides this deadlocked before the fix.
#[test]
fn cross_pool_reentrant_collect_completes() {
    let _guard = lock();
    let pool_a = Arc::new(ForkJoinPool::new(1));
    let pool_b = Arc::new(ForkJoinPool::new(1));
    for round in 0..16 {
        let pb = Arc::clone(&pool_b);
        let n = 256 + round as i64;
        let got = pool_a.install(move || {
            stream_support(SliceSpliterator::new((0..n).collect()), true)
                .with_pool(pb)
                .with_split_policy(SplitPolicy::Fixed(16))
                .reduce(0i64, |a, b| a + b)
        });
        assert_eq!(got, (0..n).sum::<i64>());
    }
}

/// Same-pool re-entrancy: a map stage that itself runs a nested
/// parallel collect on the same pool, under both policies.
#[test]
fn nested_same_pool_collect_completes() {
    let _guard = lock();
    let pool = Arc::new(ForkJoinPool::new(2));
    for policy in [SplitPolicy::Fixed(8), SplitPolicy::adaptive()] {
        let inner_pool = Arc::clone(&pool);
        let inner_sum: i64 = (0..32i64).sum();
        let total = stream_support(SliceSpliterator::new((0..64i64).collect()), true)
            .with_pool(Arc::clone(&pool))
            .with_split_policy(policy)
            .map(move |x| {
                let nested = stream_support(SliceSpliterator::new((0..32i64).collect()), true)
                    .with_pool(Arc::clone(&inner_pool))
                    .with_split_policy(SplitPolicy::Fixed(4))
                    .reduce(0i64, |a, b| a + b);
                assert_eq!(nested, inner_sum);
                x + nested
            })
            .reduce(0i64, |a, b| a + b);
        assert_eq!(total, (0..64i64).map(|x| x + inner_sum).sum::<i64>());
    }
}
