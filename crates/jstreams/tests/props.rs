//! Property tests of the stream pipeline: random sources, random
//! granularities, random pipelines — parallel always equals sequential.

use jstreams::{collect_powerlist, power_stream, stream_support, Decomposition, SliceSpliterator};
use powerlist::PowerList;
use proptest::prelude::*;

fn powerlist_i64(max_k: u32) -> impl Strategy<Value = PowerList<i64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-500i64..500, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn to_vec_preserves_order(v in proptest::collection::vec(any::<i32>(), 0..500),
                              leaf in 1usize..64) {
        let got = stream_support(SliceSpliterator::new(v.clone()), true)
            .with_leaf_size(leaf)
            .to_vec();
        prop_assert_eq!(got, v);
    }

    #[test]
    fn count_is_len(v in proptest::collection::vec(any::<u8>(), 0..300), leaf in 1usize..32) {
        let n = v.len();
        let got = stream_support(SliceSpliterator::new(v), true)
            .with_leaf_size(leaf)
            .count();
        prop_assert_eq!(got, n);
    }

    #[test]
    fn pipeline_parallel_equals_sequential(
        v in proptest::collection::vec(-1000i64..1000, 0..400),
        a in -5i64..5,
        b in 1i64..7,
        leaf in 1usize..32,
    ) {
        let seq = stream_support(SliceSpliterator::new(v.clone()), false)
            .map(move |x| x * a)
            .filter(move |x| x % b == 0)
            .reduce(0, |p, q| p + q);
        let par = stream_support(SliceSpliterator::new(v), true)
            .with_leaf_size(leaf)
            .map(move |x| x * a)
            .filter(move |x| x % b == 0)
            .reduce(0, |p, q| p + q);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn skip_limit_window(v in proptest::collection::vec(any::<i16>(), 0..300),
                         skip in 0usize..50, limit in 0usize..50) {
        let expected: Vec<i16> = v.iter().skip(skip).take(limit).copied().collect();
        let got = stream_support(SliceSpliterator::new(v), true)
            .skip(skip)
            .limit(limit)
            .to_vec();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn min_max_match_std(v in proptest::collection::vec(any::<i32>(), 0..300)) {
        let want_min = v.iter().min().copied();
        let want_max = v.iter().max().copied();
        prop_assert_eq!(stream_support(SliceSpliterator::new(v.clone()), true).min(), want_min);
        prop_assert_eq!(stream_support(SliceSpliterator::new(v), true).max(), want_max);
    }

    #[test]
    fn power_stream_identity_under_all_leafs(p in powerlist_i64(8), leaf in 1usize..40,
                                             zip in any::<bool>()) {
        let d = if zip { Decomposition::Zip } else { Decomposition::Tie };
        let out = collect_powerlist(power_stream(p.clone(), d).with_leaf_size(leaf), d).unwrap();
        prop_assert_eq!(out, p);
    }

    #[test]
    fn map_then_to_vec_equals_spec_under_tie(p in powerlist_i64(8), c in -9i64..9,
                                             leaf in 1usize..32) {
        // `to_vec` concatenates partial results, which only reconstructs
        // encounter order for the TIE decomposition...
        let spec = powerlist::ops::map(&p, |x| x ^ c);
        let got = power_stream(p, Decomposition::Tie)
            .with_leaf_size(leaf)
            .map(move |x| x ^ c)
            .to_vec();
        prop_assert_eq!(got, spec.into_vec());
    }

    #[test]
    fn zip_with_concatenation_is_inv(p in powerlist_i64(7)) {
        // ... while ZIP + concatenation permutes by bit reversal when
        // split to singletons — the Section IV.A observation that makes
        // zipAll necessary, as a law.
        let spec = powerlist::perm::inv_indexed(&p);
        let got = power_stream(p, Decomposition::Zip)
            .with_leaf_size(1)
            .to_vec();
        prop_assert_eq!(got, spec.into_vec());
    }
}
