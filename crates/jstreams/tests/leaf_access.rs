//! Edge cases of the borrowed-leaf (zero-copy) capability.
//!
//! Pins down the `LeafAccess` / `Collector::leaf_slice` contract at its
//! boundaries: singleton leaves, strided zip residues where only the
//! strided borrow exists, the POWER2 gate, panic propagation out of a
//! slice kernel, and that the zero-copy dispatch actually bypasses the
//! cloning drain.

// These tests deliberately exercise the legacy collect entry points.
#![allow(deprecated)]

use forkjoin::ForkJoinPool;
use jstreams::{
    collect_par, collect_seq, power_stream, require_power2, run_leaf, Collector, Decomposition,
    ItemSource, LeafAccess, ReduceCollector, SliceSpliterator, Spliterator, TieSpliterator,
    VecCollector, ZipSpliterator,
};
use powerlist::tabulate;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialises the tests in this binary. The plobs sink is process
/// global: a collect running in one test while another test records
/// would leak its leaf events into that test's `RunReport`. Every test
/// that drives a collect takes this lock first.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Singleton leaves (leaf_size 1)
// ---------------------------------------------------------------------

#[test]
fn leaf_size_one_tie_and_zip() {
    let _serial = serial();
    // Every leaf is a single borrowed element; both decompositions must
    // still reassemble correctly through their combiners.
    let pool = ForkJoinPool::new(2);
    let list = tabulate(16, |i| i as i64).unwrap();

    let tie = collect_par(
        &pool,
        TieSpliterator::over(list.clone()),
        Arc::new(ReduceCollector::new(0i64, |a, b| a + b)),
        1,
    );
    assert_eq!(tie, (0..16).sum::<i64>());

    // Zip with a concatenating collector at leaf 1 produces the
    // bit-reversal permutation (the Section IV.A observation) — the
    // borrowed singleton runs must reproduce it exactly like the
    // cloning drain did.
    let list4 = tabulate(4, |i| i).unwrap();
    let out = collect_par(
        &pool,
        ZipSpliterator::over(list4),
        Arc::new(VecCollector),
        1,
    );
    assert_eq!(out, vec![0, 2, 1, 3]);
}

#[test]
fn singleton_source_is_a_borrowed_leaf() {
    let _serial = serial();
    let list = tabulate(1, |_| 41i64).unwrap();
    let sp = TieSpliterator::over(list);
    assert_eq!(sp.try_as_slice(), Some(&[41i64][..]));
    assert_eq!(collect_seq(sp, &ReduceCollector::new(1, |a, b| a + b)), 42);
}

// ---------------------------------------------------------------------
// Zip residues: only the strided borrow exists
// ---------------------------------------------------------------------

#[test]
fn zip_residue_has_no_contiguous_borrow() {
    let _serial = serial();
    let list = tabulate(8, |i| i as i64).unwrap();
    let mut odds = ZipSpliterator::over(list);
    let mut evens = odds.try_split().expect("length 8 splits");

    // One zip split: stride 2 on both residue classes. A contiguous
    // borrow would present storage order, not residue order, so the
    // contract requires `None`.
    assert_eq!(evens.try_as_slice(), None);
    assert_eq!(odds.try_as_slice(), None);

    // The strided borrow is the residue class: base slice begins at the
    // class offset, ends exactly on its last member.
    let (items, step) = evens.try_as_strided().expect("strided borrow");
    assert_eq!(step, 2);
    assert_eq!(items, &[0, 1, 2, 3, 4, 5, 6]);
    assert_eq!(items.len() % step, 1, "last element always included");
    let (items, step) = odds.try_as_strided().expect("strided borrow");
    assert_eq!(step, 2);
    assert_eq!(items, &[1, 2, 3, 4, 5, 6, 7]);

    // Second split: stride 4 residues of the evens class.
    let mut e2 = evens.try_split().expect("length 4 splits");
    assert_eq!(e2.try_as_slice(), None);
    let (items, step) = e2.try_as_strided().expect("strided borrow");
    assert_eq!(step, 4);
    assert_eq!(items, &[0, 1, 2, 3, 4]);

    // Draining through run_leaf consumes the residue exactly once.
    let sum = run_leaf(&mut e2, &ReduceCollector::new(0i64, |a, b| a + b));
    assert_eq!(sum, 4, "residue class {{0, 4}}");
    assert_eq!(e2.estimate_size(), 0, "borrowed leaf marked drained");
    let again = run_leaf(&mut e2, &ReduceCollector::new(0i64, |a, b| a + b));
    assert_eq!(again, 0, "drained source contributes the identity");
}

#[test]
fn strided_kernel_agrees_with_cloning_drain_on_residues() {
    let _serial = serial();
    // For every split depth, the strided kernel and the per-element
    // drain must fold the same residue class.
    let list = tabulate(32, |i| (i as i64) * 7 - 50).unwrap();
    let mut sp = ZipSpliterator::over(list);
    let mut frontier = vec![sp.try_split().unwrap()];
    frontier.push(sp);
    for _ in 0..2 {
        let mut next = Vec::new();
        for mut s in frontier {
            next.push(s.try_split().unwrap());
            next.push(s);
        }
        frontier = next;
    }
    let collector = ReduceCollector::new(0i64, |a, b| a + b);
    for mut s in frontier {
        assert_eq!(
            s.try_as_slice(),
            None,
            "stride > 1 must refuse the contiguous borrow"
        );
        let (items, step) = s.try_as_strided().expect("residue borrow");
        assert!(step > 1);
        let zero_copy = collector.leaf_strided(items, step).unwrap();
        let mut cloned = 0i64;
        s.for_each_remaining(&mut |x| cloned += x);
        assert_eq!(zero_copy, cloned);
    }
}

// ---------------------------------------------------------------------
// POWER2 gate
// ---------------------------------------------------------------------

#[test]
fn power2_gate_rejects_non_power_lengths() {
    let _serial = serial();
    // SliceSpliterator never advertises POWER2, whatever its length.
    let s = SliceSpliterator::new((0..6i64).collect());
    assert!(require_power2(&s).is_err());
    let s = SliceSpliterator::new((0..8i64).collect());
    assert!(
        require_power2(&s).is_err(),
        "flag missing, length irrelevant"
    );

    // Power spliterators advertise it and carry power-of-two lengths by
    // construction; the gate passes at every split depth.
    let list = tabulate(16, |i| i).unwrap();
    let mut sp = TieSpliterator::over(list);
    assert!(require_power2(&sp).is_ok());
    let half = sp.try_split().unwrap();
    assert!(require_power2(&half).is_ok());
    assert!(require_power2(&sp).is_ok());
}

#[test]
fn power2_gate_used_by_power_stream_paths() {
    let _serial = serial();
    // PowerList construction itself refuses non-power-of-two shapes, so
    // the stream entry point can never observe one.
    assert!(powerlist::PowerList::from_vec(vec![1, 2, 3]).is_err());
    assert!(powerlist::PowerList::from_vec(Vec::<i32>::new()).is_err());
    let p = powerlist::PowerList::from_vec(vec![1i64, 2, 3, 4]).unwrap();
    assert_eq!(
        power_stream(p, Decomposition::Tie).reduce(0, |a, b| a + b),
        10
    );
}

// ---------------------------------------------------------------------
// Panics inside leaf kernels
// ---------------------------------------------------------------------

/// A collector whose zero-copy kernel panics on a poison value, while
/// its cloning drain would have succeeded — the panic must reach the
/// caller, proving the kernel actually ran.
struct PoisonSliceKernel;

impl Collector<i64> for PoisonSliceKernel {
    type Acc = i64;
    type Out = i64;

    fn supplier(&self) -> i64 {
        0
    }

    fn accumulate(&self, acc: &mut i64, item: i64) {
        *acc += item;
    }

    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }

    fn finish(&self, acc: i64) -> i64 {
        acc
    }

    fn leaf_slice(&self, items: &[i64]) -> Option<i64> {
        assert!(
            !items.contains(&13),
            "poison element reached the slice kernel"
        );
        Some(items.iter().sum())
    }

    fn leaf_strided(&self, items: &[i64], step: usize) -> Option<i64> {
        let run: Vec<i64> = items.iter().copied().step_by(step).collect();
        self.leaf_slice(&run)
    }
}

#[test]
fn leaf_kernel_panic_propagates_par_and_seq() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap(); // contains 13

    let r = catch_unwind(AssertUnwindSafe(|| {
        collect_par(
            &pool,
            TieSpliterator::over(list.clone()),
            Arc::new(PoisonSliceKernel),
            8,
        )
    }));
    assert!(r.is_err(), "parallel kernel panic must reach the caller");

    let r = catch_unwind(AssertUnwindSafe(|| {
        collect_seq(TieSpliterator::over(list.clone()), &PoisonSliceKernel)
    }));
    assert!(r.is_err(), "sequential kernel panic must reach the caller");

    // The pool survives for later work, and clean inputs still collect.
    let clean = tabulate(4, |i| (i as i64) + 100).unwrap();
    let ok = collect_par(
        &pool,
        TieSpliterator::over(clean),
        Arc::new(PoisonSliceKernel),
        2,
    );
    assert_eq!(ok, 100 + 101 + 102 + 103);
}

// ---------------------------------------------------------------------
// Dispatch: the zero-copy path must bypass the cloning drain
// ---------------------------------------------------------------------

/// Counts which leaf route ran.
struct RouteCounter {
    slice_leaves: AtomicUsize,
    strided_leaves: AtomicUsize,
    cloned_items: AtomicUsize,
}

impl RouteCounter {
    fn new() -> Self {
        RouteCounter {
            slice_leaves: AtomicUsize::new(0),
            strided_leaves: AtomicUsize::new(0),
            cloned_items: AtomicUsize::new(0),
        }
    }
}

impl Collector<i64> for RouteCounter {
    type Acc = i64;
    type Out = i64;

    fn supplier(&self) -> i64 {
        0
    }

    fn accumulate(&self, acc: &mut i64, item: i64) {
        self.cloned_items.fetch_add(1, Ordering::Relaxed);
        *acc += item;
    }

    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }

    fn finish(&self, acc: i64) -> i64 {
        acc
    }

    fn leaf_slice(&self, items: &[i64]) -> Option<i64> {
        self.slice_leaves.fetch_add(1, Ordering::Relaxed);
        Some(items.iter().sum())
    }

    fn leaf_strided(&self, items: &[i64], step: usize) -> Option<i64> {
        self.strided_leaves.fetch_add(1, Ordering::Relaxed);
        Some(items.iter().step_by(step).sum())
    }
}

#[test]
fn tie_collect_uses_only_slice_kernels() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap();
    let collector = Arc::new(RouteCounter::new());
    let out = collect_par(&pool, TieSpliterator::over(list), Arc::clone(&collector), 8);
    assert_eq!(out, (0..64).sum::<i64>());
    assert_eq!(collector.slice_leaves.load(Ordering::Relaxed), 8);
    assert_eq!(collector.strided_leaves.load(Ordering::Relaxed), 0);
    assert_eq!(
        collector.cloned_items.load(Ordering::Relaxed),
        0,
        "zero-copy collect must never fall back to the cloning drain"
    );
}

#[test]
fn zip_collect_uses_strided_kernels_after_splitting() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap();
    let collector = Arc::new(RouteCounter::new());
    let out = collect_par(&pool, ZipSpliterator::over(list), Arc::clone(&collector), 8);
    assert_eq!(out, (0..64).sum::<i64>());
    assert_eq!(collector.slice_leaves.load(Ordering::Relaxed), 0);
    assert_eq!(collector.strided_leaves.load(Ordering::Relaxed), 8);
    assert_eq!(collector.cloned_items.load(Ordering::Relaxed), 0);
}

#[test]
fn opaque_sources_still_use_the_cloning_drain() {
    let _serial = serial();
    // SliceSpliterator borrowed runs exist; but a collector without
    // kernels — represented here by VecCollector's default on a source
    // whose LeafAccess is hidden — must still work. The simplest opaque
    // source in-tree is a mapped stream; at this level we just check the
    // cloning route of RouteCounter by driving leaves directly.
    let collector = RouteCounter::new();
    let mut sp = SliceSpliterator::new((0..10i64).collect());
    // Consume through the ItemSource drain only.
    let mut acc = collector.supplier();
    sp.for_each_remaining(&mut |x| collector.accumulate(&mut acc, x));
    assert_eq!(acc, 45);
    assert_eq!(collector.cloned_items.load(Ordering::Relaxed), 10);
}

// ---------------------------------------------------------------------
// Route observability: the plobs sink sees the same dispatch the
// test-private counters do
// ---------------------------------------------------------------------

#[test]
fn recorded_tie_collect_reports_slice_route_only() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap();
    let (out, report) = plobs::recorded(|| {
        collect_par(
            &pool,
            TieSpliterator::over(list),
            Arc::new(RouteCounter::new()),
            8,
        )
    });
    assert_eq!(out, (0..64).sum::<i64>());
    assert_eq!(report.routes.zero_copy_slice.leaves, 8);
    assert_eq!(report.routes.zero_copy_slice.items, 64);
    assert_eq!(report.routes.zero_copy_strided.leaves, 0);
    assert_eq!(report.routes.cloning_drain.leaves, 0);
    // Tree shape: 8 leaves of a binary tree = 7 splits and 7 combines,
    // one per depth level 0..=2.
    assert_eq!(report.splits, 7);
    assert_eq!(report.combines, 7);
    assert_eq!(report.split_depths, vec![1, 2, 4]);
    assert_eq!(report.max_split_depth(), 2);
}

#[test]
fn recorded_zip_collect_reports_strided_route_only() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap();
    let (out, report) = plobs::recorded(|| {
        collect_par(
            &pool,
            ZipSpliterator::over(list),
            Arc::new(RouteCounter::new()),
            8,
        )
    });
    assert_eq!(out, (0..64).sum::<i64>());
    assert_eq!(report.routes.zero_copy_strided.leaves, 8);
    assert_eq!(report.routes.zero_copy_strided.items, 64);
    assert_eq!(report.routes.zero_copy_slice.leaves, 0);
    assert_eq!(report.routes.cloning_drain.leaves, 0);
}

// ---------------------------------------------------------------------
// Regression: a strided-only collector on a contiguous leaf (step 1)
// must still take the zero-copy path, not silently drop to the drain
// ---------------------------------------------------------------------

/// Implements only `leaf_strided` — like a collector whose kernel is
/// written once for the general strided shape. Before the step-1
/// fallback fix, `run_leaf` only tried `leaf_slice` on contiguous runs,
/// so this collector was silently demoted to the cloning drain.
struct StridedOnlyCollector {
    strided_leaves: AtomicUsize,
    cloned_items: AtomicUsize,
}

impl StridedOnlyCollector {
    fn new() -> Self {
        StridedOnlyCollector {
            strided_leaves: AtomicUsize::new(0),
            cloned_items: AtomicUsize::new(0),
        }
    }
}

impl Collector<i64> for StridedOnlyCollector {
    type Acc = i64;
    type Out = i64;

    fn supplier(&self) -> i64 {
        0
    }

    fn accumulate(&self, acc: &mut i64, item: i64) {
        self.cloned_items.fetch_add(1, Ordering::Relaxed);
        *acc += item;
    }

    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }

    fn finish(&self, acc: i64) -> i64 {
        acc
    }

    fn leaf_strided(&self, items: &[i64], step: usize) -> Option<i64> {
        self.strided_leaves.fetch_add(1, Ordering::Relaxed);
        Some(items.iter().step_by(step).sum())
    }
}

#[test]
fn strided_only_collector_gets_zero_copy_on_contiguous_leaves() {
    let _serial = serial();
    let pool = ForkJoinPool::new(2);
    let list = tabulate(64, |i| i as i64).unwrap();
    let collector = Arc::new(StridedOnlyCollector::new());
    let (out, report) = plobs::recorded(|| {
        collect_par(&pool, TieSpliterator::over(list), Arc::clone(&collector), 8)
    });
    assert_eq!(out, (0..64).sum::<i64>());
    assert_eq!(
        collector.strided_leaves.load(Ordering::Relaxed),
        8,
        "every contiguous leaf must reach leaf_strided(step = 1)"
    );
    assert_eq!(
        collector.cloned_items.load(Ordering::Relaxed),
        0,
        "no leaf may fall back to the cloning drain"
    );
    assert_eq!(report.routes.zero_copy_strided.leaves, 8);
    assert_eq!(report.routes.cloning_drain.leaves, 0);

    // Sequential collect takes the same route: one whole-source leaf.
    let list = tabulate(16, |i| i as i64).unwrap();
    let collector = StridedOnlyCollector::new();
    let (out, report) = plobs::recorded(|| collect_seq(TieSpliterator::over(list), &collector));
    assert_eq!(out, (0..16).sum::<i64>());
    assert_eq!(collector.strided_leaves.load(Ordering::Relaxed), 1);
    assert_eq!(collector.cloned_items.load(Ordering::Relaxed), 0);
    assert_eq!(report.routes.zero_copy_strided.leaves, 1);
    assert_eq!(report.routes.zero_copy_strided.items, 16);
}
