//! Model-based tests for the truncation adapters.
//!
//! `limit`/`skip`/`peek` over Slice/Tie/Zip sources, split recursively
//! at every leaf size, are compared against the obvious `Vec` model.
//! This exercises the allowance bookkeeping in
//! `LimitSpliterator::try_split` / `SkipSpliterator::try_split` at its
//! edges: a limit smaller than the prefix, a skip spanning the split
//! point, `remaining == 1` with a huge inner, and non-exactly-sized
//! (filtered) inners where splitting must be refused rather than
//! miscounted.

use jstreams::ops::FilterSpliterator;
use jstreams::{
    Characteristics, FilterStage, FusedSpliterator, IdentityStage, ItemSource, LeafAccess,
    LimitSpliterator, MapStage, PeekSpliterator, SkipSpliterator, SliceSpliterator, Spliterator,
    TieSpliterator, VecCollector, ZipSpliterator,
};
use powerlist::tabulate;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Splits `s` down to `leaf`-sized pieces exactly like the parallel
/// collect driver, draining prefix before suffix (encounter order).
fn split_drain<T, S: Spliterator<T>>(mut s: S, leaf: usize, out: &mut Vec<T>) {
    if s.estimate_size() <= leaf.max(1) {
        s.for_each_remaining(&mut |x| out.push(x));
        return;
    }
    match s.try_split() {
        Some(prefix) => {
            split_drain(prefix, leaf, out);
            split_drain(s, leaf, out);
        }
        None => s.for_each_remaining(&mut |x| out.push(x)),
    }
}

fn drained<T, S: Spliterator<T>>(s: S, leaf: usize) -> Vec<T> {
    let mut out = Vec::new();
    split_drain(s, leaf, &mut out);
    out
}

// ---------------------------------------------------------------------
// Exhaustive sweeps over order-preserving sources (Slice, Tie)
// ---------------------------------------------------------------------

#[test]
fn limit_over_slice_every_split_granularity() {
    for len in [0usize, 1, 2, 3, 7, 8, 13, 16] {
        let model: Vec<i64> = (0..len as i64).collect();
        for limit in 0..=len + 2 {
            for leaf in 1..=len.max(1) {
                let s = LimitSpliterator::new(SliceSpliterator::new(model.clone()), limit);
                assert_eq!(
                    drained(s, leaf),
                    model[..limit.min(len)],
                    "len={len} limit={limit} leaf={leaf}"
                );
            }
        }
    }
}

#[test]
fn skip_over_slice_every_split_granularity() {
    for len in [0usize, 1, 2, 3, 7, 8, 13, 16] {
        let model: Vec<i64> = (0..len as i64).collect();
        for skip in 0..=len + 2 {
            for leaf in 1..=len.max(1) {
                let s = SkipSpliterator::new(SliceSpliterator::new(model.clone()), skip);
                assert_eq!(
                    drained(s, leaf),
                    model[skip.min(len)..],
                    "len={len} skip={skip} leaf={leaf}"
                );
            }
        }
    }
}

#[test]
fn limit_and_skip_over_tie_every_split_granularity() {
    for exp in 0..=5u32 {
        let len = 1usize << exp;
        let model: Vec<i64> = (0..len as i64).collect();
        for k in 0..=len + 1 {
            for leaf in 1..=len {
                let list = tabulate(len, |i| i as i64).unwrap();
                let s = LimitSpliterator::new(TieSpliterator::over(list), k);
                assert_eq!(
                    drained(s, leaf),
                    model[..k.min(len)],
                    "tie limit len={len} k={k} leaf={leaf}"
                );
                let list = tabulate(len, |i| i as i64).unwrap();
                let s = SkipSpliterator::new(TieSpliterator::over(list), k);
                assert_eq!(
                    drained(s, leaf),
                    model[k.min(len)..],
                    "tie skip len={len} k={k} leaf={leaf}"
                );
            }
        }
    }
}

#[test]
fn remaining_one_with_huge_inner() {
    // The `remaining < 2` guard: a limit of 1 over a large source must
    // never split (a split would strand the allowance) and must yield
    // exactly the first element at any granularity.
    let model: Vec<i64> = (0..1024).collect();
    for leaf in [1usize, 2, 64, 1024] {
        let mut s = LimitSpliterator::new(SliceSpliterator::new(model.clone()), 1);
        assert!(s.try_split().is_none(), "limit 1 must refuse to split");
        assert_eq!(drained(s, leaf), vec![0]);
    }
    // Skip of len-1: one survivor, however the tree splits.
    for leaf in [1usize, 3, 128] {
        let s = SkipSpliterator::new(SliceSpliterator::new(model.clone()), 1023);
        assert_eq!(drained(s, leaf), vec![1023]);
    }
}

// ---------------------------------------------------------------------
// Zip: splits permute encounter order, so compare counts + multiset
// and pin the unsplit (sequential) order exactly
// ---------------------------------------------------------------------

#[test]
fn truncation_over_zip_counts_and_multisets() {
    for exp in 1..=4u32 {
        let len = 1usize << exp;
        let model: Vec<i64> = (0..len as i64).collect();
        for k in 0..=len {
            // Sequential (leaf >= len): zip drains in storage order, so
            // the model applies exactly.
            let list = tabulate(len, |i| i as i64).unwrap();
            let s = LimitSpliterator::new(ZipSpliterator::over(list), k);
            assert_eq!(drained(s, len), model[..k], "seq zip limit");
            let list = tabulate(len, |i| i as i64).unwrap();
            let s = SkipSpliterator::new(ZipSpliterator::over(list), k);
            assert_eq!(drained(s, len), model[k..], "seq zip skip");

            // Split: order is a residue-class permutation, but the
            // element *count* must still be exact and every element
            // distinct and drawn from the source.
            for leaf in 1..len {
                let list = tabulate(len, |i| i as i64).unwrap();
                let mut got = drained(LimitSpliterator::new(ZipSpliterator::over(list), k), leaf);
                assert_eq!(got.len(), k, "zip limit count len={len} k={k} leaf={leaf}");
                got.sort_unstable();
                got.dedup();
                assert_eq!(got.len(), k, "zip limit yielded duplicates");
                assert!(got.iter().all(|x| model.contains(x)));

                let list = tabulate(len, |i| i as i64).unwrap();
                let mut got = drained(SkipSpliterator::new(ZipSpliterator::over(list), k), leaf);
                assert_eq!(
                    got.len(),
                    len - k,
                    "zip skip count len={len} k={k} leaf={leaf}"
                );
                got.sort_unstable();
                got.dedup();
                assert_eq!(got.len(), len - k, "zip skip yielded duplicates");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Non-exactly-sized inners: splitting must be refused, not miscounted
// ---------------------------------------------------------------------

#[test]
fn truncation_over_filter_refuses_to_split() {
    // filter keeps evens of 0..8 => [0, 2, 4, 6]; skip 3 => [6].
    // With allowance arithmetic on the filter's upper-bound sizes, a
    // split would let the prefix absorb skip debt it cannot fulfil and
    // leak 4 into the output. The SIZED|SUBSIZED gate forbids the split.
    let inner = FilterSpliterator::new(
        SliceSpliterator::new((0..8i64).collect()),
        Arc::new(|x: &i64| x % 2 == 0),
    );
    let mut s = SkipSpliterator::new(inner, 3);
    assert!(
        s.try_split().is_none(),
        "skip over a non-SIZED inner must not split"
    );
    assert_eq!(drained(s, 1), vec![6]);

    let inner = FilterSpliterator::new(
        SliceSpliterator::new((0..8i64).collect()),
        Arc::new(|x: &i64| x % 2 == 0),
    );
    let mut s = LimitSpliterator::new(inner, 3);
    assert!(
        s.try_split().is_none(),
        "limit over a non-SIZED inner must not split"
    );
    assert_eq!(drained(s, 1), vec![0, 2, 4]);
}

#[test]
fn filtered_truncations_match_model_at_every_granularity() {
    for len in [4usize, 8, 12, 16] {
        let model: Vec<i64> = (0..len as i64).filter(|x| x % 3 != 0).collect();
        for k in 0..=model.len() + 1 {
            for leaf in 1..=len {
                let inner = FilterSpliterator::new(
                    SliceSpliterator::new((0..len as i64).collect()),
                    Arc::new(|x: &i64| x % 3 != 0),
                );
                let got = drained(LimitSpliterator::new(inner, k), leaf);
                assert_eq!(got, model[..k.min(model.len())], "filter+limit");

                let inner = FilterSpliterator::new(
                    SliceSpliterator::new((0..len as i64).collect()),
                    Arc::new(|x: &i64| x % 3 != 0),
                );
                let got = drained(SkipSpliterator::new(inner, k), leaf);
                assert_eq!(got, model[k.min(model.len())..], "filter+skip");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Truncation over fused chains: allowance math needs exact per-element
// counting, so limit/skip must refuse both the fused-borrow leaf route
// and (when the chain filters, dropping SIZED) any split at all.
// ---------------------------------------------------------------------

/// limit ∘ filter ∘ map as one fused chain under a LimitSpliterator:
/// matches the model at every granularity, never splits (the filter
/// stage drops SIZED|SUBSIZED), and never takes the fused-borrow route.
#[test]
fn limit_over_filtered_fused_chain_matches_model_and_refuses_routes() {
    let chain_of = || {
        FusedSpliterator::new(
            SliceSpliterator::new((0..16i64).collect()),
            FilterStage::new(MapStage::new(IdentityStage, |x: i64| x * 2), |x: &i64| {
                x % 3 != 0
            }),
        )
    };
    // evens of 0..32 with multiples of 3 removed: 2,4,8,10,14,...
    let model: Vec<i64> = (0..16i64).map(|x| x * 2).filter(|x| x % 3 != 0).collect();
    for k in 0..=model.len() + 1 {
        for leaf in [1usize, 2, 5, 16] {
            let mut s = LimitSpliterator::new(chain_of(), k);
            assert!(
                s.try_split().is_none(),
                "limit over a filtering fused chain must not split (k={k})"
            );
            assert!(
                LeafAccess::<i64>::fused_leaf(&mut s, &VecCollector).is_none(),
                "truncation must refuse the fused-borrow route (k={k})"
            );
            assert_eq!(
                drained(s, leaf),
                model[..k.min(model.len())],
                "k={k} leaf={leaf}"
            );
        }
    }
}

/// skip ∘ map as a fused chain under a SkipSpliterator: the chain is
/// exact (no filter), so SIZED survives and skip may split — but the
/// truncation adapter still refuses the fused-borrow leaf route, since
/// its allowance debits elements one at a time.
#[test]
fn skip_over_mapped_fused_chain_matches_model_and_refuses_fused_route() {
    let model: Vec<i64> = (0..16i64).map(|x| x + 100).collect();
    for k in 0..=16usize + 1 {
        for leaf in [1usize, 3, 8, 16] {
            let inner = FusedSpliterator::new(
                SliceSpliterator::new((0..16i64).collect()),
                MapStage::new(IdentityStage, |x: i64| x + 100),
            );
            assert!(inner.has_characteristics(Characteristics::SIZED));
            let mut s = SkipSpliterator::new(inner, k);
            assert!(
                LeafAccess::<i64>::fused_leaf(&mut s, &VecCollector).is_none(),
                "truncation must refuse the fused-borrow route (k={k})"
            );
            assert_eq!(
                drained(s, leaf),
                model[k.min(model.len())..],
                "k={k} leaf={leaf}"
            );
        }
    }
}

/// The same compositions built through the Stream API (`map`/`filter`
/// extend the fused chain, then `limit`/`skip` wrap it) agree with the
/// iterator model, sequential and parallel.
#[test]
fn stream_truncation_over_fused_chains_matches_model() {
    use jstreams::stream_support;
    let raw: Vec<i64> = (0..64).collect();
    let limited_model: Vec<i64> = raw
        .iter()
        .map(|x| x * 2)
        .filter(|x| x % 3 != 0)
        .take(10)
        .collect();
    let skipped_model: Vec<i64> = raw.iter().map(|x| x + 7).skip(20).collect();
    for parallel in [false, true] {
        let limited = stream_support(SliceSpliterator::new(raw.clone()), parallel)
            .map(|x| x * 2)
            .filter(|x| x % 3 != 0)
            .limit(10)
            .to_vec();
        assert_eq!(
            limited, limited_model,
            "limit∘filter∘map, parallel={parallel}"
        );

        let skipped = stream_support(SliceSpliterator::new(raw.clone()), parallel)
            .map(|x| x + 7)
            .skip(20)
            .to_vec();
        assert_eq!(skipped, skipped_model, "skip∘map, parallel={parallel}");
    }
}

// ---------------------------------------------------------------------
// Peek: observes exactly the surviving elements, under any splitting
// ---------------------------------------------------------------------

#[test]
fn peek_sees_exactly_the_emitted_elements() {
    for len in [1usize, 5, 8, 16] {
        for leaf in 1..=len {
            let seen = Arc::new(AtomicUsize::new(0));
            let s2 = Arc::clone(&seen);
            let s = PeekSpliterator::new(
                SliceSpliterator::new((0..len as i64).collect()),
                Arc::new(move |_: &i64| {
                    s2.fetch_add(1, Ordering::Relaxed);
                }),
            );
            let out = drained(s, leaf);
            assert_eq!(out.len(), len);
            assert_eq!(seen.load(Ordering::Relaxed), len, "len={len} leaf={leaf}");
        }
    }
}

#[test]
fn peek_inside_limit_observes_only_the_allowance() {
    let seen = Arc::new(AtomicUsize::new(0));
    for leaf in [1usize, 7, 100] {
        seen.store(0, Ordering::Relaxed);
        let s2 = Arc::clone(&seen);
        let s = LimitSpliterator::new(
            PeekSpliterator::new(
                SliceSpliterator::new((0..100i64).collect()),
                Arc::new(move |_: &i64| {
                    s2.fetch_add(1, Ordering::Relaxed);
                }),
            ),
            10,
        );
        let out = drained(s, leaf);
        assert_eq!(out, (0..10i64).collect::<Vec<_>>());
        assert_eq!(
            seen.load(Ordering::Relaxed),
            10,
            "peek under limit must only see emitted elements (leaf={leaf})"
        );
    }
}

// ---------------------------------------------------------------------
// Randomised compositions
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_skip_then_limit_matches_model(
        len in 0usize..200,
        skip in 0usize..220,
        limit in 0usize..220,
        leaf in 1usize..64,
    ) {
        let model: Vec<i64> = (0..len as i64).collect();
        let expect: Vec<i64> = model.iter().copied().skip(skip).take(limit).collect();
        let s = LimitSpliterator::new(
            SkipSpliterator::new(SliceSpliterator::new(model.clone()), skip),
            limit,
        );
        prop_assert_eq!(drained(s, leaf), expect);
    }

    #[test]
    fn random_limit_then_skip_matches_model(
        len in 0usize..200,
        skip in 0usize..220,
        limit in 0usize..220,
        leaf in 1usize..64,
    ) {
        let model: Vec<i64> = (0..len as i64).collect();
        let expect: Vec<i64> = model.iter().copied().take(limit).skip(skip).collect();
        let s = SkipSpliterator::new(
            LimitSpliterator::new(SliceSpliterator::new(model.clone()), limit),
            skip,
        );
        prop_assert_eq!(drained(s, leaf), expect);
    }

    #[test]
    fn truncations_preserve_sized_but_not_power2(
        len_exp in 0u32..6,
        k in 0usize..70,
    ) {
        let len = 1usize << len_exp;
        let list = tabulate(len, |i| i as i64).unwrap();
        let s = LimitSpliterator::new(TieSpliterator::over(list), k);
        prop_assert!(s.has_characteristics(Characteristics::SIZED));
        prop_assert!(!s.has_characteristics(Characteristics::POWER2));
        prop_assert_eq!(s.estimate_size(), k.min(len));
    }
}
