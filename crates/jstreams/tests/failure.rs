//! Failure injection: misbehaving collectors, spliterators, and hooks.
//!
//! The streams stack must fail *cleanly*: panics inside user code
//! propagate to the caller of `collect` (like Java's stream exceptions),
//! the pool survives for subsequent work, and sources that lie about
//! their size degrade to correct (if suboptimal) execution rather than
//! corrupting results.

// These tests deliberately exercise the legacy collect entry points.
#![allow(deprecated)]

use forkjoin::ForkJoinPool;
use jstreams::{
    collect_par, stream_support, Characteristics, Collector, ItemSource, LeafAccess,
    SliceSpliterator, Spliterator, VecCollector,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A collector whose accumulator panics on a poison value.
struct PanickyCollector;

impl Collector<i64> for PanickyCollector {
    type Acc = Vec<i64>;
    type Out = Vec<i64>;

    fn supplier(&self) -> Vec<i64> {
        Vec::new()
    }

    fn accumulate(&self, acc: &mut Vec<i64>, item: i64) {
        assert!(item != 13, "poison element reached the accumulator");
        acc.push(item);
    }

    fn combine(&self, mut l: Vec<i64>, mut r: Vec<i64>) -> Vec<i64> {
        l.append(&mut r);
        l
    }

    fn finish(&self, acc: Vec<i64>) -> Vec<i64> {
        acc
    }
}

#[test]
fn accumulator_panic_propagates_and_pool_survives() {
    let pool = ForkJoinPool::new(2);
    let data: Vec<i64> = (0..100).collect(); // contains 13
    let r = catch_unwind(AssertUnwindSafe(|| {
        collect_par(
            &pool,
            SliceSpliterator::new(data),
            Arc::new(PanickyCollector),
            8,
        )
    }));
    assert!(r.is_err(), "panic must reach the caller");
    // The pool still works afterwards.
    let ok = collect_par(
        &pool,
        SliceSpliterator::new(vec![1i64, 2, 3]),
        Arc::new(VecCollector),
        1,
    );
    assert_eq!(ok, vec![1, 2, 3]);
}

#[test]
fn combiner_panic_propagates() {
    struct BadCombiner;
    impl Collector<i64> for BadCombiner {
        type Acc = i64;
        type Out = i64;
        fn supplier(&self) -> i64 {
            0
        }
        fn accumulate(&self, acc: &mut i64, item: i64) {
            *acc += item;
        }
        fn combine(&self, _: i64, _: i64) -> i64 {
            panic!("combiner bang");
        }
        fn finish(&self, acc: i64) -> i64 {
            acc
        }
    }
    let pool = ForkJoinPool::new(2);
    let r = catch_unwind(AssertUnwindSafe(|| {
        collect_par(
            &pool,
            SliceSpliterator::new((0..64i64).collect()),
            Arc::new(BadCombiner),
            8,
        )
    }));
    assert!(r.is_err());
}

/// A spliterator that over-reports its size by 10× but otherwise
/// behaves: the driver splits more eagerly than ideal, and must still
/// produce the correct, ordered result.
struct SizeLiar {
    inner: SliceSpliterator<i64>,
}

impl ItemSource<i64> for SizeLiar {
    fn try_advance(&mut self, action: &mut dyn FnMut(i64)) -> bool {
        self.inner.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(i64)) {
        self.inner.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size() * 10
    }
}

impl LeafAccess<i64> for SizeLiar {}

impl Spliterator<i64> for SizeLiar {
    fn try_split(&mut self) -> Option<Self> {
        self.inner.try_split().map(|inner| SizeLiar { inner })
    }

    fn characteristics(&self) -> Characteristics {
        // Deliberately *not* SIZED: the estimate is a lie.
        Characteristics::ORDERED
    }
}

#[test]
fn overestimating_source_still_collects_correctly() {
    let pool = ForkJoinPool::new(2);
    let out = collect_par(
        &pool,
        SizeLiar {
            inner: SliceSpliterator::new((0..200i64).collect()),
        },
        Arc::new(VecCollector),
        4,
    );
    assert_eq!(out, (0..200).collect::<Vec<_>>());
}

/// A spliterator that refuses to split: the parallel driver degrades to
/// a single sequential leaf.
struct Unsplittable {
    inner: SliceSpliterator<i64>,
}

impl ItemSource<i64> for Unsplittable {
    fn try_advance(&mut self, action: &mut dyn FnMut(i64)) -> bool {
        self.inner.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(i64)) {
        self.inner.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size()
    }
}

impl LeafAccess<i64> for Unsplittable {}

impl Spliterator<i64> for Unsplittable {
    fn try_split(&mut self) -> Option<Self> {
        None
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::ORDERED | Characteristics::SIZED
    }
}

#[test]
fn unsplittable_source_runs_sequentially() {
    let pool = ForkJoinPool::new(4);
    let out = collect_par(
        &pool,
        Unsplittable {
            inner: SliceSpliterator::new((0..50i64).collect()),
        },
        Arc::new(VecCollector),
        1,
    );
    assert_eq!(out, (0..50).collect::<Vec<_>>());
}

#[test]
fn hook_panic_propagates() {
    // A hooked zip spliterator whose split hook panics: the collect
    // fails loudly instead of producing a wrong answer.
    use jstreams::{HookedZipSpliterator, ZipSpliterator};
    let list = powerlist::tabulate(64, |i| i as i64).unwrap();
    let hook: Arc<dyn Fn(&mut u32) -> u32 + Send + Sync> = Arc::new(|local| {
        *local += 1;
        assert!(*local < 3, "hook bang at depth 3");
        *local
    });
    let sp = HookedZipSpliterator::new(ZipSpliterator::over(list), 0u32, hook);
    let r = catch_unwind(AssertUnwindSafe(|| {
        stream_support(sp, true).with_leaf_size(1).to_vec()
    }));
    assert!(r.is_err());
}

#[test]
fn panic_in_sequential_collect_also_propagates() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        stream_support(SliceSpliterator::new((0..20i64).collect()), false).collect(PanickyCollector)
    }));
    assert!(r.is_err());
}
