//! Fault-tolerant execution sessions, end to end: deadlines, external
//! cancellation, panic containment and pool reuse through the public
//! `Stream::try_collect` surface.
//!
//! The cooperative checkpoints sit at split, leaf-entry and combine
//! boundaries, so the worst-case overrun past a tripped deadline or
//! token is one leaf's worth of work — the tests bound that overrun
//! with wall-clock margins far below each workload's full runtime.

use forkjoin::ForkJoinPool;
use jstreams::{
    stream_support, CancelReason, CancelToken, Collector, ExecConfig, ExecError, ReduceCollector,
    SliceSpliterator, VecCollector,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Degree-8 Horner evaluation — the paper's polynomial workload shape.
fn horner(x: f64) -> f64 {
    let coeffs = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0, 9.0];
    coeffs.iter().fold(0.0, |acc, c| acc * x + c)
}

#[test]
fn one_ms_deadline_on_large_polynomial_eval_is_honoured() {
    // 2^24 elements through a map+reduce polynomial evaluation: far
    // more work than fits in a millisecond on any machine this runs on.
    let n = 1usize << 24;
    let data: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
    let pool = Arc::new(ForkJoinPool::new(2));
    let cfg = ExecConfig::par()
        .with_pool(pool)
        .with_leaf_size(1 << 12)
        .with_deadline(Duration::from_millis(1));

    let t0 = Instant::now();
    let result = stream_support(SliceSpliterator::new(data), true)
        .map(horner)
        .try_collect(ReduceCollector::new(0.0f64, |a, b| a + b), &cfg);
    let wall = t0.elapsed();

    match result {
        Err(ExecError::DeadlineExceeded { elapsed }) => {
            assert!(elapsed >= Duration::from_millis(1));
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.map(|_| ())),
    }
    // Bounded overrun: the driver stops at the next checkpoint, not
    // after finishing the whole 2^24-element evaluation. Wall-clock
    // margins are inherently flaky on loaded CI machines, so this test
    // only keeps a last-resort sanity bound; the *precise* property —
    // zero leaves started after a checkpoint observes the trip — is
    // proven schedule-by-schedule in
    // `crates/plcheck/tests/cancel_models.rs`
    // (`checkpoint_pruning_has_zero_leaves_after_observed_trip`), where
    // deadlines run on plcheck's deterministic virtual clock.
    assert!(
        wall < Duration::from_secs(60),
        "deadline overrun not bounded even by the generous sanity margin: {wall:?}"
    );
}

#[test]
fn cancellation_race_from_another_thread_stops_the_collect() {
    // A second thread trips the token mid-collect; the driver must
    // return `Cancelled` instead of finishing the full reduction.
    let n = 1usize << 22;
    let data: Vec<f64> = (0..n).map(|i| (i % 89) as f64 / 89.0).collect();
    let pool = Arc::new(ForkJoinPool::new(2));
    let token = CancelToken::new();
    let cfg = ExecConfig::par()
        .with_pool(pool)
        .with_leaf_size(1 << 10)
        .with_cancel_token(token.clone());

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel(CancelReason::User);
        })
    };
    let result = stream_support(SliceSpliterator::new(data), true)
        .map(horner)
        .try_collect(ReduceCollector::new(0.0f64, |a, b| a + b), &cfg);
    canceller.join().unwrap();

    // Either the cancel landed mid-flight (the interesting case) or the
    // machine finished 2^22 Horner evaluations within ~2 ms (fast CI —
    // accept the clean result, the race is inherently timing-bound).
    match result {
        Err(ExecError::Cancelled) => {}
        Ok(_) => {}
        other => panic!("expected Cancelled or Ok, got {:?}", other.map(|_| ())),
    }
    assert_eq!(token.reason(), Some(CancelReason::User));
}

#[test]
fn pre_cancelled_token_fails_before_any_work() {
    let token = CancelToken::new();
    token.cancel(CancelReason::User);
    let cfg = ExecConfig::par().with_cancel_token(token);
    let result = stream_support(SliceSpliterator::new((0..1024i64).collect()), true)
        .try_collect(VecCollector, &cfg);
    assert!(matches!(result, Err(ExecError::Cancelled)));
}

/// Collector whose accumulator panics on one poison value.
struct PoisonCollector(i64);

impl Collector<i64> for PoisonCollector {
    type Acc = i64;
    type Out = i64;
    fn supplier(&self) -> i64 {
        0
    }
    fn accumulate(&self, acc: &mut i64, item: i64) {
        assert!(item != self.0, "poison {item}");
        *acc += item;
    }
    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }
    fn finish(&self, acc: i64) -> i64 {
        acc
    }
}

#[test]
fn panic_trips_the_token_and_cancels_sibling_leaves() {
    // One worker, leaf size 1, poison at the very first element: the
    // panic is contained at leaf 0 and trips the session token, so the
    // remaining leaves are pruned at their entry checkpoints — the
    // recorded report must show cancel events alongside the error.
    let pool = Arc::new(ForkJoinPool::new(1));
    let cfg = ExecConfig::par()
        .with_pool(Arc::clone(&pool))
        .with_leaf_size(1);
    let data: Vec<i64> = (0..64).collect();
    let (result, report) = plobs::recorded(|| {
        stream_support(SliceSpliterator::new(data), true).try_collect(PoisonCollector(0), &cfg)
    });
    match result {
        Err(e @ ExecError::Panicked(_)) => {
            assert_eq!(e.panic_message(), Some("poison 0"));
        }
        other => panic!("expected Panicked, got {:?}", other.map(|_| ())),
    }
    assert!(
        report.cancels_panic > 0,
        "sibling subtrees must observe the panic-tripped token: {report:?}"
    );

    // The same pool completes a clean follow-up collect: no poisoned
    // state survives the contained panic.
    let follow_up = stream_support(SliceSpliterator::new((0..64i64).collect()), true).try_collect(
        PoisonCollector(-1),
        &ExecConfig::par().with_pool(pool).with_leaf_size(8),
    );
    assert_eq!(follow_up.ok(), Some((0..64).sum()));
}

#[test]
fn deadline_error_reports_elapsed_at_least_the_budget() {
    // Zero-budget deadline: expired before the first checkpoint.
    let cfg = ExecConfig::par().with_deadline(Duration::ZERO);
    let result = stream_support(SliceSpliterator::new((0..256i64).collect()), true)
        .try_collect(VecCollector, &cfg);
    match result {
        Err(ExecError::DeadlineExceeded { elapsed }) => {
            assert!(elapsed >= Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn sequential_route_honours_sessions_too() {
    // Seq mode shares the same session checkpoints (leaf granularity).
    let token = CancelToken::new();
    token.cancel(CancelReason::User);
    let result = stream_support(SliceSpliterator::new((0..64i64).collect()), false)
        .try_collect(VecCollector, &ExecConfig::seq().with_cancel_token(token));
    assert!(matches!(result, Err(ExecError::Cancelled)));

    let ok = stream_support(SliceSpliterator::new((0..64i64).collect()), false)
        .try_collect(VecCollector, &ExecConfig::seq());
    assert_eq!(ok.ok(), Some((0..64).collect::<Vec<_>>()));
}
