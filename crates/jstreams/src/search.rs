//! Short-circuiting search terminals: the quantifier half of Java's
//! Stream API (`anyMatch` / `allMatch` / `noneMatch` / `findFirst` /
//! `findAny`), executed by a driver that prunes the fork-join tree
//! instead of draining it.
//!
//! The driver reuses the collect machinery wholesale — split policies,
//! the tuner's plan cache, pool fallbacks, and the fused-borrow leaf
//! protocol (predicates run push-style over *borrowed* source runs, so
//! a `map`/`filter` chain is searched without materializing it) — but
//! replaces the combine phase with shared search state and adds two
//! short-circuit mechanisms:
//!
//! * **`Found` cancellation** — when a leaf records a decisive hit
//!   (`any_match`, `find_any`), it first publishes the hit to the shared
//!   sink and *then* trips the run's internal
//!   [`CancelToken`] with [`CancelReason::Found`]; every sibling subtree
//!   observes the trip at its next split/leaf checkpoint and returns
//!   without scanning (one [`Event::EarlyExit`] per pruned subtree
//!   root). Record-before-cancel is the invariant that makes the
//!   short-circuit lossless: any task that observes `Found` can rely on
//!   the sink already holding an answer.
//! * **Encounter-order pruning** (`find_first`) — a hit is never
//!   decisive (a left-er subtree may still hold an earlier one), so
//!   instead of cancelling, leaves record hits into a [`FirstHit`] cell
//!   carrying a shared atomic "best prefix index"; a subtree whose base
//!   encounter index is at or past the recorded best abandons itself at
//!   its node-entry checkpoint.
//!
//! The indices compared come from one of two keyspaces, fixed once per
//! run (the private `OrderMode`):
//!
//! * **Ranked** — when the root source publishes exact encounter ranks
//!   ([`Spliterator::encounter_rank`]: descriptor-backed sources report
//!   physical storage indices, monotone in encounter order), every hit
//!   is keyed by its true rank and every subtree prunes against its own
//!   rank base. This is the only sound keyspace over sources whose
//!   splits *interleave* (zip decomposition: the split-off "prefix" is
//!   the even positions, not an encounter-order prefix), and it is what
//!   keeps `find_first` deterministic — and parallel — over
//!   zip-decomposed power streams (the same protocol as the JPLF
//!   mirror's physical-index `FirstHit`).
//! * **Virtual** — otherwise, indices are derived from split structure:
//!   at every split, the suffix subtree's base advances by the prefix's
//!   `estimate_size()`. For non-SIZED pipelines (filter chains) that
//!   estimate is an upper bound, so leaf survivor ranges stay disjoint
//!   and ordered — virtual indices increase strictly with encounter
//!   order, which is all the pruning comparison needs. This is only
//!   sound when `try_split` cuts true prefixes
//!   ([`Spliterator::prefix_splits`]); a rank-less source that also
//!   interleaves (a filter chain over a zip decomposition) sends
//!   `find_first` down a guarded sequential scan instead.
//!
//! In either keyspace, pruning at `bound ≤ base` can never lose the
//! minimal hit: every index in the pruned subtree is ≥ its base ≥ an
//! already-recorded hit.
//!
//! A search run executes on a **private** token
//! ([`SearchSession`]): `Found` (and panic containment) must never trip
//! a caller-held token that outlives the run. The caller's token is
//! still observed at every checkpoint, so external cancellation and
//! deadlines behave exactly as in `try_collect`.
//!
//! Before engaging the pool, the parallel driver scans a short root
//! prefix of SIZED sources inline on the calling thread
//! (`ROOT_PROBE` elements): a
//! front-loaded hit — the case short-circuiting exists for — then
//! answers without paying a single pool round-trip, and since the
//! prefix is first in encounter order, a probe hit is globally first
//! and decisive for every terminal, `find_first` included.

use crate::collect::default_leaf_size;
use crate::exec::{ExecConfig, ExecError, ExecMode, ExecSession, Interrupt};
use crate::spliterator::Spliterator;
use forkjoin::{
    current_probe, demand_split, join, CancelReason, CancelToken, ForkJoinPool, SplitPolicy,
};
use parking_lot::Mutex;
use plobs::{Event, FallbackReason, LeafRoute};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A search run's cancellation context: a fresh private token (the
/// `Found` short-circuit channel, also used for panic containment)
/// layered over the caller's optional token — observed at every
/// checkpoint, never tripped by the search itself.
///
/// Exposed so the JPLF executors (and concurrency models) can drive
/// their own search recursions through the exact protocol the streams
/// driver uses.
#[derive(Clone, Debug)]
pub struct SearchSession {
    inner: ExecSession,
    caller: Option<CancelToken>,
}

impl SearchSession {
    /// Arms a session from `cfg`: a private token plus `cfg`'s deadline;
    /// `cfg`'s own cancel token is kept aside for observation only.
    pub fn new(cfg: &ExecConfig) -> Self {
        SearchSession {
            inner: ExecSession::private(cfg),
            caller: cfg.cancel_token().cloned(),
        }
    }

    /// The run's private token (what `Found` trips).
    pub fn token(&self) -> &CancelToken {
        self.inner.token()
    }

    /// Publishes a decisive hit: trips the private token with
    /// [`CancelReason::Found`]. Callers must have recorded the hit in
    /// shared state *before* calling this (record-before-cancel).
    /// Returns `true` when this call won the trip.
    pub fn found(&self) -> bool {
        self.token().cancel(CancelReason::Found)
    }

    /// A cooperative checkpoint. `Ok(false)` — keep going. `Ok(true)` —
    /// the run short-circuited via `Found`: the subtree should count
    /// itself pruned and return *success* (the answer is already in the
    /// shared sink). `Err` — a real interruption (panic, caller cancel,
    /// deadline) that must propagate to the root.
    pub fn check(&self) -> Result<bool, Interrupt> {
        if let Some(t) = &self.caller {
            if let Some(r) = t.reason() {
                // Propagate the caller's cancellation into the private
                // token once, so sibling tasks observe it without
                // re-reading the caller's token (first-cancel-wins keeps
                // an earlier Found from being overwritten). A caller
                // token carrying `Found` (reused from some earlier
                // search) is demoted to `User`: only *this* run's leaves
                // may claim the answered state, and a foreign `Found`
                // has no hit in this run's sink to back it.
                let r = match r {
                    CancelReason::Found => CancelReason::User,
                    other => other,
                };
                self.token().cancel(r);
            }
        }
        match self.inner.check() {
            Ok(()) => Ok(false),
            Err(Interrupt::Cancelled(CancelReason::Found)) => Ok(true),
            Err(i) => Err(i),
        }
    }

    /// Runs user code (predicates) under panic containment; see
    /// [`ExecSession::run`].
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> Result<R, Interrupt> {
        self.inner.run(f)
    }

    /// Converts a root-level interrupt into the public error. `Found`
    /// never reaches here: checkpoints convert it to success.
    pub fn error_of(&self, interrupt: Interrupt) -> ExecError {
        self.inner.error_of(interrupt)
    }
}

/// Which keyspace a search run's encounter indices live in. Fixed once
/// at the root before the recursion starts, so every hit and every
/// pruning comparison in one run speaks the same language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OrderMode {
    /// Indices are derived from split structure: each suffix subtree's
    /// base advances by the prefix's size estimate. Sound only over
    /// sources whose `try_split` cuts true encounter-order prefixes
    /// ([`Spliterator::prefix_splits`]).
    Virtual,
    /// Indices are the source's own exact encounter ranks
    /// ([`Spliterator::encounter_rank`]): each node prunes against its
    /// own rank base and each leaf keys hits at `base + j·step`. Sound
    /// under arbitrary split geometry, including zip's interleaving
    /// parity splits.
    Ranked,
}

/// The leaf hit-key lattice for `mode`: the leaf's j-th delivered
/// element is keyed `base + j·step`.
///
/// In `Ranked` mode the source *must* still carry a rank — rank-ness is
/// preserved under `try_split` by contract, and the mode was chosen at
/// the root because the root had one. The release fallback `(0, 1)`
/// merely under-keys hits (debug builds assert instead).
fn leaf_keys<T, S: Spliterator<T>>(source: &S, mode: OrderMode, base: usize) -> (usize, usize) {
    match mode {
        OrderMode::Virtual => (base, 1),
        OrderMode::Ranked => {
            let rank = source.encounter_rank();
            debug_assert!(
                rank.is_some(),
                "Ranked search reached a rank-less node: encounter_rank \
                 must be preserved under try_split"
            );
            rank.unwrap_or((0, 1))
        }
    }
}

/// The `find_first` protocol cell: the best (lowest encounter index)
/// hit so far, plus an atomic copy of its index that subtrees read to
/// decide pruning.
///
/// The mutex-guarded slot is the source of truth — `offer` only
/// improves it, and the atomic bound is updated inside the critical
/// section, so the bound is monotonically decreasing and never lower
/// than a real recorded hit. A stale (too high) bound read merely
/// fails to prune; it can never prune a subtree that could still win.
#[derive(Debug, Default)]
pub struct FirstHit<T> {
    best: AtomicUsize,
    slot: Mutex<Option<(usize, T)>>,
}

impl<T> FirstHit<T> {
    /// An empty cell (bound = `usize::MAX`).
    pub fn new() -> Self {
        FirstHit {
            best: AtomicUsize::new(usize::MAX),
            slot: Mutex::new(None),
        }
    }

    /// Offers a hit at encounter index `idx`; keeps it only when it is
    /// strictly earlier than the current record. Returns `true` when
    /// the record improved.
    pub fn offer(&self, idx: usize, value: T) -> bool {
        let mut slot = self.slot.lock();
        let improves = slot.as_ref().is_none_or(|(best, _)| idx < *best);
        if improves {
            *slot = Some((idx, value));
            self.best.store(idx, Ordering::Release);
        }
        improves
    }

    /// The recorded best index (`usize::MAX` while empty). An upper
    /// bound on the final answer's index.
    pub fn bound(&self) -> usize {
        self.best.load(Ordering::Acquire)
    }

    /// `true` when a subtree whose encounter indices are all ≥ `base`
    /// cannot improve the record and may be abandoned.
    pub fn prunes(&self, base: usize) -> bool {
        self.bound() <= base
    }

    /// Takes the recorded `(index, value)` pair, emptying the cell.
    pub fn take(&self) -> Option<(usize, T)> {
        self.slot.lock().take()
    }

    /// The recorded `(index, value)` pair, cloned.
    pub fn get(&self) -> Option<(usize, T)>
    where
        T: Clone,
    {
        self.slot.lock().clone()
    }
}

/// Where leaf hits go. One implementation per quantifier family; the
/// recursion is generic over it so all five terminals share one driver.
trait SearchSink<T>: Send + Sync + 'static {
    /// Records a hit on `value` at encounter index `idx` (virtual or
    /// ranked, per the run's [`OrderMode`]). Returns `true` when the
    /// hit is decisive and the whole run should short-circuit via
    /// `Found`.
    fn hit(&self, idx: usize, value: &T) -> bool;

    /// Encounter-order pruning bound: subtrees whose base index is ≥
    /// this may be abandoned. `usize::MAX` disables pruning (the
    /// default for first-hit-wins sinks).
    fn bound(&self) -> usize {
        usize::MAX
    }
}

/// Existence sink (`any_match` / `all_match` / `none_match`): one
/// decisive bit, no element is retained (so `T: Clone` is not needed).
#[derive(Default)]
struct ExistsSink {
    found: AtomicBool,
}

impl<T> SearchSink<T> for ExistsSink {
    fn hit(&self, _idx: usize, _value: &T) -> bool {
        self.found.store(true, Ordering::Release);
        true
    }
}

/// First-hit-wins sink (`find_any`): keeps the first recorded element,
/// decisively.
struct AnySink<T> {
    slot: Mutex<Option<T>>,
}

impl<T: Clone + Send + 'static> SearchSink<T> for AnySink<T> {
    fn hit(&self, _idx: usize, value: &T) -> bool {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(value.clone());
        }
        true
    }
}

/// Encounter-order sink (`find_first`): hits are never decisive (an
/// earlier one may still turn up to the left); pruning comes from the
/// shared bound instead.
struct FirstSink<T> {
    hit: FirstHit<T>,
}

impl<T: Clone + Send + 'static> SearchSink<T> for FirstSink<T> {
    fn hit(&self, idx: usize, value: &T) -> bool {
        self.hit.offer(idx, value.clone());
        false
    }

    fn bound(&self) -> usize {
        self.hit.bound()
    }
}

/// Chunk width of the zero-copy scan: predicates are evaluated over a
/// whole chunk branch-free (so simple predicates autovectorise like a
/// reduce leaf does) before the stop test runs; a positive chunk is
/// rescanned scalar to pin the exact first hit. The overrun is at most
/// one chunk — well inside the search terminals' "stops at the next
/// checkpoint" contract. 256 keeps the stop-test branch off the hot
/// path (measured within ~1.1× of a plain reduce fold on an absent
/// needle) while bounding the overrun to a few cache lines.
const SCAN_CHUNK: usize = 256;

/// Scans a contiguous run, returning `(elements_scanned, first_hit)`.
/// The predicate may be invoked on up to `SCAN_CHUNK - 1` elements past
/// the first hit, and twice on elements of the hit's chunk — search
/// predicates must be pure (Java imposes the same statelessness rule).
fn scan_run<T, P: Fn(&T) -> bool>(items: &[T], pred: &P) -> (u64, Option<usize>) {
    let mut done = 0usize;
    for chunk in items.chunks(SCAN_CHUNK) {
        let mut any = false;
        for x in chunk {
            any |= pred(x);
        }
        if any {
            let off = chunk.iter().position(pred).expect("chunk reported a hit");
            return ((done + off + 1) as u64, Some(done + off));
        }
        done += chunk.len();
    }
    (done as u64, None)
}

/// One leaf node of the search recursion: scans the remaining elements
/// in encounter order under panic containment, stopping at the first
/// predicate match; the hit is recorded in the sink at its encounter
/// key (`keys.0 + delivered-position · keys.1`, so virtual keys pass
/// `(base, 1)` and ranked leaves pass their `(rank_base, rank_step)`)
/// and, when decisive, trips `Found` — strictly *after* the sink
/// recorded it.
///
/// Route selection mirrors [`crate::collect::run_leaf`]: a borrowed
/// contiguous run takes the chunked [`scan_run`] (the predicate sees
/// `&T`, no clones, vectorisable); a strided borrow scans scalar over
/// the residue class; a fused adapter pipeline drives its chain
/// push-style over the *underlying* source's borrow
/// ([`crate::spliterator::LeafAccess::fused_search`]); everything else
/// takes the per-element cloning drain. Observed runs emit one
/// [`Event::Leaf`] counting the elements actually delivered to the
/// predicate (survivors, for filtering chains).
fn search_leaf<T, S, P, K>(
    source: &mut S,
    pred: &P,
    sink: &K,
    keys: (usize, usize),
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    S: Spliterator<T>,
    P: Fn(&T) -> bool,
    K: SearchSink<T> + ?Sized,
{
    let (key_base, key_step) = keys;
    let token = session.token().clone();
    let observe = plobs::enabled();
    let start = if observe { Some(Instant::now()) } else { None };
    let (route, items) = session.run(|| {
        // Record-before-cancel: the sink holds the hit before any
        // sibling can observe the Found trip. Within a leaf the first
        // match is the leaf's earliest delivered element, so every sink
        // stops the scan there.
        let record = |local: usize, x: &T| {
            let key = key_base.saturating_add(local.saturating_mul(key_step));
            if sink.hit(key, x) {
                token.cancel(CancelReason::Found);
            }
        };
        if let Some((items, step)) = source.try_as_strided() {
            let (scanned, hit) = if step == 1 {
                scan_run(items, pred)
            } else {
                // Strided residue class (zip leaves): scalar early-exit
                // scan — these runs are short by construction.
                let mut scanned = 0u64;
                let mut hit = None;
                for (j, x) in items.iter().step_by(step).enumerate() {
                    scanned += 1;
                    if pred(x) {
                        hit = Some(j);
                        break;
                    }
                }
                (scanned, hit)
            };
            let route = if step == 1 {
                LeafRoute::ZeroCopySlice
            } else {
                LeafRoute::ZeroCopyStrided
            };
            match hit {
                Some(local) => record(local, &items[local * step]),
                None => source.mark_drained(),
            }
            return (route, scanned);
        }
        let mut delivered = 0usize;
        // fused_search leaves a fully-scanned source drained itself.
        if source
            .fused_search(&mut |x| {
                let local = delivered;
                delivered += 1;
                if pred(x) {
                    record(local, x);
                    true
                } else {
                    false
                }
            })
            .is_some()
        {
            return (LeafRoute::FusedBorrow, delivered as u64);
        }
        // Cloning drain: advance one element at a time so a hit stops
        // the scan with at most one element of overrun.
        let mut stopped = false;
        loop {
            let more = source.try_advance(&mut |x| {
                let local = delivered;
                delivered += 1;
                if !stopped && pred(&x) {
                    record(local, &x);
                    stopped = true;
                }
            });
            if stopped || !more {
                break;
            }
        }
        (LeafRoute::CloningDrain, delivered as u64)
    })?;
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route,
            items,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    Ok(())
}

/// Elements the parallel driver scans *inline on the calling thread*
/// before engaging the pool. Submitting to an external pool costs two
/// context switches (inject + latch wake) — several microseconds that
/// dominate a front-loaded hit, the best case short-circuiting exists
/// for. A prefix probe answers those hits at memory speed; a miss costs
/// one cloning pass over this many elements, noise against any input
/// large enough to deserve the pool.
const ROOT_PROBE: usize = 1024;

/// What [`probe_root`] concluded.
enum Probe {
    /// The search is over: the prefix hit (recorded in the sink), the
    /// source ran out inside the prefix, or a checkpoint pruned it.
    Answered,
    /// The prefix missed; this many elements were consumed, so the
    /// parallel phase continues from that encounter-order base.
    Miss(usize),
}

/// Scans the first [`ROOT_PROBE`] delivered elements inline. The prefix
/// precedes everything in encounter order, so a probe hit is globally
/// first — decisive for *every* sink, `find_first` included, and the
/// whole un-scanned remainder is pruned (recorded as one `Found`
/// cancellation plus one `EarlyExit`, the driver standing in for the
/// node checkpoints that never got to observe the trip).
///
/// Only SIZED sources are probed (the caller checks `exact_size()`):
/// there `try_advance` delivers exactly one element per call, so the
/// delivered count bounds the work. On a filtering chain a single
/// `try_advance` may scan the *entire* underlying source hunting for
/// one survivor — an absent needle would be drained element-by-element
/// on the calling thread instead of by the parallel kernels.
fn probe_root<T, S, P, K>(
    source: &mut S,
    pred: &P,
    sink: &K,
    session: &SearchSession,
) -> Result<Probe, Interrupt>
where
    S: Spliterator<T>,
    P: Fn(&T) -> bool,
    K: SearchSink<T> + ?Sized,
{
    // Honour a caller token that tripped before the search even began.
    if session.check()? {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(Probe::Answered);
    }
    let token = session.token().clone();
    let observe = plobs::enabled();
    let start = if observe { Some(Instant::now()) } else { None };
    let mut delivered = 0usize;
    let mut hit = false;
    let mut more = true;
    session.run(|| {
        while more && !hit && delivered < ROOT_PROBE {
            more = source.try_advance(&mut |x| {
                let local = delivered;
                delivered += 1;
                if !hit && pred(&x) {
                    sink.hit(local, &x);
                    token.cancel(CancelReason::Found);
                    hit = true;
                }
            });
        }
    })?;
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route: LeafRoute::CloningDrain,
            items: delivered as u64,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    if hit {
        plobs::emit(Event::Cancel {
            reason: CancelReason::Found,
        });
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
    }
    if hit || !more {
        Ok(Probe::Answered)
    } else {
        Ok(Probe::Miss(delivered))
    }
}

/// The guarded sequential route: one checkpoint, then the whole source
/// as a single leaf. Also the degradation target when the parallel
/// route's pool is unavailable or saturated, and the ordered-terminal
/// escape hatch for *opaque* sources (no encounter rank AND
/// interleaving splits — e.g. a filter chain over a zip decomposition),
/// where neither keyspace can order parallel hits but a single
/// `try_advance` drain is encounter order by definition.
fn search_leaf_all<T, S, P, K>(
    source: &mut S,
    pred: &P,
    sink: &K,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    S: Spliterator<T>,
    P: Fn(&T) -> bool,
    K: SearchSink<T> + ?Sized,
{
    if session.check()? {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    // One whole-source leaf: its first delivered match is the global
    // encounter-order first, so the key lattice `(0, 1)` is exact.
    search_leaf(source, pred, sink, (0, 1), session)
}

/// The parallel search recursion — the collect driver's skeleton
/// (`try_recurse`) with search checkpoints: node entry observes both
/// the `Found` trip and the encounter-order bound, and sibling results
/// merge by interrupt priority alone (there is no combine work; the
/// answer lives in the shared sink).
#[allow(clippy::too_many_arguments)] // mirrors collect::try_recurse's frame
fn try_search_recurse<T, S, P, K>(
    mut source: S,
    pred: Arc<P>,
    sink: Arc<K>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
    mode: OrderMode,
    base: usize,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
    K: SearchSink<T>,
{
    // Node-entry checkpoint: a Found trip prunes this whole subtree as
    // success (the split decision and leaf entry are both covered, so
    // this is the "next split/leaf checkpoint" of the contract).
    if session.check()? {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    // Encounter-order pruning: everything in this subtree sits at
    // encounter key ≥ the subtree's key base — the threaded virtual
    // base, or (Ranked) the node's own rank base, which each split
    // keeps as the minimum remaining rank. A recorded hit at or before
    // that base makes the subtree irrelevant. A rank-less node in
    // Ranked mode (contract violation, asserted in `leaf_keys`)
    // degrades to base 0, which never wrongly prunes.
    let prune_base = match mode {
        OrderMode::Virtual => base,
        OrderMode::Ranked => source.encounter_rank().map_or(0, |(b, _)| b),
    };
    if sink.bound() <= prune_base {
        plobs::emit(Event::EarlyExit { leaves_pruned: 1 });
        return Ok(());
    }
    // Stop decision — identical to the collect driver: exact sizes may
    // stop on the leaf threshold; upper-bound estimates descend to the
    // depth cap and let `try_split` refusal terminate.
    let exact = source.exact_size();
    let mut steals_next = steals_seen;
    let stop = match policy {
        SplitPolicy::Fixed(leaf_size) => match exact {
            Some(size) => size <= leaf_size,
            None => depth >= cap,
        },
        SplitPolicy::Adaptive(a) => {
            if depth >= cap || exact.is_some_and(|size| size <= a.min_leaf) {
                true
            } else {
                let (wants_split, now) = demand_split(a.surplus, steals_seen);
                steals_next = now;
                !wants_split
            }
        }
    };
    if stop {
        let keys = leaf_keys(&source, mode, base);
        return search_leaf(&mut source, &*pred, &*sink, keys, session);
    }
    let observe = plobs::enabled();
    let descend_start = if observe { Some(Instant::now()) } else { None };
    match source.try_split() {
        None => {
            let keys = leaf_keys(&source, mode, base);
            search_leaf(&mut source, &*pred, &*sink, keys, session)
        }
        Some(prefix) => {
            if let Some(start) = descend_start {
                plobs::emit(Event::Split {
                    depth,
                    adaptive: policy.is_adaptive(),
                });
                plobs::emit(Event::DescendNs {
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            // Virtual keyspace only: the suffix's base advances by the
            // prefix's estimate — an upper bound on what the prefix can
            // deliver, which keeps virtual indices strictly increasing
            // with encounter order across the whole tree (sound because
            // Virtual mode implies prefix-order splits). Ranked nodes
            // ignore the threaded base and re-derive their own.
            let suffix_base = match mode {
                OrderMode::Virtual => base.saturating_add(prefix.estimate_size()),
                OrderMode::Ranked => base,
            };
            let p_left = Arc::clone(&pred);
            let p_right = Arc::clone(&pred);
            let k_left = Arc::clone(&sink);
            let k_right = Arc::clone(&sink);
            let s_left = session.clone();
            let s_right = session.clone();
            let (left, right) = join(
                move || {
                    try_search_recurse(
                        prefix,
                        p_left,
                        k_left,
                        policy,
                        cap,
                        depth + 1,
                        steals_next,
                        mode,
                        base,
                        &s_left,
                    )
                },
                move || {
                    try_search_recurse(
                        source,
                        p_right,
                        k_right,
                        policy,
                        cap,
                        depth + 1,
                        steals_next,
                        mode,
                        suffix_base,
                        &s_right,
                    )
                },
            );
            // No combine work to skip — merging is interrupt priority
            // only, so the combine checkpoint of the collect driver has
            // no analogue here.
            match (left, right) {
                (Ok(()), Ok(())) => Ok(()),
                (Err(a), Err(b)) => Err(a.merge(b)),
                (Err(a), Ok(())) | (Ok(()), Err(a)) => Err(a),
            }
        }
    }
}

/// Submits the search recursion to `pool`, falling back to the calling
/// thread when the submission loses a shutdown race — the same recorded
/// degradation as [`crate::collect::try_par_core`].
#[allow(clippy::too_many_arguments)] // mirrors try_search_recurse's frame
fn try_search_par_core<T, S, P, K>(
    pool: &ForkJoinPool,
    source: S,
    pred: Arc<P>,
    sink: Arc<K>,
    policy: SplitPolicy,
    mode: OrderMode,
    base: usize,
    session: &SearchSession,
) -> Result<(), Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
    K: SearchSink<T>,
{
    let s2 = session.clone();
    match pool.try_install(move || {
        // Budget the depth cap for the pool that actually executes (the
        // fallback runs on the caller; see collect::try_par_core).
        let probe = current_probe();
        let threads = probe
            .as_ref()
            .map_or_else(|| forkjoin::global_pool().threads(), |p| p.threads());
        let cap = policy.depth_cap(threads);
        let steals = probe.map_or(0, |p| p.steal_pressure());
        try_search_recurse(source, pred, sink, policy, cap, 0, steals, mode, base, &s2)
    }) {
        Ok(r) => r,
        Err(f) => {
            plobs::emit(Event::Fallback {
                reason: FallbackReason::SubmitFailed,
            });
            f()
        }
    }
}

/// The unified fallible search driver: mode dispatch, pool resolution,
/// saturation/shutdown fallbacks and split-policy precedence (explicit
/// beats tuner beats static heuristic) exactly as
/// [`crate::collect::try_collect_with`]; `kind` labels the terminal in
/// the tuner's fingerprint so searches and collects over the same
/// source tune independently.
///
/// `ordered` marks the one terminal whose answer depends on encounter
/// order (`find_first`). The order keyspace is fixed here at the root:
/// ranked when the source publishes exact ranks, virtual when its
/// splits cut true prefixes — and when it offers *neither* (opaque: a
/// filter chain over zip's interleaving decomposition), an ordered
/// search degrades to the guarded sequential whole-scan, because no
/// parallel keyspace can rank its hits. Unordered terminals never
/// consult keys decisively, so they keep the parallel route regardless.
fn try_search_with<T, S, P, K>(
    source: S,
    pred: Arc<P>,
    sink: Arc<K>,
    cfg: &ExecConfig,
    kind: &'static str,
    ordered: bool,
) -> Result<(), ExecError>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
    K: SearchSink<T>,
{
    let session = SearchSession::new(cfg);
    let mode = if source.encounter_rank().is_some() {
        OrderMode::Ranked
    } else {
        OrderMode::Virtual
    };
    let result = match cfg.mode() {
        ExecMode::Seq => {
            let mut source = source;
            search_leaf_all(&mut source, &*pred, &*sink, &session)
        }
        ExecMode::Par if ordered && mode == OrderMode::Virtual && !source.prefix_splits() => {
            // Opaque source + ordered terminal: splitting would
            // interleave encounter order with no ranks to re-sort hits,
            // so correctness wins over parallelism — one sequential
            // whole-scan (its first delivered match is the global
            // first).
            let mut source = source;
            search_leaf_all(&mut source, &*pred, &*sink, &session)
        }
        ExecMode::Par => {
            let mut source = source;
            let probed = if source.exact_size().is_some() {
                probe_root(&mut source, &*pred, &*sink, &session)
            } else {
                // Non-SIZED (filtering) pipelines skip the probe: one
                // try_advance may drain the whole underlying source.
                Ok(Probe::Miss(0))
            };
            match probed {
                Err(i) => Err(i),
                Ok(Probe::Answered) => Ok(()),
                Ok(Probe::Miss(probed)) => {
                    let global;
                    let pool: &ForkJoinPool = match cfg.pool() {
                        Some(p) => p,
                        None => {
                            global = forkjoin::global_pool();
                            global
                        }
                    };
                    let fallback = if pool.is_shut_down() {
                        Some(FallbackReason::SubmitFailed)
                    } else if cfg
                        .fallback_threshold()
                        .is_some_and(|t| pool.queued_tasks() > t)
                    {
                        Some(FallbackReason::PoolSaturated)
                    } else {
                        None
                    };
                    match fallback {
                        Some(reason) => {
                            plobs::emit(Event::Fallback { reason });
                            // Degraded single-leaf scan of the (post-
                            // probe) remainder; in Virtual mode the
                            // probe consumed the first `probed` keys.
                            let keys = leaf_keys(&source, mode, probed);
                            search_leaf(&mut source, &*pred, &*sink, keys, &session)
                        }
                        None => {
                            let policy = cfg
                                .policy()
                                .or_else(|| {
                                    cfg.tuner().and_then(|cache| {
                                        let exact = source.exact_size();
                                        let fp = pltune::Fingerprint::new(
                                            std::any::type_name::<S>(),
                                            kind,
                                            exact.unwrap_or_else(|| source.estimate_size()),
                                            exact.is_some(),
                                            pool.threads(),
                                        );
                                        pltune::resolve(cache, pool, &fp)
                                    })
                                })
                                .unwrap_or_else(|| {
                                    SplitPolicy::Fixed(default_leaf_size(
                                        source.estimate_size(),
                                        pool.threads(),
                                    ))
                                });
                            try_search_par_core(
                                pool, source, pred, sink, policy, mode, probed, &session,
                            )
                        }
                    }
                }
            }
        }
    };
    result.map_err(|i| session.error_of(i))
}

/// Fallible `any_match` over a spliterator: `Ok(true)` iff some element
/// satisfies `pred`. Short-circuits the whole tree via `Found` on the
/// first hit.
pub fn try_any_match_with<T, S, P>(source: S, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
{
    let sink = Arc::new(ExistsSink::default());
    try_search_with(
        source,
        Arc::new(pred),
        Arc::clone(&sink),
        cfg,
        "jstreams::search::any_match",
        false,
    )?;
    Ok(sink.found.load(Ordering::Acquire))
}

/// Fallible `all_match`: `Ok(true)` iff every element satisfies `pred`
/// (vacuously true on an empty source). Runs the existence driver on
/// the negated predicate, so one counterexample short-circuits.
pub fn try_all_match_with<T, S, P>(source: S, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
{
    try_any_match_with(source, move |x: &T| !pred(x), cfg).map(|any_fails| !any_fails)
}

/// Fallible `none_match`: `Ok(true)` iff no element satisfies `pred`.
pub fn try_none_match_with<T, S, P>(source: S, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
{
    try_any_match_with(source, pred, cfg).map(|any| !any)
}

/// Fallible `find_any`: some element of the pipeline, first-hit-wins
/// across leaves (nondeterministic under parallel execution, like
/// Java's `findAny`). `Ok(None)` on an empty pipeline.
pub fn try_find_any_with<T, S>(source: S, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
{
    let sink = Arc::new(AnySink {
        slot: Mutex::new(None),
    });
    try_search_with(
        source,
        Arc::new(|_: &T| true),
        Arc::clone(&sink),
        cfg,
        "jstreams::search::find_any",
        false,
    )?;
    let hit = sink.slot.lock().take();
    Ok(hit)
}

/// Fallible `find_first`: the pipeline's first element in encounter
/// order, under every execution mode and schedule. Right subtrees are
/// pruned through the shared [`FirstHit`] bound once a left-er hit
/// exists.
pub fn try_find_first_with<T, S>(source: S, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
{
    let sink = Arc::new(FirstSink {
        hit: FirstHit::new(),
    });
    try_search_with(
        source,
        Arc::new(|_: &T| true),
        Arc::clone(&sink),
        cfg,
        "jstreams::search::find_first",
        true,
    )?;
    Ok(sink.hit.take().map(|(_, v)| v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::SliceSpliterator;
    use crate::stream::stream_support;
    use forkjoin::ForkJoinPool;

    fn pool() -> Arc<ForkJoinPool> {
        Arc::new(ForkJoinPool::new(3))
    }

    fn par_cfg(leaf: usize) -> ExecConfig {
        ExecConfig::par().with_pool(pool()).with_leaf_size(leaf)
    }

    fn ints(n: i64) -> SliceSpliterator<i64> {
        SliceSpliterator::new((0..n).collect())
    }

    #[test]
    fn any_match_agrees_across_modes_and_needle_positions() {
        for needle in [0i64, 1000, 4095, -1] {
            let seq =
                try_any_match_with(ints(4096), move |x| *x == needle, &ExecConfig::seq()).unwrap();
            let par = try_any_match_with(ints(4096), move |x| *x == needle, &par_cfg(64)).unwrap();
            assert_eq!(seq, (0..4096).contains(&needle));
            assert_eq!(par, seq, "needle {needle}");
        }
    }

    #[test]
    fn all_and_none_match_quantify_correctly() {
        let cfg = par_cfg(32);
        assert!(try_all_match_with(ints(512), |x| *x >= 0, &cfg).unwrap());
        assert!(!try_all_match_with(ints(512), |x| *x < 511, &cfg).unwrap());
        assert!(try_none_match_with(ints(512), |x| *x > 1000, &cfg).unwrap());
        assert!(!try_none_match_with(ints(512), |x| *x == 200, &cfg).unwrap());
        // Vacuous truth on the empty source.
        assert!(try_all_match_with(ints(0), |_| false, &ExecConfig::seq()).unwrap());
        assert!(try_none_match_with(ints(0), |_| true, &ExecConfig::seq()).unwrap());
    }

    #[test]
    fn find_first_is_minimal_in_encounter_order() {
        // Ascending data: the first element ≥ 1000 is 1000 itself.
        let src = stream_support(ints(4096), true)
            .filter(|x: &i64| *x >= 1000)
            .into_spliterator();
        assert_eq!(try_find_first_with(src, &par_cfg(16)).unwrap(), Some(1000));
        // Descending data: the first element ≥ 1000 in encounter order
        // is the very first element, 4095.
        let desc = SliceSpliterator::new((0..4096i64).rev().collect());
        let src = stream_support(desc, true)
            .filter(|x: &i64| *x >= 1000)
            .into_spliterator();
        assert_eq!(try_find_first_with(src, &par_cfg(16)).unwrap(), Some(4095));
    }

    #[test]
    fn find_any_returns_some_matching_element() {
        let src = stream_support(ints(4096), true)
            .filter(|x: &i64| x % 7 == 0)
            .into_spliterator();
        let hit = try_find_any_with(src, &par_cfg(64)).unwrap().unwrap();
        assert_eq!(hit % 7, 0);
        let empty = stream_support(ints(64), true)
            .filter(|x: &i64| *x > 1000)
            .into_spliterator();
        assert_eq!(try_find_any_with(empty, &par_cfg(8)).unwrap(), None);
    }

    #[test]
    fn late_needle_prunes_leaves_and_counts_found_cancels() {
        // Needle deep in the suffix: by the time a leaf hits it, left
        // siblings are done but *later* leaves must observe Found and
        // record EarlyExit prunes. Whether any subtree is still pending
        // at trip time is schedule-dependent (a single hardware thread
        // can drain leaves in pure DFS order), so the pruning half of
        // the assertion retries a few recorded runs — it must hold on
        // at least one schedule, while the Found counter holds on all.
        // (100 retries: under full-suite load a 1-CPU box can drain in
        // DFS order for many consecutive runs.)
        let cfg = par_cfg(16);
        let mut pruned = false;
        for _ in 0..100 {
            let (hit, report) = plobs::recorded(|| {
                try_any_match_with(ints(1 << 14), |x| *x == (1 << 14) - 5, &cfg)
            });
            assert!(hit.unwrap());
            assert!(report.cancels_found >= 1);
            if report.early_exits >= 1 && report.leaves_pruned >= 1 {
                pruned = true;
                break;
            }
        }
        assert!(
            pruned,
            "no schedule in 100 runs pruned a subtree on a late needle"
        );
    }

    #[test]
    fn absent_needle_scans_everything_without_prunes() {
        let cfg = par_cfg(64);
        let (hit, report) = plobs::recorded(|| try_any_match_with(ints(4096), |x| *x < 0, &cfg));
        assert!(!hit.unwrap());
        assert_eq!(report.early_exits, 0);
        assert_eq!(report.cancels_found, 0);
        assert_eq!(
            report.routes.total_items(),
            4096,
            "an absent needle must scan every element exactly once"
        );
    }

    #[test]
    fn fused_pipelines_search_over_borrowed_runs() {
        let cfg = par_cfg(64);
        let (hit, report) = plobs::recorded(|| {
            let src = stream_support(ints(4096), true)
                .map(|x: i64| x * 3)
                .filter(|x: &i64| x % 2 == 0)
                .into_spliterator();
            try_any_match_with(src, |x| *x == 6000, &cfg)
        });
        assert!(hit.unwrap());
        assert!(
            report.routes.fused_borrow.leaves > 0,
            "map/filter search must take the fused-borrow route: {report:?}"
        );
        // Non-SIZED pipelines skip the root probe, so no cloning pass
        // of any kind is allowed here.
        assert_eq!(report.routes.cloning_drain.leaves, 0);
    }

    #[test]
    fn predicate_panic_surfaces_as_exec_error() {
        let cfg = par_cfg(32);
        let err = try_any_match_with(
            ints(1024),
            |x| {
                if *x == 700 {
                    panic!("poison predicate");
                }
                false
            },
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err.panic_message(), Some("poison predicate"));
    }

    #[test]
    fn found_never_trips_the_callers_token() {
        let token = CancelToken::new();
        let cfg = par_cfg(16).with_cancel_token(token.clone());
        assert!(try_any_match_with(ints(4096), |x| *x == 9, &cfg).unwrap());
        assert!(
            !token.is_cancelled(),
            "a search hit must stay on the private token"
        );
        // The caller's token still cancels the search.
        token.cancel(CancelReason::User);
        let err = try_any_match_with(ints(4096), |x| *x == 9, &cfg).unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }

    #[test]
    fn ranked_zip_recursion_finds_minimal_physical_index() {
        // Exercises the Ranked keyspace below the root probe: the
        // recursion runs directly over a zip spliterator (interleaving
        // parity splits) with single-element leaves, and the FirstHit
        // winner must be the minimal *physical* index — value 1 at rank
        // 1 beats value 2 at rank 2 no matter which leaf lands first.
        use crate::zip::ZipSpliterator;
        use powerlist::tabulate;
        let p = pool();
        let cfg = ExecConfig::par()
            .with_pool(Arc::clone(&p))
            .with_leaf_size(1);
        let pred = |x: &i64| *x == 1 || *x == 2;
        for _ in 0..50 {
            let src = ZipSpliterator::over(tabulate(16, |i| i as i64).unwrap());
            assert_eq!(src.encounter_rank(), Some((0, 1)));
            assert!(!src.prefix_splits());
            let sink = Arc::new(FirstSink {
                hit: FirstHit::new(),
            });
            let session = SearchSession::new(&cfg);
            try_search_par_core(
                &p,
                src,
                Arc::new(pred),
                Arc::clone(&sink),
                SplitPolicy::Fixed(1),
                OrderMode::Ranked,
                0,
                &session,
            )
            .unwrap();
            assert_eq!(sink.hit.take(), Some((1, 1)));
        }
    }

    #[test]
    fn zip_find_first_degrades_to_encounter_order_scan() {
        // Public-API regression for the same hazard: a filtered zip
        // power stream is opaque (interleaving splits, no ranks), so
        // parallel find_first must take the guarded sequential scan and
        // agree with the sequential route on every schedule.
        use crate::power::{power_stream, Decomposition};
        use powerlist::tabulate;
        let list = tabulate(16, |i| i as i64).unwrap();
        let p = pool();
        for _ in 0..50 {
            let par = power_stream(list.clone(), Decomposition::Zip)
                .with_pool(Arc::clone(&p))
                .with_leaf_size(1)
                .filter(|x: &i64| *x == 1 || *x == 2)
                .find_first();
            assert_eq!(par, Some(1));
        }
    }

    #[test]
    fn caller_token_found_reason_is_demoted_to_cancellation() {
        // A caller token that already carries Found (reused from some
        // earlier search) must cancel this run, not masquerade as its
        // answered state.
        let token = CancelToken::new();
        token.cancel(CancelReason::Found);
        let cfg = par_cfg(16).with_cancel_token(token);
        let err = try_any_match_with(ints(4096), |x| *x == 9, &cfg).unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }

    #[test]
    fn first_hit_cell_keeps_the_minimum() {
        let cell = FirstHit::new();
        assert_eq!(cell.bound(), usize::MAX);
        assert!(!cell.prunes(0));
        assert!(cell.offer(40, "d"));
        assert!(cell.offer(7, "a"));
        assert!(!cell.offer(12, "b"), "later index must not replace");
        assert_eq!(cell.bound(), 7);
        assert!(cell.prunes(7));
        assert!(!cell.prunes(6));
        assert_eq!(cell.get(), Some((7, "a")));
        assert_eq!(cell.take(), Some((7, "a")));
        assert_eq!(cell.take(), None);
    }
}
