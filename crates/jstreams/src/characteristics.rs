//! Spliterator characteristics, including the paper's `POWER2`.
//!
//! Java's `Spliterator` advertises structural properties as an `int` of
//! OR-ed flag constants. The adaptation adds one flag: **`POWER2`**,
//! reported by `SpliteratorPower2` implementations to assert that the
//! number of elements is a power of two — "necessary in order to verify
//! that we work with a stream on which we may apply PowerList functions"
//! (paper, Section IV.A). This module is a minimal, dependency-free
//! bitset mirroring that scheme.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A set of spliterator characteristic flags.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Characteristics(u32);

impl Characteristics {
    /// Element order is defined and must be preserved.
    pub const ORDERED: Characteristics = Characteristics(1 << 0);
    /// All elements are distinct.
    pub const DISTINCT: Characteristics = Characteristics(1 << 1);
    /// Elements are sorted.
    pub const SORTED: Characteristics = Characteristics(1 << 2);
    /// `estimate_size` is an exact count.
    pub const SIZED: Characteristics = Characteristics(1 << 3);
    /// No element is null-like (always true in Rust; kept for parity).
    pub const NONNULL: Characteristics = Characteristics(1 << 4);
    /// The source cannot be structurally modified during traversal.
    pub const IMMUTABLE: Characteristics = Characteristics(1 << 5);
    /// Concurrent modification of the source is safe.
    pub const CONCURRENT: Characteristics = Characteristics(1 << 6);
    /// All splits are themselves `SIZED`.
    pub const SUBSIZED: Characteristics = Characteristics(1 << 7);
    /// **The adaptation's flag**: element count is a power of two, so
    /// PowerList functions apply.
    pub const POWER2: Characteristics = Characteristics(1 << 8);

    /// The empty set of flags.
    pub const fn empty() -> Characteristics {
        Characteristics(0)
    }

    /// `true` when every flag in `other` is present in `self`.
    #[inline]
    pub fn contains(self, other: Characteristics) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Characteristics) -> Characteristics {
        Characteristics(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: Characteristics) -> Characteristics {
        Characteristics(self.0 & other.0)
    }

    /// Removes the flags of `other`.
    #[inline]
    pub fn without(self, other: Characteristics) -> Characteristics {
        Characteristics(self.0 & !other.0)
    }

    /// Raw bits (diagnostics).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The default set for PowerList spliterators: ordered, exactly
    /// sized (and so after splitting), immutable, power-of-two.
    pub fn powerlist_default() -> Characteristics {
        Self::ORDERED
            .union(Self::SIZED)
            .union(Self::SUBSIZED)
            .union(Self::IMMUTABLE)
            .union(Self::NONNULL)
            .union(Self::POWER2)
    }
}

impl BitOr for Characteristics {
    type Output = Characteristics;
    fn bitor(self, rhs: Characteristics) -> Characteristics {
        self.union(rhs)
    }
}

impl BitAnd for Characteristics {
    type Output = Characteristics;
    fn bitand(self, rhs: Characteristics) -> Characteristics {
        self.intersect(rhs)
    }
}

impl fmt::Debug for Characteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(Characteristics, &str); 9] = [
            (Characteristics::ORDERED, "ORDERED"),
            (Characteristics::DISTINCT, "DISTINCT"),
            (Characteristics::SORTED, "SORTED"),
            (Characteristics::SIZED, "SIZED"),
            (Characteristics::NONNULL, "NONNULL"),
            (Characteristics::IMMUTABLE, "IMMUTABLE"),
            (Characteristics::CONCURRENT, "CONCURRENT"),
            (Characteristics::SUBSIZED, "SUBSIZED"),
            (Characteristics::POWER2, "POWER2"),
        ];
        let mut first = true;
        write!(f, "Characteristics(")?;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "∅")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_union() {
        let c = Characteristics::ORDERED | Characteristics::SIZED;
        assert!(c.contains(Characteristics::ORDERED));
        assert!(c.contains(Characteristics::SIZED));
        assert!(!c.contains(Characteristics::POWER2));
        assert!(c.contains(Characteristics::empty()));
        assert!(c.contains(c));
    }

    #[test]
    fn without_removes() {
        let c = Characteristics::powerlist_default().without(Characteristics::POWER2);
        assert!(!c.contains(Characteristics::POWER2));
        assert!(c.contains(Characteristics::SIZED));
    }

    #[test]
    fn intersect_keeps_common() {
        let a = Characteristics::ORDERED | Characteristics::POWER2;
        let b = Characteristics::SIZED | Characteristics::POWER2;
        assert_eq!(a & b, Characteristics::POWER2);
    }

    #[test]
    fn powerlist_default_has_power2() {
        let c = Characteristics::powerlist_default();
        assert!(c.contains(Characteristics::POWER2));
        assert!(c.contains(Characteristics::ORDERED));
        assert!(c.contains(Characteristics::SUBSIZED));
        assert!(!c.contains(Characteristics::SORTED));
    }

    #[test]
    fn debug_lists_flags() {
        let s = format!("{:?}", Characteristics::ORDERED | Characteristics::POWER2);
        assert!(s.contains("ORDERED"));
        assert!(s.contains("POWER2"));
        assert_eq!(
            format!("{:?}", Characteristics::empty()),
            "Characteristics(∅)"
        );
    }
}
