//! Shared state between the splitting phase and the collect phase.
//!
//! Section V of the paper distils its inner-class trick into a general
//! mechanism: the spliterator is defined *inside* the collector class, so
//! it can "modify/update the state of the outer class instance"
//! (`functionObject`), and the supplier creates containers "by copying
//! the functionObject". [`SharedState`] is the Rust equivalent of that
//! outer-instance channel: a cheaply clonable handle to synchronised
//! state, handed both to the split hook and to the collector.
//!
//! The canonical use is the polynomial evaluation's `x_degree`: every
//! split doubles a local exponent and performs a *synchronised
//! max-update* of the global one, because "the global exponent is updated
//! only if its value is less than the local iterator value … due to the
//! non-determinism of parallel task execution".
//!
//! ## Panic containment
//!
//! `SharedState` is built on `parking_lot::Mutex`, which has **no
//! poisoning**: when a collector panics inside [`SharedState::update`]
//! the lock is released on unwind and the state stays usable. This is
//! what lets the fallible execution layer ([`crate::ExecSession`])
//! contain a panic as an [`crate::ExecError::Panicked`] value and keep
//! both the pool *and* any shared split-phase state alive for the next
//! run — there is no poisoned-lock error to clear.

use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;

/// A clonable handle to state shared between splitting and collecting.
pub struct SharedState<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> SharedState<S> {
    /// Acquires the lock; when an observability sink is installed, each
    /// acquisition is reported with whether the `try_lock` fast path
    /// failed (i.e. the paper's `synchronized` block was contended).
    fn lock(&self) -> MutexGuard<'_, S> {
        // Labels the acquisition in plcheck traces (the underlying
        // parking_lot shim adds the actual contention/blocking points).
        plcheck::yield_op("shared::lock");
        if !plobs::enabled() {
            return self.inner.lock();
        }
        match self.inner.try_lock() {
            Some(g) => {
                plobs::emit(plobs::Event::SharedStateLock { contended: false });
                g
            }
            None => {
                plobs::emit(plobs::Event::SharedStateLock { contended: true });
                self.inner.lock()
            }
        }
    }
}

impl<S> Clone for SharedState<S> {
    fn clone(&self) -> Self {
        SharedState {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S> SharedState<S> {
    /// Wraps an initial value.
    pub fn new(value: S) -> Self {
        SharedState {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Runs `f` with exclusive access to the state (the paper's
    /// `synchronized` block) and returns its result.
    pub fn update<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.lock())
    }

    /// Reads the state through a closure without cloning.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.lock())
    }
}

impl<S: Clone> SharedState<S> {
    /// Snapshot of the current value.
    pub fn get(&self) -> S {
        self.lock().clone()
    }
}

impl<S: Ord + Copy> SharedState<S> {
    /// The synchronised max-update of the paper: raises the global value
    /// to `candidate` if it is larger; returns the value after the
    /// update.
    pub fn update_max(&self, candidate: S) -> S {
        let mut g = self.lock();
        if *g < candidate {
            *g = candidate;
        }
        *g
    }
}

impl<S: Default> Default for SharedState<S> {
    fn default() -> Self {
        SharedState::new(S::default())
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for SharedState<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedState({:?})", self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn update_and_get() {
        let s = SharedState::new(5);
        s.update(|v| *v += 1);
        assert_eq!(s.get(), 6);
        assert_eq!(s.read(|v| *v * 2), 12);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedState::new(vec![1]);
        let b = a.clone();
        b.update(|v| v.push(2));
        assert_eq!(a.get(), vec![1, 2]);
    }

    #[test]
    fn update_max_is_monotone() {
        let s = SharedState::new(4u32);
        assert_eq!(s.update_max(2), 4); // lower candidate ignored
        assert_eq!(s.update_max(8), 8);
        assert_eq!(s.update_max(6), 8);
        assert_eq!(s.get(), 8);
    }

    #[test]
    fn update_max_under_contention() {
        let s = SharedState::new(0u64);
        let mut handles = vec![];
        for t in 0..8 {
            let s2 = s.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    s2.update_max(t * 100 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.get(), 799);
    }

    #[test]
    fn panicking_update_releases_lock() {
        // parking_lot has no poisoning: a contained panic inside
        // `update` must leave the state usable for the next run.
        let s = SharedState::new(1u32);
        let s2 = s.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            s2.update(|v| {
                *v = 99;
                panic!("mid-update");
            })
        }));
        assert!(caught.is_err());
        // Lock is free and the partial write is visible (no rollback —
        // containment, not transactionality).
        assert_eq!(s.get(), 99);
        s.update(|v| *v += 1);
        assert_eq!(s.get(), 100);
    }

    #[test]
    fn default_and_debug() {
        let s: SharedState<i32> = SharedState::default();
        assert_eq!(s.get(), 0);
        assert_eq!(format!("{s:?}"), "SharedState(0)");
    }
}
