//! Intermediate operations as spliterator adapters.
//!
//! Java streams build a pipeline of lazy stages over the source
//! spliterator; splitting the pipeline splits the source and re-wraps the
//! stages. [`MapSpliterator`] and [`FilterSpliterator`] reproduce that:
//! they implement [`Spliterator`] by delegating structure (split, size,
//! characteristics) to the inner source and transforming elements on the
//! way out, so a mapped/filtered stream parallelises exactly like its
//! source.

use crate::characteristics::Characteristics;
use crate::spliterator::{ItemSource, LeafAccess, Spliterator};
use std::sync::Arc;

/// Lazily applies `f` to every element of an inner spliterator.
///
/// Carries the input element type `T` as a parameter so the compiler can
/// tie the inner source's item type to the mapping function.
pub struct MapSpliterator<T, S, F> {
    inner: S,
    f: Arc<F>,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, S, F> MapSpliterator<T, S, F> {
    /// Wraps `inner`, mapping elements through `f`.
    pub fn new(inner: S, f: Arc<F>) -> Self {
        MapSpliterator {
            inner,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, U, S, F> ItemSource<U> for MapSpliterator<T, S, F>
where
    S: ItemSource<T>,
    F: Fn(T) -> U,
{
    fn try_advance(&mut self, action: &mut dyn FnMut(U)) -> bool {
        let f = &self.f;
        self.inner.try_advance(&mut |x| action(f(x)))
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(U)) {
        let f = &self.f;
        self.inner.for_each_remaining(&mut |x| action(f(x)))
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size()
    }
}

// Mapping changes the element type lazily: there is no borrowed run of
// already-transformed elements, so the default no-access impl applies.
impl<T, U, S, F> LeafAccess<U> for MapSpliterator<T, S, F> {}

impl<T, U, S, F> Spliterator<U> for MapSpliterator<T, S, F>
where
    T: Send,
    S: Spliterator<T>,
    F: Fn(T) -> U + Send + Sync,
{
    fn try_split(&mut self) -> Option<Self> {
        let prefix = self.inner.try_split()?;
        Some(MapSpliterator {
            inner: prefix,
            f: Arc::clone(&self.f),
            _marker: std::marker::PhantomData,
        })
    }

    fn characteristics(&self) -> Characteristics {
        // Mapping preserves structure but not sortedness/distinctness.
        self.inner
            .characteristics()
            .without(Characteristics::SORTED | Characteristics::DISTINCT)
    }

    // Splits delegate to the source; so does split/encounter geometry.
    // Mapping is one-to-one and order-preserving, so source ranks are
    // pipeline ranks.
    fn prefix_splits(&self) -> bool {
        self.inner.prefix_splits()
    }

    fn encounter_rank(&self) -> Option<(usize, usize)> {
        self.inner.encounter_rank()
    }
}

/// Lazily drops elements failing a predicate.
///
/// Filtering destroys `SIZED`/`SUBSIZED`/`POWER2`: the surviving count is
/// unknown before traversal, so a filtered stream no longer qualifies for
/// PowerList collects — the same restriction the paper's `POWER2`
/// characteristic encodes.
pub struct FilterSpliterator<S, P> {
    inner: S,
    pred: Arc<P>,
}

impl<S, P> FilterSpliterator<S, P> {
    /// Wraps `inner`, keeping only elements satisfying `pred`.
    pub fn new(inner: S, pred: Arc<P>) -> Self {
        FilterSpliterator { inner, pred }
    }
}

impl<T, S, P> ItemSource<T> for FilterSpliterator<S, P>
where
    S: ItemSource<T>,
    P: Fn(&T) -> bool,
{
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        // Keep advancing the source until one element passes or it ends.
        loop {
            let pred = &self.pred;
            let mut passed = false;
            let more = self.inner.try_advance(&mut |x| {
                if pred(&x) {
                    passed = true;
                    action(x);
                }
            });
            if !more {
                return false;
            }
            if passed {
                return true;
            }
        }
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        let pred = &self.pred;
        self.inner.for_each_remaining(&mut |x| {
            if pred(&x) {
                action(x);
            }
        })
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size() // an upper bound, as in Java
    }
}

// The surviving elements are unknown before traversal: no borrowed run.
impl<T, S, P> LeafAccess<T> for FilterSpliterator<S, P> {}

impl<T, S, P> Spliterator<T> for FilterSpliterator<S, P>
where
    S: Spliterator<T>,
    P: Fn(&T) -> bool + Send + Sync,
{
    fn try_split(&mut self) -> Option<Self> {
        let prefix = self.inner.try_split()?;
        Some(FilterSpliterator {
            inner: prefix,
            pred: Arc::clone(&self.pred),
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.inner
            .characteristics()
            .without(Characteristics::SIZED | Characteristics::SUBSIZED | Characteristics::POWER2)
    }

    // Splits delegate to the source, so split geometry is the source's;
    // ranks are NOT forwarded (the default `None` stands) because the
    // j-th surviving element is no longer the source's j-th.
    fn prefix_splits(&self) -> bool {
        self.inner.prefix_splits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::SliceSpliterator;
    use crate::zip::ZipSpliterator;
    use powerlist::tabulate;

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    #[test]
    fn map_transforms_elements() {
        let inner = SliceSpliterator::new(vec![1, 2, 3]);
        let mut m = MapSpliterator::new(inner, Arc::new(|x: i32| x * 10));
        assert_eq!(m.estimate_size(), 3);
        assert_eq!(drain(&mut m), vec![10, 20, 30]);
    }

    #[test]
    fn map_splits_like_source() {
        let inner = ZipSpliterator::over(tabulate(8, |i| i as i32).unwrap());
        let mut m = MapSpliterator::new(inner, Arc::new(|x: i32| x + 100));
        let mut prefix = m.try_split().unwrap();
        assert_eq!(drain(&mut prefix), vec![100, 102, 104, 106]);
        assert_eq!(drain(&mut m), vec![101, 103, 105, 107]);
    }

    #[test]
    fn map_keeps_power2() {
        let inner = ZipSpliterator::over(tabulate(4, |i| i).unwrap());
        let m = MapSpliterator::new(inner, Arc::new(|x: usize| x));
        assert!(m.has_characteristics(Characteristics::POWER2));
    }

    #[test]
    fn filter_drops_elements() {
        let inner = SliceSpliterator::new((0..10).collect::<Vec<_>>());
        let mut f = FilterSpliterator::new(inner, Arc::new(|x: &i32| x % 3 == 0));
        assert_eq!(drain(&mut f), vec![0, 3, 6, 9]);
    }

    #[test]
    fn filter_try_advance_skips() {
        let inner = SliceSpliterator::new(vec![1, 2, 3, 4]);
        let mut f = FilterSpliterator::new(inner, Arc::new(|x: &i32| x % 2 == 0));
        let mut seen = vec![];
        while f.try_advance(&mut |x| seen.push(x)) {}
        assert_eq!(seen, vec![2, 4]);
    }

    #[test]
    fn filter_loses_power2() {
        let inner = ZipSpliterator::over(tabulate(4, |i| i).unwrap());
        let f = FilterSpliterator::new(inner, Arc::new(|_: &usize| true));
        assert!(!f.has_characteristics(Characteristics::POWER2));
        assert!(!f.has_characteristics(Characteristics::SIZED));
        assert!(f.has_characteristics(Characteristics::ORDERED));
    }

    #[test]
    fn stacked_adapters() {
        let inner = SliceSpliterator::new((0..20).collect::<Vec<_>>());
        let mapped = MapSpliterator::new(inner, Arc::new(|x: i32| x * 2));
        let mut filtered = FilterSpliterator::new(mapped, Arc::new(|x: &i32| x % 8 == 0));
        assert_eq!(drain(&mut filtered), vec![0, 8, 16, 24, 32]);
    }
}
