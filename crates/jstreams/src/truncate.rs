//! Truncating and observing adapters: `limit`, `skip`, `peek`.
//!
//! These complete the familiar Java stream surface. Both truncations
//! exploit `SIZED`/`SUBSIZED` sources (all PowerList spliterators are):
//! when the pipeline splits, the prefix — which precedes the suffix in
//! encounter order — absorbs as much of the `skip` and receives as much
//! of the `limit` allowance as its exact size dictates, so truncated
//! streams still parallelise.
//!
//! Note that truncation destroys the `POWER2` characteristic (an
//! arbitrary prefix length is not a power of two), which the
//! characteristics propagation makes visible: a limited/skipped stream
//! no longer qualifies for PowerList collects, exactly like a filtered
//! one.

use crate::characteristics::Characteristics;
use crate::spliterator::{ItemSource, LeafAccess, Spliterator};
use std::sync::Arc;

/// Truncates a source to its first `limit` elements (encounter order).
pub struct LimitSpliterator<S> {
    inner: S,
    remaining: usize,
}

impl<S> LimitSpliterator<S> {
    /// Keeps only the first `limit` elements of `inner`.
    pub fn new(inner: S, limit: usize) -> Self {
        LimitSpliterator {
            inner,
            remaining: limit,
        }
    }
}

impl<T, S: ItemSource<T>> ItemSource<T> for LimitSpliterator<S> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        if self.remaining == 0 {
            return false;
        }
        if self.inner.try_advance(action) {
            self.remaining -= 1;
            true
        } else {
            self.remaining = 0;
            false
        }
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        while self.try_advance(action) {}
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size().min(self.remaining)
    }
}

// Truncation changes which elements remain without moving storage; the
// inner run no longer matches the logical run, so no borrowed access.
impl<T, S> LeafAccess<T> for LimitSpliterator<S> {}

/// Allowance distribution treats the prefix's reported size as exact
/// (only `SIZED | SUBSIZED` sources guarantee that) and assumes the
/// split-off prefix *precedes* the suffix in encounter order (zip's
/// parity splits interleave instead, so allowance and skip debt would
/// land on the wrong elements). Pipelines failing either condition stay
/// sequential — always correct.
fn splittable_exactly<T>(inner: &impl Spliterator<T>) -> bool {
    inner.has_characteristics(Characteristics::SIZED | Characteristics::SUBSIZED)
        && inner.prefix_splits()
}

impl<T, S: Spliterator<T>> Spliterator<T> for LimitSpliterator<S> {
    fn try_split(&mut self) -> Option<Self> {
        if self.remaining < 2 || !splittable_exactly(&self.inner) {
            return None;
        }
        let prefix = self.inner.try_split()?;
        // The prefix precedes us: it takes allowance up to its exact
        // size; we keep the rest.
        let prefix_size = prefix.estimate_size();
        let prefix_allow = self.remaining.min(prefix_size);
        self.remaining -= prefix_allow;
        Some(LimitSpliterator {
            inner: prefix,
            remaining: prefix_allow,
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.inner
            .characteristics()
            .without(Characteristics::POWER2)
    }

    // Limit only truncates the tail: while allowance remains, the j-th
    // delivered element is the inner's j-th, so ranks forward as-is.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        self.inner.encounter_rank()
    }
}

/// Drops the first `skip` elements of a source (encounter order).
pub struct SkipSpliterator<S> {
    inner: S,
    to_skip: usize,
}

impl<S> SkipSpliterator<S> {
    /// Skips the first `skip` elements of `inner`.
    pub fn new(inner: S, skip: usize) -> Self {
        SkipSpliterator {
            inner,
            to_skip: skip,
        }
    }
}

impl<T, S: ItemSource<T>> ItemSource<T> for SkipSpliterator<S> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        while self.to_skip > 0 {
            if !self.inner.try_advance(&mut |_| {}) {
                self.to_skip = 0;
                return false;
            }
            self.to_skip -= 1;
        }
        self.inner.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        while self.to_skip > 0 {
            if !self.inner.try_advance(&mut |_| {}) {
                self.to_skip = 0;
                return;
            }
            self.to_skip -= 1;
        }
        self.inner.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size().saturating_sub(self.to_skip)
    }
}

impl<T, S> LeafAccess<T> for SkipSpliterator<S> {}

impl<T, S: Spliterator<T>> Spliterator<T> for SkipSpliterator<S> {
    fn try_split(&mut self) -> Option<Self> {
        if !splittable_exactly(&self.inner) {
            return None;
        }
        let prefix = self.inner.try_split()?;
        // The prefix absorbs skip up to its exact size.
        let prefix_size = prefix.estimate_size();
        let prefix_skip = self.to_skip.min(prefix_size);
        self.to_skip -= prefix_skip;
        Some(SkipSpliterator {
            inner: prefix,
            to_skip: prefix_skip,
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.inner
            .characteristics()
            .without(Characteristics::POWER2)
    }

    // The j-th delivered element is the inner's (to_skip + j)-th
    // remaining one, so the rank base advances by the unpaid skip debt.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        self.inner
            .encounter_rank()
            .map(|(base, step)| (base.saturating_add(self.to_skip.saturating_mul(step)), step))
    }
}

/// Runs an observer on every element as it flows past (Java's `peek`).
pub struct PeekSpliterator<S, F> {
    inner: S,
    observer: Arc<F>,
}

impl<S, F> PeekSpliterator<S, F> {
    /// Observes elements of `inner` with `observer`.
    pub fn new(inner: S, observer: Arc<F>) -> Self {
        PeekSpliterator { inner, observer }
    }
}

impl<T, S, F> ItemSource<T> for PeekSpliterator<S, F>
where
    S: ItemSource<T>,
    T: Clone,
    F: Fn(&T),
{
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        let obs = &self.observer;
        self.inner.try_advance(&mut |x| {
            obs(&x);
            action(x);
        })
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        let obs = &self.observer;
        self.inner.for_each_remaining(&mut |x| {
            obs(&x);
            action(x);
        })
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size()
    }
}

// A borrowed-run leaf would bypass the observer, so peek opts out.
impl<T, S, F> LeafAccess<T> for PeekSpliterator<S, F> {}

impl<T, S, F> Spliterator<T> for PeekSpliterator<S, F>
where
    S: Spliterator<T>,
    T: Clone,
    F: Fn(&T) + Send + Sync,
{
    fn try_split(&mut self) -> Option<Self> {
        let prefix = self.inner.try_split()?;
        Some(PeekSpliterator {
            inner: prefix,
            observer: Arc::clone(&self.observer),
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.inner.characteristics()
    }

    // Observation changes nothing structural: forward both queries.
    fn prefix_splits(&self) -> bool {
        self.inner.prefix_splits()
    }

    fn encounter_rank(&self) -> Option<(usize, usize)> {
        self.inner.encounter_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::SliceSpliterator;
    use crate::tie::TieSpliterator;
    use powerlist::tabulate;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    #[test]
    fn limit_truncates() {
        let mut s = LimitSpliterator::new(SliceSpliterator::new((0..10).collect::<Vec<_>>()), 4);
        assert_eq!(s.estimate_size(), 4);
        assert_eq!(drain(&mut s), vec![0, 1, 2, 3]);
    }

    #[test]
    fn limit_longer_than_source() {
        let mut s = LimitSpliterator::new(SliceSpliterator::new(vec![1, 2]), 10);
        assert_eq!(s.estimate_size(), 2);
        assert_eq!(drain(&mut s), vec![1, 2]);
    }

    #[test]
    fn limit_zero_is_empty() {
        let mut s = LimitSpliterator::new(SliceSpliterator::new(vec![1, 2]), 0);
        assert_eq!(s.estimate_size(), 0);
        assert!(drain(&mut s).is_empty());
    }

    #[test]
    fn limit_split_preserves_prefix_semantics() {
        // limit 5 over [0..8): prefix [0..4) gets allowance 4, suffix 1.
        let mut s = LimitSpliterator::new(TieSpliterator::over(tabulate(8, |i| i).unwrap()), 5);
        let mut prefix = s.try_split().unwrap();
        let mut all = drain(&mut prefix);
        all.extend(drain(&mut s));
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn skip_drops_prefix() {
        let mut s = SkipSpliterator::new(SliceSpliterator::new((0..10).collect::<Vec<_>>()), 7);
        assert_eq!(s.estimate_size(), 3);
        assert_eq!(drain(&mut s), vec![7, 8, 9]);
    }

    #[test]
    fn skip_more_than_source() {
        let mut s = SkipSpliterator::new(SliceSpliterator::new(vec![1, 2]), 5);
        assert_eq!(s.estimate_size(), 0);
        assert!(drain(&mut s).is_empty());
    }

    #[test]
    fn skip_split_absorbs_in_prefix() {
        // skip 3 over [0..8): prefix [0..4) absorbs all 3.
        let mut s = SkipSpliterator::new(TieSpliterator::over(tabulate(8, |i| i).unwrap()), 3);
        let mut prefix = s.try_split().unwrap();
        let mut all = drain(&mut prefix);
        all.extend(drain(&mut s));
        assert_eq!(all, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn skip_then_limit_composition() {
        let inner = SliceSpliterator::new((0..20).collect::<Vec<_>>());
        let skipped = SkipSpliterator::new(inner, 5);
        let mut limited = LimitSpliterator::new(skipped, 4);
        assert_eq!(drain(&mut limited), vec![5, 6, 7, 8]);
    }

    #[test]
    fn truncation_drops_power2() {
        let s = LimitSpliterator::new(TieSpliterator::over(tabulate(8, |i| i).unwrap()), 3);
        assert!(!s.has_characteristics(Characteristics::POWER2));
        let s = SkipSpliterator::new(TieSpliterator::over(tabulate(8, |i| i).unwrap()), 3);
        assert!(!s.has_characteristics(Characteristics::POWER2));
    }

    /// A SIZED slice with the exactness flags stripped — models a
    /// filtered inner whose estimate is only an upper bound.
    struct Opaque(SliceSpliterator<i32>);

    impl ItemSource<i32> for Opaque {
        fn try_advance(&mut self, action: &mut dyn FnMut(i32)) -> bool {
            self.0.try_advance(action)
        }
        fn for_each_remaining(&mut self, action: &mut dyn FnMut(i32)) {
            self.0.for_each_remaining(action)
        }
        fn estimate_size(&self) -> usize {
            self.0.estimate_size()
        }
    }

    impl LeafAccess<i32> for Opaque {}

    impl Spliterator<i32> for Opaque {
        fn try_split(&mut self) -> Option<Self> {
            self.0.try_split().map(Opaque)
        }
        fn characteristics(&self) -> Characteristics {
            self.0
                .characteristics()
                .without(Characteristics::SIZED | Characteristics::SUBSIZED)
        }
    }

    #[test]
    fn exact_size_tracks_truncation_exactly() {
        // Over a SIZED inner, truncated estimates are exact — including
        // the saturating over-skip, which must report exactly zero
        // rather than wrap.
        let s = SkipSpliterator::new(SliceSpliterator::new((0..10).collect::<Vec<_>>()), 7);
        assert_eq!(s.exact_size(), Some(3));
        let s = SkipSpliterator::new(SliceSpliterator::new(vec![1, 2]), 5);
        assert_eq!(s.exact_size(), Some(0));
        let s = LimitSpliterator::new(SliceSpliterator::new(vec![1, 2]), 10);
        assert_eq!(s.exact_size(), Some(2));
        let s = LimitSpliterator::new(SliceSpliterator::new((0..10).collect::<Vec<_>>()), 4);
        assert_eq!(s.exact_size(), Some(4));
    }

    #[test]
    fn truncation_over_an_inexact_inner_stays_inexact() {
        // skip 4 over an upper bound of 10: the residue estimate (6) is
        // still only an upper bound, and `exact_size` must refuse it —
        // this is the value the driver's leaf cutoff and the tuner's
        // size bucketing consume.
        let s = SkipSpliterator::new(Opaque(SliceSpliterator::new((0..10).collect())), 4);
        assert_eq!(s.estimate_size(), 6);
        assert_eq!(s.exact_size(), None);
        let s = LimitSpliterator::new(Opaque(SliceSpliterator::new((0..10).collect())), 4);
        assert_eq!(s.exact_size(), None);
        // And allowance distribution refuses to split what it cannot
        // count: inexact inners stay sequential.
        let mut s = SkipSpliterator::new(Opaque(SliceSpliterator::new((0..10).collect())), 1);
        assert!(s.try_split().is_none());
        let mut s = LimitSpliterator::new(Opaque(SliceSpliterator::new((0..10).collect())), 8);
        assert!(s.try_split().is_none());
    }

    #[test]
    fn peek_observes_everything() {
        let seen = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&seen);
        let mut s = PeekSpliterator::new(
            SliceSpliterator::new((0..9i64).collect::<Vec<_>>()),
            Arc::new(move |_: &i64| {
                s2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let out = drain(&mut s);
        assert_eq!(out.len(), 9);
        assert_eq!(seen.load(Ordering::Relaxed), 9);
    }
}
