//! Execution sessions: the unified config / error surface of `collect`.
//!
//! The front-end had sprawled into `collect_seq` / `collect_par` /
//! `collect_par_with` plus per-stream knobs (`with_pool`,
//! `with_leaf_size`, `with_split_policy`). [`ExecConfig`] folds all of
//! them into one builder-style value consumed by a single fallible
//! driver ([`crate::collect::try_collect_with`]); the legacy entry
//! points survive as thin shims over it.
//!
//! The fallible layer is organised around an [`ExecSession`]: a
//! first-cancel-wins [`CancelToken`] plus an optional [`Deadline`],
//! polled cooperatively at every split, leaf-entry and combine point of
//! the divide-and-conquer descent. User code (accumulators, combiners,
//! finishers) runs under `catch_unwind`, so a panic becomes a value —
//! [`ExecError::Panicked`] — and trips the token so sibling subtrees
//! stop descending instead of computing results that will be discarded.
//! The pool itself never sees an unwinding task and stays reusable.

use forkjoin::{CancelReason, CancelToken, Deadline, ForkJoinPool, SplitPolicy};
use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Whether a terminal operation runs on the calling thread or a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Drain on the calling thread, no splitting (Java's sequential
    /// stream).
    Seq,
    /// Divide-and-conquer on a fork-join pool.
    Par,
}

/// The unified execution configuration: mode, pool, split policy, and
/// per-run fault-tolerance limits (deadline, cancel token, saturation
/// fallback threshold).
///
/// ```
/// use jstreams::{stream_support, ExecConfig, SliceSpliterator};
/// use std::time::Duration;
///
/// let cfg = ExecConfig::par()
///     .with_leaf_size(64)
///     .with_deadline(Duration::from_secs(5));
/// let sum = stream_support(SliceSpliterator::new((0i64..1024).collect()), true)
///     .map(|x| x * 2)
///     .try_collect(jstreams::ReduceCollector::new(0, |a, b| a + b), &cfg)
///     .unwrap();
/// assert_eq!(sum, 1023 * 1024);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExecConfig {
    mode: Option<ExecMode>,
    pool: Option<Arc<ForkJoinPool>>,
    policy: Option<SplitPolicy>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    fallback_threshold: Option<usize>,
    ranks: Option<usize>,
    tuner: Option<Arc<pltune::PlanCache>>,
    placement: Option<bool>,
}

impl ExecConfig {
    /// A parallel configuration (the default) — pool and split policy
    /// resolved lazily (global pool, `default_leaf_size`) unless set.
    pub fn par() -> Self {
        ExecConfig::default().with_mode(ExecMode::Par)
    }

    /// A sequential configuration: one leaf on the calling thread.
    pub fn seq() -> Self {
        ExecConfig::default().with_mode(ExecMode::Seq)
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Pins parallel execution to `pool` (default: the global pool).
    pub fn with_pool(mut self, pool: Arc<ForkJoinPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Selects the split policy for parallel execution.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Shorthand for [`SplitPolicy::Fixed`] with a static leaf size.
    pub fn with_leaf_size(self, leaf_size: usize) -> Self {
        self.with_split_policy(SplitPolicy::Fixed(leaf_size.max(1)))
    }

    /// Bounds the run to `budget` of wall-clock time; past it the
    /// session cancels with [`ExecError::DeadlineExceeded`]. Checked at
    /// split, leaf-entry and combine points, so the worst-case overrun
    /// is one leaf.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a caller-held [`CancelToken`]; tripping it (from any
    /// thread) aborts the run with [`ExecError::Cancelled`] at the next
    /// checkpoint. Without one, each fallible run creates a private
    /// token (used internally for panic containment).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Degrades to the sequential route when the pool's queued backlog
    /// exceeds `threshold` tasks at submission time (recorded as a
    /// `Fallback` event). Off by default.
    pub fn with_fallback_threshold(mut self, threshold: usize) -> Self {
        self.fallback_threshold = Some(threshold);
        self
    }

    /// Number of simulated MPI ranks for rank-based executors (JPLF's
    /// `MpiExecutor::from_config`); defaults to the machine parallelism.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Enables self-tuning execution against the shared plan cache:
    /// when no explicit split policy is set, parallel drivers
    /// fingerprint the pipeline and consult `cache` — first sight runs
    /// a short calibration sweep and installs the winner; later runs
    /// (including other processes, via [`pltune::PlanCache::load`])
    /// reuse it. An explicit [`ExecConfig::with_split_policy`] /
    /// [`ExecConfig::with_leaf_size`] always takes precedence over the
    /// tuner.
    pub fn auto_tune(mut self, cache: Arc<pltune::PlanCache>) -> Self {
        self.tuner = Some(cache);
        self
    }

    /// The execution mode ([`ExecMode::Par`] unless set).
    pub fn mode(&self) -> ExecMode {
        self.mode.unwrap_or(ExecMode::Par)
    }

    /// The pinned pool, when set.
    pub fn pool(&self) -> Option<&Arc<ForkJoinPool>> {
        self.pool.as_ref()
    }

    /// The split policy, when set.
    pub fn policy(&self) -> Option<SplitPolicy> {
        self.policy
    }

    /// The wall-clock budget, when set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The caller-held cancel token, when set.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The saturation fallback threshold, when set.
    pub fn fallback_threshold(&self) -> Option<usize> {
        self.fallback_threshold
    }

    /// The simulated-MPI rank count, when set.
    pub fn ranks(&self) -> Option<usize> {
        self.ranks
    }

    /// The plan cache enabling self-tuning execution, when set.
    pub fn tuner(&self) -> Option<&Arc<pltune::PlanCache>> {
        self.tuner.as_ref()
    }

    /// Enables or disables the destination-passing (placement) collect
    /// route for eligible pipelines (see [`crate::placement`]). On by
    /// default; `with_placement(false)` forces the splice route — the
    /// A/B switch the placement benchmarks use.
    pub fn with_placement(mut self, enabled: bool) -> Self {
        self.placement = Some(enabled);
        self
    }

    /// Whether the placement collect route may be used (`true` unless
    /// disabled).
    pub fn placement(&self) -> bool {
        self.placement.unwrap_or(true)
    }
}

/// Why a fallible terminal operation did not produce a value.
pub enum ExecError {
    /// User code (accumulator, combiner, finisher, leaf kernel)
    /// panicked; the payload is carried as a value instead of unwinding
    /// through the scheduler.
    Panicked(Box<dyn Any + Send + 'static>),
    /// The session's [`CancelToken`] was tripped by the caller.
    Cancelled,
    /// The session's wall-clock budget ran out.
    DeadlineExceeded {
        /// Time from session start to the checkpoint that observed the
        /// expiry.
        elapsed: Duration,
    },
    /// A PowerList shape violation (e.g. a non-power-of-two source fed
    /// to a PowerList collect).
    Shape(powerlist::Error),
}

impl ExecError {
    /// The panic payload rendered as a string, when this is
    /// [`ExecError::Panicked`] with a `&str` / `String` payload (the
    /// common `panic!("...")` case).
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            ExecError::Panicked(p) => p
                .downcast_ref::<&'static str>()
                .copied()
                .or_else(|| p.downcast_ref::<String>().map(String::as_str)),
            _ => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Panicked(_) => match self.panic_message() {
                Some(msg) => write!(f, "task panicked: {msg}"),
                None => write!(f, "task panicked (non-string payload)"),
            },
            ExecError::Cancelled => write!(f, "execution cancelled"),
            ExecError::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {elapsed:?}")
            }
            ExecError::Shape(e) => write!(f, "shape error: {e}"),
        }
    }
}

// The panic payload is not `Debug`, so `Debug` shares the `Display` body.
impl fmt::Debug for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<powerlist::Error> for ExecError {
    fn from(e: powerlist::Error) -> Self {
        ExecError::Shape(e)
    }
}

/// Why a subtree of a fallible run stopped early. The internal currency
/// of the drivers; the root converts it to an [`ExecError`] via
/// [`ExecSession::error_of`].
pub enum Interrupt {
    /// A task panicked; the payload travels with the interrupt.
    Panicked(Box<dyn Any + Send + 'static>),
    /// A checkpoint observed the tripped token.
    Cancelled(CancelReason),
}

impl Interrupt {
    /// Combines the interrupts of two sibling subtrees: a panic (with
    /// its payload) always outranks a cancellation, and the left panic
    /// wins when both halves panicked (encounter order).
    pub fn merge(self, other: Interrupt) -> Interrupt {
        match (self, other) {
            (i @ Interrupt::Panicked(_), _) => i,
            (_, i @ Interrupt::Panicked(_)) => i,
            (i @ Interrupt::Cancelled(_), _) => i,
        }
    }
}

impl fmt::Debug for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Panicked(_) => f.write_str("Interrupt::Panicked(..)"),
            Interrupt::Cancelled(r) => write!(f, "Interrupt::Cancelled({r:?})"),
        }
    }
}

/// One fallible run's cancellation context: the shared token plus the
/// armed deadline. Cloned into every forked task of the run.
///
/// Drivers call [`ExecSession::check`] at split, leaf-entry and combine
/// points and wrap user code in [`ExecSession::run`]; both produce
/// [`Interrupt`]s that bubble to the root as values, never as unwinds.
#[derive(Clone, Debug)]
pub struct ExecSession {
    token: CancelToken,
    deadline: Option<Deadline>,
}

impl Default for ExecSession {
    fn default() -> Self {
        ExecSession {
            token: CancelToken::new(),
            deadline: None,
        }
    }
}

impl ExecSession {
    /// Arms a session from `cfg`: the caller's token (or a fresh private
    /// one) and the deadline measured from now.
    pub fn new(cfg: &ExecConfig) -> Self {
        ExecSession {
            token: cfg.cancel_token().cloned().unwrap_or_default(),
            deadline: cfg.deadline().map(Deadline::after),
        }
    }

    /// The session's token (e.g. for handing to sibling subsystems).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The armed deadline, when the config set one.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// A cooperative checkpoint: observes a tripped token or an expired
    /// deadline (tripping the token with [`CancelReason::Deadline`] so
    /// sibling tasks see it without re-reading the clock). On `Err`, one
    /// `Event::Cancel` is emitted — the count of pruned checkpoints in a
    /// recorded [`plobs::RunReport`].
    pub fn check(&self) -> Result<(), Interrupt> {
        let reason = match self.token.reason() {
            Some(r) => r,
            None => match self.deadline {
                Some(d) if d.expired() => {
                    self.token.cancel(CancelReason::Deadline);
                    // A racing cancel may have won with another reason.
                    self.token.reason().unwrap_or(CancelReason::Deadline)
                }
                _ => return Ok(()),
            },
        };
        plobs::emit(plobs::Event::Cancel { reason });
        Err(Interrupt::Cancelled(reason))
    }

    /// Runs a piece of user code under panic containment: a panic trips
    /// the token with [`CancelReason::Panic`] (so sibling subtrees
    /// short-circuit) and comes back as [`Interrupt::Panicked`].
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> Result<R, Interrupt> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(v) => Ok(v),
            Err(payload) => {
                self.token.cancel(CancelReason::Panic);
                Err(Interrupt::Panicked(payload))
            }
        }
    }

    /// Like [`ExecSession::new`], but always arms a fresh private token,
    /// even when `cfg` carries a caller-held one. Search drivers run on
    /// a private session so their `Found` short-circuit (and panic
    /// containment) never trips a token the caller may reuse across
    /// runs; the caller's token is observed separately at every
    /// checkpoint (see [`crate::search::SearchSession`]).
    pub(crate) fn private(cfg: &ExecConfig) -> Self {
        ExecSession {
            token: CancelToken::new(),
            deadline: cfg.deadline().map(Deadline::after),
        }
    }

    /// Converts a root-level [`Interrupt`] into the public error.
    pub fn error_of(&self, interrupt: Interrupt) -> ExecError {
        match interrupt {
            Interrupt::Panicked(p) => ExecError::Panicked(p),
            Interrupt::Cancelled(CancelReason::Deadline) => ExecError::DeadlineExceeded {
                elapsed: self.deadline.map_or(Duration::ZERO, |d| d.elapsed()),
            },
            Interrupt::Cancelled(_) => ExecError::Cancelled,
        }
    }
}

/// Unwraps a fallible-driver result for the legacy (infallible) entry
/// points: panics resume on the caller, and cancellation is impossible
/// because legacy shims arm a private, never-tripped session.
pub(crate) fn unwrap_interrupt<R>(r: Result<R, Interrupt>) -> R {
    match r {
        Ok(v) => v,
        Err(Interrupt::Panicked(p)) => std::panic::resume_unwind(p),
        Err(Interrupt::Cancelled(reason)) => {
            unreachable!("legacy collect cancelled ({reason:?}) without a session")
        }
    }
}

/// The single definition of infallible-shim semantics: every infallible
/// terminal (`collect`, `reduce`, `count`, the quantifiers, …) is a
/// documented shim that calls its fallible `try_` twin and finishes
/// through here. A contained panic resumes on the caller, exactly as if
/// the terminal had run inline; any other failure (cancellation,
/// deadline, shape) aborts with a message pointing at the `try_` twin —
/// those can only arise when the stream's [`ExecConfig`] armed
/// fault-tolerance knobs, and callers who arm them should be calling
/// the fallible surface.
pub(crate) fn finish_infallible<R>(result: Result<R, ExecError>, op: &str) -> R {
    match result {
        Ok(v) => v,
        Err(ExecError::Panicked(payload)) => std::panic::resume_unwind(payload),
        Err(e) => panic!("stream {op} failed: {e}; use the try_ variant for fallible execution"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_parallel_and_unset() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.mode(), ExecMode::Par);
        assert!(cfg.pool().is_none());
        assert!(cfg.policy().is_none());
        assert!(cfg.deadline().is_none());
        assert!(cfg.cancel_token().is_none());
        assert!(cfg.fallback_threshold().is_none());
        assert!(cfg.ranks().is_none());
        assert!(cfg.tuner().is_none());
        assert!(cfg.placement(), "placement route is on by default");
    }

    #[test]
    fn auto_tune_attaches_a_shared_cache() {
        let cache = Arc::new(pltune::PlanCache::new());
        let cfg = ExecConfig::par().auto_tune(Arc::clone(&cache));
        assert!(Arc::ptr_eq(cfg.tuner().unwrap(), &cache));
        // Cloning the config shares the same cache.
        assert!(Arc::ptr_eq(cfg.clone().tuner().unwrap(), &cache));
    }

    #[test]
    fn builder_sets_every_knob() {
        let token = CancelToken::new();
        let cfg = ExecConfig::seq()
            .with_leaf_size(0) // clamped to 1
            .with_deadline(Duration::from_millis(5))
            .with_cancel_token(token.clone())
            .with_fallback_threshold(8)
            .with_ranks(4)
            .with_placement(false);
        assert_eq!(cfg.mode(), ExecMode::Seq);
        assert!(!cfg.placement());
        assert_eq!(cfg.policy(), Some(SplitPolicy::Fixed(1)));
        assert_eq!(cfg.deadline(), Some(Duration::from_millis(5)));
        assert_eq!(cfg.fallback_threshold(), Some(8));
        assert_eq!(cfg.ranks(), Some(4));
        token.cancel(CancelReason::User);
        assert!(cfg.cancel_token().unwrap().is_cancelled());
    }

    #[test]
    fn session_check_observes_token_and_deadline() {
        let s = ExecSession::default();
        assert!(s.check().is_ok());
        s.token().cancel(CancelReason::User);
        assert!(matches!(
            s.check(),
            Err(Interrupt::Cancelled(CancelReason::User))
        ));

        let cfg = ExecConfig::par().with_deadline(Duration::ZERO);
        let s = ExecSession::new(&cfg);
        assert!(matches!(
            s.check(),
            Err(Interrupt::Cancelled(CancelReason::Deadline))
        ));
        // The expiry tripped the shared token for siblings.
        assert_eq!(s.token().reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn session_run_contains_panics_and_trips_token() {
        let s = ExecSession::default();
        let r = s.run(|| -> i32 { panic!("leaf bang") });
        match r {
            Err(Interrupt::Panicked(_)) => {}
            _ => panic!("expected a contained panic"),
        }
        assert_eq!(s.token().reason(), Some(CancelReason::Panic));
        // Values pass through untouched.
        assert_eq!(s.run(|| 5).ok(), Some(5));
    }

    #[test]
    fn merge_prefers_panics() {
        let p = Interrupt::Panicked(Box::new("x"));
        let c = Interrupt::Cancelled(CancelReason::Panic);
        assert!(matches!(c.merge(p), Interrupt::Panicked(_)));
        let c1 = Interrupt::Cancelled(CancelReason::User);
        let c2 = Interrupt::Cancelled(CancelReason::Deadline);
        assert!(matches!(
            c1.merge(c2),
            Interrupt::Cancelled(CancelReason::User)
        ));
    }

    #[test]
    fn exec_error_formatting_and_message() {
        let e = ExecError::Panicked(Box::new("boom"));
        assert_eq!(e.panic_message(), Some("boom"));
        assert!(e.to_string().contains("boom"));
        let e = ExecError::Panicked(Box::new(String::from("sboom")));
        assert_eq!(e.panic_message(), Some("sboom"));
        let e = ExecError::Panicked(Box::new(17u32));
        assert_eq!(e.panic_message(), None);
        assert!(e.to_string().contains("non-string"));
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        let e = ExecError::DeadlineExceeded {
            elapsed: Duration::from_millis(3),
        };
        assert!(e.to_string().contains("deadline"));
        let e: ExecError = powerlist::Error::NotPowerOfTwo(12).into();
        assert!(e.to_string().contains("power of two"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_of_maps_reasons() {
        let cfg = ExecConfig::par().with_deadline(Duration::ZERO);
        let s = ExecSession::new(&cfg);
        let i = s.check().unwrap_err();
        assert!(matches!(s.error_of(i), ExecError::DeadlineExceeded { .. }));
        let s = ExecSession::default();
        assert!(matches!(
            s.error_of(Interrupt::Cancelled(CancelReason::User)),
            ExecError::Cancelled
        ));
        assert!(matches!(
            s.error_of(Interrupt::Panicked(Box::new(()))),
            ExecError::Panicked(_)
        ));
    }
}
