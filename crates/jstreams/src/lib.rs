//! # jstreams — Java-Streams semantics in Rust, with the PowerList adaptation
//!
//! This crate reproduces the machinery of the paper *"Enhancing Java
//! Streams API with PowerList Computation"*: a stream pipeline whose
//! parallel execution is directed by a splittable iterator
//! ([`Spliterator`]) and whose terminal mutable reduction
//! ([`Stream::collect`] with a [`Collector`]) acts as the **template
//! method of a divide-and-conquer skeleton**:
//!
//! * the splitting phase is controlled by *which spliterator* the stream
//!   was created from — [`TieSpliterator`] halves (`p | q`),
//!   [`ZipSpliterator`] splits by parity (`p ♮ q`) exactly like the
//!   paper's `trySplit`;
//! * the leaf phase runs the collector's supplier + accumulator (or an
//!   overridden [`Collector::leaf`] kernel). When the leaf's spliterator
//!   exposes its remaining elements as a borrowed run ([`LeafAccess`])
//!   and the collector provides a matching slice kernel
//!   ([`Collector::leaf_slice`] / [`Collector::leaf_strided`]), the
//!   driver runs the leaf **zero-copy** over that borrow — no
//!   per-element callback dispatch and no clones;
//! * the combining phase runs the combiner — for PowerList results,
//!   [`PowerArray::tie_all`](powerlist::PowerArray::tie_all) /
//!   [`PowerArray::zip_all`](powerlist::PowerArray::zip_all);
//! * the [`Characteristics::POWER2`] flag gates PowerList collects, and
//!   [`SharedState`] + [`HookedZipSpliterator`] implement the paper's
//!   split-phase ↔ collect-phase communication mechanism (the Java
//!   inner-class trick).
//!
//! ## The paper's identity example
//!
//! ```
//! use jstreams::{power_stream, collect_powerlist, Decomposition};
//! use powerlist::tabulate;
//!
//! let data = tabulate(16, |i| i as f64).unwrap();
//! // create the stream from a ZipSpliterator, collect with zipAll:
//! let stream = power_stream(data.clone(), Decomposition::Zip);
//! let out = collect_powerlist(stream, Decomposition::Zip).unwrap();
//! assert_eq!(out, data); // decomposition and combining verified
//! ```

#![warn(missing_docs)]

pub mod characteristics;
pub mod collect;
pub mod collector;
pub mod exec;
pub mod fused;
pub mod nway;
pub mod ops;
pub mod placement;
pub mod power;
pub mod prelude;
pub mod search;
pub mod shared;
pub mod spliterator;
pub mod stream;
pub mod tie;
pub mod truncate;
pub mod zip;

pub use characteristics::Characteristics;
#[allow(deprecated)]
pub use collect::{
    collect_par, collect_par_with, collect_seq, default_leaf_size, run_leaf, try_collect_with,
};
pub use collector::{
    Collector, CountCollector, ExtremumCollector, FnCollector, JoiningCollector, ReduceCollector,
    VecCollector,
};
pub use exec::{ExecConfig, ExecError, ExecMode, ExecSession, Interrupt};
pub use forkjoin::{AdaptiveSplit, CancelReason, CancelToken, Deadline, SplitPolicy};
pub use fused::{
    FilterStage, FusePipe, FusedSpliterator, FusedStage, IdentityStage, InspectStage, MapStage,
};
pub use nway::{
    collect_nway_par, collect_nway_seq, NTieSpliterator, NWayCollector, NWayDecomposition,
    NWaySpliterator, NZipSpliterator, PListCollector,
};
pub use placement::{
    descend, fixed_leaves, JoiningPlacement, OutputBuffer, PlacementBuf, PlacementSpec,
    VecPlacement, Window, WindowRule,
};
pub use pltune::{Fingerprint, Plan, PlanCache};
pub use power::{
    collect_powerlist, power_stream, try_collect_powerlist, Decomposition, PowerListCollector,
    PowerMapCollector, PowerSpliterator,
};
pub use search::{
    try_all_match_with, try_any_match_with, try_find_any_with, try_find_first_with,
    try_none_match_with, FirstHit, SearchSession,
};
pub use shared::SharedState;
pub use spliterator::{
    check_descriptor, require_power2, ItemSource, LeafAccess, SliceSpliterator, Spliterator,
};
pub use stream::{stream_support, Stream};
pub use tie::TieSpliterator;
pub use truncate::{LimitSpliterator, PeekSpliterator, SkipSpliterator};
pub use zip::{HookedZipSpliterator, ZipSpliterator};
