//! The one-line import for stream programs:
//! `use jstreams::prelude::*;`
//!
//! Re-exports the surface a typical pipeline touches — stream
//! construction, the execution configuration and its error type, split
//! policies, the collector set, the PowerList entry points, and the
//! spliterator kinds streams are built from. Driver internals
//! (`try_collect_with`, `run_leaf`, leaf-access traits) stay behind
//! their modules: programs that reach that deep should name them
//! explicitly.

pub use crate::characteristics::Characteristics;
pub use crate::collector::{
    Collector, CountCollector, ExtremumCollector, FnCollector, JoiningCollector, ReduceCollector,
    VecCollector,
};
pub use crate::exec::{ExecConfig, ExecError, ExecMode};
pub use crate::power::{
    collect_powerlist, power_stream, try_collect_powerlist, Decomposition, PowerListCollector,
    PowerMapCollector, PowerSpliterator,
};
pub use crate::search::{FirstHit, SearchSession};
pub use crate::shared::SharedState;
pub use crate::spliterator::{SliceSpliterator, Spliterator};
pub use crate::stream::{stream_support, Stream};
pub use crate::tie::TieSpliterator;
pub use crate::zip::{HookedZipSpliterator, ZipSpliterator};
pub use forkjoin::{AdaptiveSplit, CancelReason, CancelToken, Deadline, ForkJoinPool, SplitPolicy};
