//! `ZipSpliterator`: splits a PowerList source like the **zip** operator.
//!
//! `try_split` partitions the remaining elements by parity: the returned
//! prefix takes the even positions (the `p` of `p ♮ q`, starting at the
//! current cursor), `self` keeps the odd positions, and both strides
//! double — exactly the paper's `trySplit`:
//!
//! ```java
//! int lo = start; int step = incr;
//! if (start + step <= end) {
//!     incr *= 2;
//!     start += step;
//!     return new ZipSpliterator(list, lo, end - step, incr);
//! } else return null; // too small to split
//! ```
//!
//! A zip-decomposed source "could not be recreated by using simple
//! concatenation" (Section IV.A): collectors draining this spliterator
//! must recombine partial results with
//! [`PowerArray::zip_all`](powerlist::PowerArray::zip_all).
//!
//! [`HookedZipSpliterator`] adds the paper's splitting-phase mechanism:
//! per-spliterator local state transformed on every split (the inner-class
//! `PZipSpliterator` carrying `x_degree`), with shared state reachable
//! from the hook closure.

use crate::characteristics::Characteristics;
use crate::spliterator::{ItemSource, LeafAccess, Spliterator};
use powerlist::{PowerList, PowerView, Storage};
use std::sync::Arc;

/// Spliterator decomposing a power-of-two source by parity (zip).
///
/// Carries the paper's `(list, start, end, incr)` descriptor with
/// **inclusive** `end`.
pub struct ZipSpliterator<T> {
    storage: Storage<T>,
    start: usize,
    end: usize, // inclusive physical index of the last element
    incr: usize,
    level: u32,
    exhausted: bool,
}

impl<T> ZipSpliterator<T> {
    /// Spliterator over a whole PowerList.
    pub fn over(list: PowerList<T>) -> Self {
        let view = list.view();
        Self::from_view(&view)
    }

    /// Spliterator over an existing no-copy view.
    pub fn from_view(view: &PowerView<T>) -> Self {
        ZipSpliterator {
            storage: view.storage(),
            start: view.start(),
            end: view.start() + (view.len() - 1) * view.incr(),
            incr: view.incr().max(1),
            level: 0,
            exhausted: false,
        }
    }

    /// Raw descriptor constructor (inclusive `end`), mirroring the
    /// paper's `new ZipSpliterator<Double>(list, 0, list.size()-1)`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid descriptor; use
    /// [`ZipSpliterator::try_from_parts`] for untrusted inputs.
    pub fn from_parts(storage: Storage<T>, start: usize, end: usize, incr: usize) -> Self {
        assert!(incr >= 1, "increment must be at least 1");
        assert!(start <= end, "start must not exceed end");
        assert!(end < storage.len(), "end out of bounds");
        ZipSpliterator {
            storage,
            start,
            end,
            incr,
            level: 0,
            exhausted: false,
        }
    }

    /// Checked descriptor constructor: validates the `(start, end, incr)`
    /// triple and returns a [`powerlist::Error`] instead of panicking —
    /// the shape-error route of the fallible execution surface.
    pub fn try_from_parts(
        storage: Storage<T>,
        start: usize,
        end: usize,
        incr: usize,
    ) -> powerlist::Result<Self> {
        crate::spliterator::check_descriptor(storage.len(), start, end, incr)?;
        Ok(Self::from_parts(storage, start, end, incr))
    }

    /// Number of splits that produced this spliterator.
    pub fn level(&self) -> u32 {
        self.level
    }

    fn remaining(&self) -> usize {
        if self.exhausted {
            0
        } else {
            (self.end - self.start) / self.incr + 1
        }
    }
}

impl<T: Clone> ItemSource<T> for ZipSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        if self.exhausted {
            return false;
        }
        action(self.storage.get(self.start).clone());
        if self.start + self.incr > self.end {
            self.exhausted = true;
        } else {
            self.start += self.incr;
        }
        true
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        if self.exhausted {
            return;
        }
        let mut i = self.start;
        loop {
            action(self.storage.get(i).clone());
            if i + self.incr > self.end {
                break;
            }
            i += self.incr;
        }
        self.exhausted = true;
    }

    fn estimate_size(&self) -> usize {
        self.remaining()
    }
}

impl<T> LeafAccess<T> for ZipSpliterator<T> {
    // Before any split the run is contiguous; after zip splits each
    // residue class has stride > 1, where only the strided borrow exists
    // (`try_as_slice` must return `None` — the combiner-facing contract
    // the edge-case tests pin down).
    fn try_as_slice(&self) -> Option<&[T]> {
        if self.exhausted {
            Some(&[])
        } else if self.incr == 1 {
            Some(&self.storage.as_slice()[self.start..=self.end])
        } else {
            None
        }
    }

    fn try_as_strided(&self) -> Option<(&[T], usize)> {
        if self.exhausted {
            Some((&[], 1))
        } else {
            Some((&self.storage.as_slice()[self.start..=self.end], self.incr))
        }
    }

    fn mark_drained(&mut self) {
        self.exhausted = true;
    }
}

impl<T: Clone + Send + Sync> Spliterator<T> for ZipSpliterator<T> {
    fn try_split(&mut self) -> Option<Self> {
        // Paper: `if (start + step <= end)` — at least two elements left.
        if self.exhausted || self.start + self.incr > self.end {
            return None;
        }
        let lo = self.start;
        let step = self.incr;
        self.level += 1;
        self.incr *= 2;
        self.start += step;
        Some(ZipSpliterator {
            storage: self.storage.clone(),
            start: lo,
            end: self.end - step,
            incr: self.incr,
            level: self.level,
            exhausted: false,
        })
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::powerlist_default()
    }

    // Parity splits interleave the halves: the returned "prefix" holds
    // the even positions, not an encounter-order prefix.
    fn prefix_splits(&self) -> bool {
        false
    }

    // Physical storage indices are monotone in the original list's
    // encounter order, and both halves of every split keep addressing
    // the same storage — the rank keyspace order-sensitive terminals
    // (find_first) need under interleaving.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        Some((self.start, self.incr))
    }
}

/// A [`ZipSpliterator`] with splitting-phase state: the Rust rendering of
/// the paper's specialised inner-class spliterator.
///
/// `local` is per-spliterator state (the paper's per-instance
/// `x_degree`); on every split the `hook` runs with mutable access to it
/// and produces the local state for the split-off prefix. Shared,
/// synchronised state (the outer `functionObject` of the paper's general
/// mechanism) is captured inside the hook closure, typically as a
/// [`SharedState`](crate::SharedState).
pub struct HookedZipSpliterator<T, L> {
    base: ZipSpliterator<T>,
    local: L,
    hook: Arc<dyn Fn(&mut L) -> L + Send + Sync>,
}

impl<T, L> HookedZipSpliterator<T, L> {
    /// Wraps a zip spliterator with initial local state and a split hook.
    pub fn new(
        base: ZipSpliterator<T>,
        local: L,
        hook: Arc<dyn Fn(&mut L) -> L + Send + Sync>,
    ) -> Self {
        HookedZipSpliterator { base, local, hook }
    }

    /// The current local state.
    pub fn local(&self) -> &L {
        &self.local
    }

    /// The split level of the underlying spliterator.
    pub fn level(&self) -> u32 {
        self.base.level()
    }
}

impl<T: Clone, L> ItemSource<T> for HookedZipSpliterator<T, L> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.base.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.base.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.base.estimate_size()
    }
}

impl<T, L> LeafAccess<T> for HookedZipSpliterator<T, L> {
    fn try_as_slice(&self) -> Option<&[T]> {
        self.base.try_as_slice()
    }

    fn try_as_strided(&self) -> Option<(&[T], usize)> {
        self.base.try_as_strided()
    }

    fn mark_drained(&mut self) {
        self.base.mark_drained();
    }
}

impl<T, L> Spliterator<T> for HookedZipSpliterator<T, L>
where
    T: Clone + Send + Sync,
    L: Send,
{
    fn try_split(&mut self) -> Option<Self> {
        let prefix = self.base.try_split()?;
        // Run the splitting-phase work: mutate our local state and derive
        // the prefix's. (In the paper both halves observe the doubled
        // x_degree; hooks implement that by mutate-then-clone.)
        let prefix_local = (self.hook)(&mut self.local);
        Some(HookedZipSpliterator {
            base: prefix,
            local: prefix_local,
            hook: Arc::clone(&self.hook),
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.base.characteristics()
    }

    fn prefix_splits(&self) -> bool {
        self.base.prefix_splits()
    }

    fn encounter_rank(&self) -> Option<(usize, usize)> {
        self.base.encounter_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::require_power2;
    use powerlist::tabulate;

    #[test]
    fn try_from_parts_validates_descriptor() {
        let storage = Storage::new(vec![0, 1, 2, 3]);
        assert_eq!(
            ZipSpliterator::try_from_parts(storage.clone(), 0, 3, 0).err(),
            Some(powerlist::Error::ZeroIncrement)
        );
        assert_eq!(
            ZipSpliterator::try_from_parts(storage.clone(), 2, 0, 1).err(),
            Some(powerlist::Error::Empty)
        );
        assert_eq!(
            ZipSpliterator::try_from_parts(storage.clone(), 1, 7, 2).err(),
            Some(powerlist::Error::DescriptorOutOfBounds { end: 7, len: 4 })
        );
        let mut ok = ZipSpliterator::try_from_parts(storage, 0, 3, 1).unwrap();
        assert_eq!(drain(&mut ok), vec![0, 1, 2, 3]);
    }

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    fn spl(n: usize) -> ZipSpliterator<usize> {
        ZipSpliterator::over(tabulate(n, |i| i).unwrap())
    }

    #[test]
    fn traverses_in_order() {
        let mut s = spl(8);
        assert_eq!(s.estimate_size(), 8);
        assert_eq!(drain(&mut s), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn split_gives_even_positions() {
        let mut s = spl(8);
        let mut prefix = s.try_split().unwrap();
        assert_eq!(drain(&mut prefix), vec![0, 2, 4, 6]);
        assert_eq!(drain(&mut s), vec![1, 3, 5, 7]);
    }

    #[test]
    fn recursive_zip_splits() {
        // Two levels of zip splitting on [0..8): residue classes mod 4.
        let mut s = spl(8);
        let mut even = s.try_split().unwrap();
        let mut ee = even.try_split().unwrap();
        let mut oo = s.try_split().unwrap();
        assert_eq!(drain(&mut ee), vec![0, 4]); // ≡ 0 (mod 4)
        assert_eq!(drain(&mut even), vec![2, 6]); // ≡ 2 (mod 4)
        assert_eq!(drain(&mut oo), vec![1, 5]); // ≡ 1 (mod 4)
        assert_eq!(drain(&mut s), vec![3, 7]); // ≡ 3 (mod 4)
    }

    #[test]
    fn singleton_does_not_split() {
        let mut s = spl(1);
        assert!(s.try_split().is_none());
        assert_eq!(drain(&mut s), vec![0]);
    }

    #[test]
    fn advertises_power2() {
        let s = spl(4);
        assert!(require_power2(&s).is_ok());
    }

    #[test]
    fn levels_track_depth() {
        let mut s = spl(8);
        assert_eq!(s.level(), 0);
        let p = s.try_split().unwrap();
        assert_eq!(p.level(), 1);
        assert_eq!(s.level(), 1);
        let mut p = p;
        let q = p.try_split().unwrap();
        assert_eq!(q.level(), 2);
    }

    #[test]
    fn hooked_split_transforms_local_state() {
        // Model the polynomial x_degree: local doubles on each split and
        // both halves see the doubled value.
        let base = spl(8);
        let hook: Arc<dyn Fn(&mut u64) -> u64 + Send + Sync> = Arc::new(|local| {
            *local *= 2;
            *local
        });
        let mut h = HookedZipSpliterator::new(base, 1u64, hook);
        let mut left = h.try_split().unwrap();
        assert_eq!(*h.local(), 2);
        assert_eq!(*left.local(), 2);
        let l2 = left.try_split().unwrap();
        assert_eq!(*left.local(), 4);
        assert_eq!(*l2.local(), 4);
        // h was split once: its local stays 2 until it splits again.
        assert_eq!(*h.local(), 2);
    }

    #[test]
    fn hooked_shared_state_sees_max_level() {
        use parking_lot::Mutex;
        let shared = Arc::new(Mutex::new(1u64));
        let s2 = Arc::clone(&shared);
        let hook: Arc<dyn Fn(&mut u64) -> u64 + Send + Sync> = Arc::new(move |local| {
            *local *= 2;
            let mut g = s2.lock();
            if *g < *local {
                *g = *local; // synchronized max-update from the paper
            }
            *local
        });
        let mut h = HookedZipSpliterator::new(spl(8), 1u64, hook);
        let mut a = h.try_split().unwrap();
        let _ = a.try_split().unwrap();
        let _ = h.try_split().unwrap();
        assert_eq!(*shared.lock(), 4);
    }

    #[test]
    fn zip_then_drain_partial() {
        let mut s = spl(4);
        let mut first = None;
        s.try_advance(&mut |x| first = Some(x));
        assert_eq!(first, Some(0));
        assert_eq!(drain(&mut s), vec![1, 2, 3]);
    }
}
