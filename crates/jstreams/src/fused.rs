//! Adapter fusion: pending per-element operations carried beside the
//! source instead of wrapped around it.
//!
//! PR 1's zero-copy leaf kernels only dispatch when the *source*
//! spliterator reaches a leaf — the moment a pipeline contains a `map`
//! or `filter` adapter, `run_leaf` falls back to the per-element cloning
//! drain. This module restores zero-copy traversal for adapted
//! pipelines by changing what an intermediate operation builds: instead
//! of nesting a [`MapSpliterator`] around
//! the source, [`Stream::map`](crate::Stream::map) (and `filter`/`peek`)
//! extend a composable **fused chain** of [`FusedStage`]s carried by a
//! [`FusedSpliterator`] *next to* the untouched source.
//!
//! At a leaf, [`LeafAccess::fused_leaf`] borrows the source's run —
//! contiguous or strided, exactly as the zero-copy kernels do — and
//! drives the chain *push-style* into the collector's accumulator: one
//! monomorphized loop, no per-element `dyn` dispatch, no intermediate
//! clones beyond the single `B -> chain` hand-off. The driver reports
//! these leaves as [`LeafRoute::FusedBorrow`](plobs::LeafRoute).
//!
//! Route-selection rules (see DESIGN.md §10):
//!
//! * sources without borrowed access (or behind truncation adapters,
//!   whose allowance math needs exact per-element counting) answer
//!   `None` from `fused_leaf` and keep the cloning drain;
//! * a chain containing a filter [`drops`](FusedStage::drops)
//!   `SIZED|SUBSIZED|POWER2`, so size-based recursion stops and
//!   limit/skip splitting stay disabled over it, and its leaves report
//!   **survivor** counts, not borrow lengths.

use crate::characteristics::Characteristics;
use crate::collector::Collector;
use crate::ops::{FilterSpliterator, MapSpliterator};
use crate::power::PowerSpliterator;
use crate::spliterator::{ItemSource, LeafAccess, SliceSpliterator, Spliterator};
use crate::tie::TieSpliterator;
use crate::truncate::{LimitSpliterator, PeekSpliterator, SkipSpliterator};
use crate::zip::{HookedZipSpliterator, ZipSpliterator};
use std::marker::PhantomData;
use std::sync::Arc;

/// One composable pending operation chain from source elements `T` to
/// pipeline elements `U`.
///
/// `push` is generic over its sink so a whole chain monomorphizes into
/// straight-line code inside the fused leaf loop; stages are cheap to
/// clone (function objects sit behind `Arc`) because every split clones
/// the chain alongside the split-off source prefix.
pub trait FusedStage<T, U>: Clone + Send + Sync + 'static {
    /// Pushes one source element through the chain; every value that
    /// survives all stages reaches `sink`. Returns `true` when at least
    /// one value reached the sink.
    fn push<Sink: FnMut(U)>(&self, x: T, sink: &mut Sink) -> bool;

    /// `true` when every source element produces exactly one output —
    /// i.e. the chain contains no filter.
    fn exact(&self) -> bool;

    /// The characteristics this chain destroys on its source: map stages
    /// drop `SORTED|DISTINCT`, filter stages drop
    /// `SIZED|SUBSIZED|POWER2`, inspect stages drop nothing.
    fn drops(&self) -> Characteristics;
}

/// The empty chain: passes elements through untouched.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityStage;

impl<T> FusedStage<T, T> for IdentityStage {
    #[inline]
    fn push<Sink: FnMut(T)>(&self, x: T, sink: &mut Sink) -> bool {
        sink(x);
        true
    }

    fn exact(&self) -> bool {
        true
    }

    fn drops(&self) -> Characteristics {
        Characteristics::empty()
    }
}

/// A chain extended by a mapping stage: `prev` then `f`.
///
/// `M` is the element type between `prev` and `f` (needed to tie the
/// two halves together; callers never name it — `Stream::map` infers
/// it).
pub struct MapStage<K, F, M> {
    prev: K,
    f: Arc<F>,
    _mid: PhantomData<fn(M) -> M>,
}

impl<K, F, M> MapStage<K, F, M> {
    /// Extends `prev` with the mapping `f`.
    pub fn new(prev: K, f: F) -> Self {
        MapStage {
            prev,
            f: Arc::new(f),
            _mid: PhantomData,
        }
    }
}

impl<K: Clone, F, M> Clone for MapStage<K, F, M> {
    fn clone(&self) -> Self {
        MapStage {
            prev: self.prev.clone(),
            f: Arc::clone(&self.f),
            _mid: PhantomData,
        }
    }
}

impl<T, M, U, K, F> FusedStage<T, U> for MapStage<K, F, M>
where
    K: FusedStage<T, M>,
    F: Fn(M) -> U + Send + Sync + 'static,
    M: 'static,
{
    #[inline]
    fn push<Sink: FnMut(U)>(&self, x: T, sink: &mut Sink) -> bool {
        let f = &*self.f;
        self.prev.push(x, &mut |m| sink(f(m)))
    }

    fn exact(&self) -> bool {
        self.prev.exact()
    }

    fn drops(&self) -> Characteristics {
        // A non-monotone, non-injective map breaks both orderings.
        self.prev.drops() | (Characteristics::SORTED | Characteristics::DISTINCT)
    }
}

/// A chain extended by a filtering stage: `prev`, then keep only
/// elements satisfying `pred`.
pub struct FilterStage<K, P> {
    prev: K,
    pred: Arc<P>,
}

impl<K, P> FilterStage<K, P> {
    /// Extends `prev` with the predicate `pred`.
    pub fn new(prev: K, pred: P) -> Self {
        FilterStage {
            prev,
            pred: Arc::new(pred),
        }
    }
}

impl<K: Clone, P> Clone for FilterStage<K, P> {
    fn clone(&self) -> Self {
        FilterStage {
            prev: self.prev.clone(),
            pred: Arc::clone(&self.pred),
        }
    }
}

impl<T, U, K, P> FusedStage<T, U> for FilterStage<K, P>
where
    K: FusedStage<T, U>,
    P: Fn(&U) -> bool + Send + Sync + 'static,
{
    #[inline]
    fn push<Sink: FnMut(U)>(&self, x: T, sink: &mut Sink) -> bool {
        let pred = &*self.pred;
        let mut passed = false;
        self.prev.push(x, &mut |u| {
            if pred(&u) {
                passed = true;
                sink(u);
            }
        });
        passed
    }

    fn exact(&self) -> bool {
        false
    }

    fn drops(&self) -> Characteristics {
        // Surviving counts are unknown before traversal.
        self.prev.drops()
            | (Characteristics::SIZED | Characteristics::SUBSIZED | Characteristics::POWER2)
    }
}

/// A chain extended by an observation stage (`peek`): `prev`, then run
/// `observer` on each element without changing the flow.
pub struct InspectStage<K, F> {
    prev: K,
    observer: Arc<F>,
}

impl<K, F> InspectStage<K, F> {
    /// Extends `prev` with the observer `observer`.
    pub fn new(prev: K, observer: F) -> Self {
        InspectStage {
            prev,
            observer: Arc::new(observer),
        }
    }
}

impl<K: Clone, F> Clone for InspectStage<K, F> {
    fn clone(&self) -> Self {
        InspectStage {
            prev: self.prev.clone(),
            observer: Arc::clone(&self.observer),
        }
    }
}

impl<T, U, K, F> FusedStage<T, U> for InspectStage<K, F>
where
    K: FusedStage<T, U>,
    F: Fn(&U) + Send + Sync + 'static,
{
    #[inline]
    fn push<Sink: FnMut(U)>(&self, x: T, sink: &mut Sink) -> bool {
        let obs = &*self.observer;
        self.prev.push(x, &mut |u| {
            obs(&u);
            sink(u);
        })
    }

    fn exact(&self) -> bool {
        self.prev.exact()
    }

    fn drops(&self) -> Characteristics {
        self.prev.drops()
    }
}

/// A source spliterator paired with the fused chain of pending
/// per-element operations — what `Stream::map`/`filter`/`peek` build
/// instead of nested adapter spliterators.
///
/// Splitting splits the *source* and clones the chain, so the task tree
/// has exactly the shape of the unadapted pipeline; characteristics are
/// the source's minus whatever the chain [`drops`](FusedStage::drops).
pub struct FusedSpliterator<B, S, K, U> {
    source: S,
    chain: K,
    _marker: PhantomData<fn(B) -> U>,
}

impl<B, S, K, U> FusedSpliterator<B, S, K, U> {
    /// Pairs `source` with the pending chain.
    pub fn new(source: S, chain: K) -> Self {
        FusedSpliterator {
            source,
            chain,
            _marker: PhantomData,
        }
    }

    /// The pending chain (diagnostics / tests).
    pub fn chain(&self) -> &K {
        &self.chain
    }
}

impl<B, S, K, U> ItemSource<U> for FusedSpliterator<B, S, K, U>
where
    S: Spliterator<B>,
    K: FusedStage<B, U>,
{
    fn try_advance(&mut self, action: &mut dyn FnMut(U)) -> bool {
        // Keep advancing the source until one element survives the
        // chain or the source ends (same shape as FilterSpliterator).
        let chain = &self.chain;
        loop {
            let mut emitted = false;
            let more = self.source.try_advance(&mut |x| {
                emitted = chain.push(x, &mut |u| action(u));
            });
            if !more {
                return false;
            }
            if emitted {
                return true;
            }
        }
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(U)) {
        let chain = &self.chain;
        self.source.for_each_remaining(&mut |x| {
            chain.push(x, &mut |u| action(u));
        });
    }

    fn estimate_size(&self) -> usize {
        self.source.estimate_size() // an upper bound when the chain filters
    }
}

impl<B, S, K, U> LeafAccess<U> for FusedSpliterator<B, S, K, U>
where
    B: Clone,
    S: Spliterator<B>,
    K: FusedStage<B, U>,
{
    // No borrowed run of *transformed* elements exists, so
    // `try_as_slice`/`try_as_strided` keep their `None` defaults; the
    // fused route below borrows the source's run instead.

    fn mark_drained(&mut self) {
        self.source.mark_drained();
    }

    fn fused_leaf<C>(&mut self, collector: &C) -> Option<(C::Acc, u64)>
    where
        C: Collector<U> + ?Sized,
        Self: Sized,
    {
        let (items, step) = self.source.try_as_strided()?;
        let chain = &self.chain;
        let mut acc = collector.supplier();
        // Survivor accounting: count what actually reaches the
        // accumulator, never the borrowed-run length — a filtering
        // chain delivers fewer elements than it reads.
        let mut delivered: u64 = 0;
        {
            let mut sink = |u: U| {
                delivered += 1;
                collector.accumulate(&mut acc, u);
            };
            if step == 1 {
                for x in items {
                    chain.push(x.clone(), &mut sink);
                }
            } else {
                // Strided-run contract: the last element of `items` is
                // always covered (`items.len() % step == 1`).
                for x in items.iter().step_by(step) {
                    chain.push(x.clone(), &mut sink);
                }
            }
        }
        self.source.mark_drained();
        Some((acc, delivered))
    }

    fn can_fused_fill(&self) -> bool {
        // Stable under splits: splitting splits the source (which keeps
        // its borrowable run — every descriptor source in this crate
        // answers `try_as_strided` on all of its splits) and clones the
        // chain (exactness is a property of the stage types).
        self.chain.exact() && self.source.try_as_strided().is_some()
    }

    fn fused_fill(&mut self, sink: &mut dyn FnMut(U)) -> Option<u64> {
        if !self.chain.exact() {
            return None;
        }
        let (items, step) = self.source.try_as_strided()?;
        let chain = &self.chain;
        let mut delivered: u64 = 0;
        {
            let mut sink = |u: U| {
                delivered += 1;
                sink(u);
            };
            if step == 1 {
                for x in items {
                    chain.push(x.clone(), &mut sink);
                }
            } else {
                for x in items.iter().step_by(step) {
                    chain.push(x.clone(), &mut sink);
                }
            }
        }
        self.source.mark_drained();
        Some(delivered)
    }

    fn fused_search(&mut self, visit: &mut dyn FnMut(&U) -> bool) -> Option<(bool, u64)> {
        let (items, step) = self.source.try_as_strided()?;
        let chain = &self.chain;
        // A Cell so the sink (which owns the only &mut access) and the
        // outer loop's early-exit test can both see the stop flag.
        let stopped = std::cell::Cell::new(false);
        let mut delivered: u64 = 0;
        {
            let mut sink = |u: U| {
                if !stopped.get() {
                    delivered += 1;
                    if visit(&u) {
                        stopped.set(true);
                    }
                }
            };
            if step == 1 {
                for x in items {
                    chain.push(x.clone(), &mut sink);
                    if stopped.get() {
                        break;
                    }
                }
            } else {
                for x in items.iter().step_by(step) {
                    chain.push(x.clone(), &mut sink);
                    if stopped.get() {
                        break;
                    }
                }
            }
        }
        let stopped = stopped.get();
        if !stopped {
            self.source.mark_drained();
        }
        Some((stopped, delivered))
    }
}

impl<B, S, K, U> Spliterator<U> for FusedSpliterator<B, S, K, U>
where
    B: Clone,
    S: Spliterator<B>,
    K: FusedStage<B, U>,
{
    fn try_split(&mut self) -> Option<Self> {
        let prefix = self.source.try_split()?;
        Some(FusedSpliterator {
            source: prefix,
            chain: self.chain.clone(),
            _marker: PhantomData,
        })
    }

    fn characteristics(&self) -> Characteristics {
        self.source.characteristics().without(self.chain.drops())
    }

    // Splitting splits the source, so split/encounter geometry is the
    // source's too.
    fn prefix_splits(&self) -> bool {
        self.source.prefix_splits()
    }

    // An exact (filter-free) chain delivers exactly one element per
    // source element, in source order, so source ranks are pipeline
    // ranks. A filtering chain breaks the j-th-delivered ↔ j-th-source
    // correspondence and must not claim ranks.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        if self.chain.exact() {
            self.source.encounter_rank()
        } else {
            None
        }
    }
}

/// Decomposes a pipeline spliterator into `(underlying source, pending
/// chain)` so `Stream::map`/`filter`/`peek` *extend* the chain instead
/// of nesting adapters.
///
/// Every concrete spliterator in this crate implements it as the
/// identity (`Src = Self`, `Chain = IdentityStage`);
/// [`FusedSpliterator`] returns its parts, which is what keeps a chain
/// of `.map(..).filter(..)` calls flat. Custom spliterator types opt in
/// with the same one-line identity implementation.
pub trait FusePipe<T>: Spliterator<T> {
    /// Element type produced by the underlying source.
    type Base: Clone + Send + 'static;
    /// The underlying source spliterator.
    type Src: Spliterator<Self::Base> + 'static;
    /// The pending per-element chain from `Base` to `T`.
    type Chain: FusedStage<Self::Base, T>;

    /// Splits this pipeline into its source and pending chain.
    fn decompose(self) -> (Self::Src, Self::Chain);
}

/// Implements the identity [`FusePipe`] (`Src = Self`,
/// `Chain = IdentityStage`) for a concrete source spliterator type.
macro_rules! identity_fuse_pipe {
    ($t:ty => $elem:ty where $($bound:tt)*) => {
        impl<$($bound)*> FusePipe<$elem> for $t {
            type Base = $elem;
            type Src = Self;
            type Chain = IdentityStage;

            fn decompose(self) -> (Self, IdentityStage) {
                (self, IdentityStage)
            }
        }
    };
}

identity_fuse_pipe!(SliceSpliterator<T> => T where T: Clone + Send + Sync + 'static);
identity_fuse_pipe!(TieSpliterator<T> => T where T: Clone + Send + Sync + 'static);
identity_fuse_pipe!(ZipSpliterator<T> => T where T: Clone + Send + Sync + 'static);
identity_fuse_pipe!(PowerSpliterator<T> => T where T: Clone + Send + Sync + 'static);

impl<T, L> FusePipe<T> for HookedZipSpliterator<T, L>
where
    T: Clone + Send + Sync + 'static,
    L: Send + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

// Truncation adapters participate as chain *sources*: a `map` after
// `limit` starts a fresh chain over the truncated source. Their empty
// `LeafAccess` keeps every fused-borrow attempt refused (allowance
// math needs exact per-element counting), so such pipelines stay on
// the cloning drain.
impl<T, S> FusePipe<T> for LimitSpliterator<S>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

impl<T, S> FusePipe<T> for SkipSpliterator<S>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

impl<T, S, F> FusePipe<T> for PeekSpliterator<S, F>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
    F: Fn(&T) + Send + Sync + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

// The legacy adapters stay usable as stream sources (they are the A/B
// baseline for the fused bench), opening a fresh identity chain.
impl<T, U, S, F> FusePipe<U> for MapSpliterator<T, S, F>
where
    T: Send + 'static,
    U: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
    F: Fn(T) -> U + Send + Sync + 'static,
{
    type Base = U;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

impl<T, S, P> FusePipe<T> for FilterSpliterator<S, P>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
    P: Fn(&T) -> bool + Send + Sync + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

// The chain-extending case: a fused pipeline decomposes into its own
// parts, so the next `map`/`filter` call composes one longer chain over
// the same untouched source.
impl<B, S, K, U> FusePipe<U> for FusedSpliterator<B, S, K, U>
where
    B: Clone + Send + 'static,
    S: Spliterator<B> + 'static,
    K: FusedStage<B, U>,
{
    type Base = B;
    type Src = S;
    type Chain = K;

    fn decompose(self) -> (S, K) {
        (self.source, self.chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{ReduceCollector, VecCollector};
    use crate::spliterator::SliceSpliterator;
    use powerlist::tabulate;

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    type TimesTen = MapStage<IdentityStage, fn(i32) -> i32, i32>;

    fn fused_map_times_10(
        data: Vec<i32>,
    ) -> FusedSpliterator<i32, SliceSpliterator<i32>, TimesTen, i32> {
        FusedSpliterator::new(
            SliceSpliterator::new(data),
            MapStage::new(IdentityStage, |x: i32| x * 10),
        )
    }

    #[test]
    fn fused_map_traverses_and_splits() {
        let mut s = fused_map_times_10(vec![1, 2, 3, 4]);
        assert_eq!(s.estimate_size(), 4);
        let mut prefix = s.try_split().expect("splittable");
        assert_eq!(drain(&mut prefix), vec![10, 20]);
        assert_eq!(drain(&mut s), vec![30, 40]);
    }

    #[test]
    fn fused_filter_try_advance_skips_failures() {
        let chain = FilterStage::new(IdentityStage, |x: &i32| x % 2 == 0);
        let mut s = FusedSpliterator::new(SliceSpliterator::new(vec![1, 2, 3, 4, 5]), chain);
        let mut seen = vec![];
        while s.try_advance(&mut |x| seen.push(x)) {}
        assert_eq!(seen, vec![2, 4]);
        assert!(!s.try_advance(&mut |_| {}));
    }

    #[test]
    fn fused_leaf_drives_chain_over_borrowed_run() {
        let mut s = fused_map_times_10(vec![1, 2, 3]);
        let collector = ReduceCollector::new(0i32, |a, b| a + b);
        let (acc, n) = s.fused_leaf(&collector).expect("slice source borrows");
        assert_eq!(acc, 60);
        assert_eq!(n, 3);
        // The source was marked drained.
        assert_eq!(drain(&mut s), Vec::<i32>::new());
    }

    #[test]
    fn fused_leaf_reports_survivor_counts_not_borrow_lengths() {
        let chain = FilterStage::new(MapStage::new(IdentityStage, |x: i64| x * 2), |x: &i64| {
            x % 4 == 0
        });
        let mut s = FusedSpliterator::new(SliceSpliterator::new((0..10).collect()), chain);
        let (acc, n) = s.fused_leaf(&VecCollector).unwrap();
        assert_eq!(acc, vec![0, 4, 8, 12, 16]);
        assert_eq!(
            n, 5,
            "items must count survivors, not the 10-element borrow"
        );
    }

    #[test]
    fn fused_leaf_covers_strided_residues() {
        // A zip split yields stride-2 residue classes; the fused chain
        // must walk exactly that class.
        let list = tabulate(8, |i| i as i64).unwrap();
        let mut z = ZipSpliterator::over(list);
        let mut prefix = FusedSpliterator::new(
            z.try_split().unwrap(),
            MapStage::new(IdentityStage, |x| x + 100),
        );
        let (acc, n) = prefix.fused_leaf(&VecCollector).unwrap();
        assert_eq!(acc, vec![100, 102, 104, 106]);
        assert_eq!(n, 4);
        let _ = drain(&mut z);
    }

    #[test]
    fn fused_leaf_refuses_without_borrowed_access() {
        // Filter adapters hide LeafAccess, so a chain over one cannot
        // borrow and must answer None (-> cloning drain).
        let inner = FilterSpliterator::new(
            SliceSpliterator::new((0..8i64).collect()),
            Arc::new(|x: &i64| x % 2 == 0),
        );
        let mut s = FusedSpliterator::new(inner, MapStage::new(IdentityStage, |x| x + 1));
        assert!(s.fused_leaf(&VecCollector).is_none());
        assert_eq!(drain(&mut s), vec![1, 3, 5, 7]);
    }

    #[test]
    fn exactness_tracks_filters_only() {
        let map = MapStage::new(IdentityStage, |x: i32| x + 1);
        assert!(FusedStage::<i32, i32>::exact(&map));
        let inspect = InspectStage::new(map.clone(), |_: &i32| {});
        assert!(FusedStage::<i32, i32>::exact(&inspect));
        let filt = FilterStage::new(map, |_: &i32| true);
        assert!(!FusedStage::<i32, i32>::exact(&filt));
    }

    // -----------------------------------------------------------------
    // Characteristics propagation matrix (map / filter / fused chains)
    // -----------------------------------------------------------------

    /// A slice-backed source that additionally advertises
    /// `SORTED|DISTINCT`, to observe the adapters dropping them.
    struct SortedSource(SliceSpliterator<i64>);

    impl ItemSource<i64> for SortedSource {
        fn try_advance(&mut self, action: &mut dyn FnMut(i64)) -> bool {
            self.0.try_advance(action)
        }

        fn estimate_size(&self) -> usize {
            self.0.estimate_size()
        }
    }

    impl LeafAccess<i64> for SortedSource {}

    impl Spliterator<i64> for SortedSource {
        fn try_split(&mut self) -> Option<Self> {
            self.0.try_split().map(SortedSource)
        }

        fn characteristics(&self) -> Characteristics {
            self.0.characteristics()
                | Characteristics::SORTED
                | Characteristics::DISTINCT
                | Characteristics::POWER2
        }
    }

    fn sorted_source() -> SortedSource {
        SortedSource(SliceSpliterator::new(vec![1, 2, 3, 4]))
    }

    const STRUCTURAL: Characteristics = Characteristics::SIZED;

    #[test]
    fn characteristics_matrix_adapter_and_fused_agree() {
        let base = sorted_source().characteristics();
        assert!(base.contains(
            Characteristics::SORTED
                | Characteristics::DISTINCT
                | Characteristics::POWER2
                | Characteristics::SIZED
                | Characteristics::SUBSIZED
        ));

        // map: drops SORTED|DISTINCT, keeps SIZED|SUBSIZED|POWER2 —
        // adapter and fused chain must agree.
        let adapter = MapSpliterator::new(sorted_source(), Arc::new(|x: i64| -x));
        let fused =
            FusedSpliterator::new(sorted_source(), MapStage::new(IdentityStage, |x: i64| -x));
        for c in [adapter.characteristics(), fused.characteristics()] {
            assert!(!c.contains(Characteristics::SORTED), "{c:?}");
            assert!(!c.contains(Characteristics::DISTINCT), "{c:?}");
            assert!(c.contains(
                Characteristics::SIZED | Characteristics::SUBSIZED | Characteristics::POWER2
            ));
            assert!(c.contains(STRUCTURAL));
        }

        // filter: drops SIZED|SUBSIZED|POWER2, keeps the rest.
        let adapter = FilterSpliterator::new(sorted_source(), Arc::new(|_: &i64| true));
        let fused = FusedSpliterator::new(
            sorted_source(),
            FilterStage::new(IdentityStage, |_: &i64| true),
        );
        for c in [adapter.characteristics(), fused.characteristics()] {
            assert!(!c.contains(Characteristics::SIZED), "{c:?}");
            assert!(!c.contains(Characteristics::SUBSIZED), "{c:?}");
            assert!(!c.contains(Characteristics::POWER2), "{c:?}");
            assert!(c.contains(Characteristics::SORTED | Characteristics::DISTINCT));
            assert!(c.contains(Characteristics::ORDERED));
        }

        // map ∘ filter chain: union of both drops.
        let chain = FilterStage::new(MapStage::new(IdentityStage, |x: i64| -x), |_: &i64| true);
        let c = FusedSpliterator::new(sorted_source(), chain).characteristics();
        for gone in [
            Characteristics::SORTED,
            Characteristics::DISTINCT,
            Characteristics::SIZED,
            Characteristics::SUBSIZED,
            Characteristics::POWER2,
        ] {
            assert!(!c.contains(gone), "{c:?} must drop {gone:?}");
        }
        assert!(c.contains(Characteristics::ORDERED));

        // inspect (peek) drops nothing.
        let chain = InspectStage::new(IdentityStage, |_: &i64| {});
        let c = FusedSpliterator::new(sorted_source(), chain).characteristics();
        assert_eq!(c, sorted_source().characteristics());
    }

    #[test]
    fn split_clones_chain_and_preserves_characteristics() {
        let chain = MapStage::new(IdentityStage, |x: i64| x * 3);
        let mut s = FusedSpliterator::new(
            ZipSpliterator::over(tabulate(8, |i| i as i64).unwrap()),
            chain,
        );
        let before = s.characteristics();
        let mut prefix = s.try_split().unwrap();
        // Both halves of an 8-element zip are 4-element zips: the split
        // prefix carries the same chain and the same characteristics.
        assert_eq!(prefix.characteristics(), before);
        assert_eq!(drain(&mut prefix), vec![0, 6, 12, 18]);
        assert_eq!(drain(&mut s), vec![3, 9, 15, 21]);
    }
}
