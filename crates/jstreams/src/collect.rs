//! The `collect` template method: the divide-and-conquer driver.
//!
//! This is the execution skeleton of the adaptation (paper, Section IV):
//! the spliterator directs the **descending/splitting phase**, the
//! collector's supplier+accumulator (or specialised `leaf`) implement the
//! **leaf phase**, and the combiner implements the **ascending/combining
//! phase**. The parallel driver runs the two halves of every split with
//! [`forkjoin::join`], exactly as Java's `ForkJoinPool` executes the
//! stream's computation tree.
//!
//! Splitting stops when the remaining size drops to `leaf_size` — the
//! explicit analogue of the JVM's implementation-defined granularity
//! ("the splitting is automatically stopped when a limit that depends on
//! the system is attained", Section V).

use crate::collector::Collector;
use crate::spliterator::Spliterator;
use forkjoin::{join, ForkJoinPool};
use plobs::{Event, LeafRoute};
use std::sync::Arc;
use std::time::Instant;

/// Runs one leaf through the zero-copy path when both sides support it:
/// if the source exposes a borrowed run
/// ([`LeafAccess`](crate::spliterator::LeafAccess)) *and* the
/// collector has a matching slice kernel, the leaf is computed directly
/// over the borrow and the source marked drained; otherwise the cloning
/// drain ([`Collector::leaf`]) runs as before.
///
/// When an observability sink is installed (`plobs`), every leaf emits
/// one [`Event::Leaf`] tagged with the route taken; timing and size
/// queries are skipped entirely when no sink is listening.
pub fn run_leaf<T, S, C>(source: &mut S, collector: &C) -> C::Acc
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    let observe = plobs::enabled();
    let size = if observe {
        source.estimate_size() as u64
    } else {
        0
    };
    let start = if observe { Some(Instant::now()) } else { None };
    let done = match source.try_as_strided() {
        // A step-1 run is contiguous: prefer the slice kernel, but a
        // strided-only collector must still get the zero-copy path —
        // `leaf_strided(items, 1)` covers exactly the same elements.
        Some((items, 1)) => collector
            .leaf_slice(items)
            .map(|acc| (acc, LeafRoute::ZeroCopySlice))
            .or_else(|| {
                collector
                    .leaf_strided(items, 1)
                    .map(|acc| (acc, LeafRoute::ZeroCopyStrided))
            }),
        Some((items, step)) => collector
            .leaf_strided(items, step)
            .map(|acc| (acc, LeafRoute::ZeroCopyStrided)),
        None => None,
    };
    let (acc, route) = match done {
        Some((acc, route)) => {
            source.mark_drained();
            (acc, route)
        }
        None => (collector.leaf(source), LeafRoute::CloningDrain),
    };
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route,
            items: size,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    acc
}

/// Sequential collect: drains the spliterator without splitting, through
/// the collector's leaf routine — what a non-parallel Java stream does
/// (no combiner involved).
pub fn collect_seq<T, S, C>(mut source: S, collector: &C) -> C::Out
where
    S: Spliterator<T>,
    C: Collector<T>,
{
    let acc = run_leaf(&mut source, collector);
    collector.finish(acc)
}

/// Chooses a leaf granularity for a source of `len` elements on a pool of
/// `threads` workers: enough leaves for load balance (~4 per worker, the
/// ForkJoinPool heuristic), but never below 1.
pub fn default_leaf_size(len: usize, threads: usize) -> usize {
    (len / (4 * threads.max(1))).max(1)
}

/// Parallel collect on `pool`: recursively splits to `leaf_size`, runs
/// leaves through the collector, and combines sibling results — encounter
/// order is preserved (`combine(left, right)` with `left` the split-off
/// prefix).
pub fn collect_par<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    leaf_size: usize,
) -> C::Out
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    let leaf_size = leaf_size.max(1);
    let c2 = Arc::clone(&collector);
    let acc = pool.install(move || recurse(source, c2, leaf_size, 0));
    collector.finish(acc)
}

fn recurse<T, S, C>(mut source: S, collector: Arc<C>, leaf_size: usize, depth: u32) -> C::Acc
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    if source.estimate_size() <= leaf_size {
        return run_leaf(&mut source, &*collector);
    }
    let observe = plobs::enabled();
    let descend_start = if observe { Some(Instant::now()) } else { None };
    match source.try_split() {
        None => run_leaf(&mut source, &*collector),
        Some(prefix) => {
            if let Some(start) = descend_start {
                plobs::emit(Event::Split { depth });
                plobs::emit(Event::DescendNs {
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            let c_left = Arc::clone(&collector);
            let c_right = Arc::clone(&collector);
            let (left, right) = join(
                move || recurse(prefix, c_left, leaf_size, depth + 1),
                move || recurse(source, c_right, leaf_size, depth + 1),
            );
            let combine_start = if observe { Some(Instant::now()) } else { None };
            let out = collector.combine(left, right);
            if let Some(start) = combine_start {
                plobs::emit(Event::Combine {
                    depth,
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CountCollector, JoiningCollector, ReduceCollector, VecCollector};
    use crate::spliterator::SliceSpliterator;
    use crate::tie::TieSpliterator;
    use crate::zip::ZipSpliterator;
    use powerlist::tabulate;

    fn pool() -> ForkJoinPool {
        ForkJoinPool::new(3)
    }

    #[test]
    fn seq_collect_to_vec() {
        let s = SliceSpliterator::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(collect_seq(s, &VecCollector), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_collect_to_vec_preserves_order() {
        let p = pool();
        let s = SliceSpliterator::new((0..1000).collect());
        let out = collect_par(&p, s, Arc::new(VecCollector), 16);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_matches_seq() {
        let p = pool();
        let data: Vec<i64> = (1..=100).collect();
        let seq = collect_seq(
            SliceSpliterator::new(data.clone()),
            &ReduceCollector::new(0, |a, b| a + b),
        );
        let par = collect_par(
            &p,
            SliceSpliterator::new(data),
            Arc::new(ReduceCollector::new(0, |a, b| a + b)),
            8,
        );
        assert_eq!(seq, 5050);
        assert_eq!(par, 5050);
    }

    #[test]
    fn count_collector_parallel() {
        let p = pool();
        let s = SliceSpliterator::new(vec![0u8; 777]);
        assert_eq!(collect_par(&p, s, Arc::new(CountCollector), 10), 777);
    }

    #[test]
    fn tie_spliterator_vec_collect_is_identity() {
        let p = pool();
        let list = tabulate(64, |i| i as i32).unwrap();
        let s = TieSpliterator::over(list.clone());
        let out = collect_par(&p, s, Arc::new(VecCollector), 4);
        assert_eq!(out, list.into_vec());
    }

    #[test]
    fn zip_spliterator_with_vec_collector_scrambles() {
        // Deliberate negative test: zip decomposition + concatenating
        // combiner does NOT reconstruct the source (the Section IV.A
        // observation that motivates zipAll). With leaf_size 1 on length
        // 4, concatenating the four residue classes gives the bit-
        // reversal permutation.
        let p = pool();
        let list = tabulate(4, |i| i).unwrap();
        let s = ZipSpliterator::over(list);
        let out = collect_par(&p, s, Arc::new(VecCollector), 1);
        assert_eq!(out, vec![0, 2, 1, 3]);
    }

    #[test]
    fn joining_collector_separator_at_merges_only() {
        let p = pool();
        let words: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let s = SliceSpliterator::new(words);
        // leaf_size 1: every word is its own leaf; 3 combines insert 3
        // separators.
        let out = collect_par(&p, s, Arc::new(JoiningCollector::new(",")), 1);
        assert_eq!(out, "a,b,c,d");
        // Sequential: no combiner, no separators (paper's remark).
        let s = SliceSpliterator::new(["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect());
        assert_eq!(collect_seq(s, &JoiningCollector::new(",")), "abcd");
    }

    #[test]
    fn leaf_size_equal_to_len_is_sequential() {
        let p = pool();
        let s = SliceSpliterator::new((0..32).collect::<Vec<_>>());
        let out = collect_par(&p, s, Arc::new(VecCollector), 32);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn default_leaf_size_heuristic() {
        assert_eq!(default_leaf_size(1 << 20, 8), 1 << 15);
        assert_eq!(default_leaf_size(10, 8), 1);
        assert_eq!(default_leaf_size(0, 4), 1);
        assert_eq!(default_leaf_size(100, 0), 25);
    }

    #[test]
    fn singleton_source() {
        let p = pool();
        let s = SliceSpliterator::new(vec![42]);
        assert_eq!(collect_par(&p, s, Arc::new(VecCollector), 1), vec![42]);
    }
}
