//! The `collect` template method: the divide-and-conquer driver.
//!
//! This is the execution skeleton of the adaptation (paper, Section IV):
//! the spliterator directs the **descending/splitting phase**, the
//! collector's supplier+accumulator (or specialised `leaf`) implement the
//! **leaf phase**, and the combiner implements the **ascending/combining
//! phase**. The parallel driver runs the two halves of every split with
//! [`forkjoin::join`], exactly as Java's `ForkJoinPool` executes the
//! stream's computation tree.
//!
//! Where the splitting stops is a [`SplitPolicy`] — the explicit
//! analogue of the JVM's implementation-defined granularity ("the
//! splitting is automatically stopped when a limit that depends on the
//! system is attained", Section V). [`SplitPolicy::Fixed`] reproduces
//! the static `leaf_size` threshold (and therefore the paper's tree
//! shapes exactly); [`SplitPolicy::Adaptive`] splits on demand from
//! pool pressure. The size-based stop only applies to sources that
//! advertise `SIZED`: for adapted sources whose estimate is an upper
//! bound (e.g. after `filter`), both policies descend to the depth cap
//! and let `try_split` refusal terminate instead — otherwise an
//! oversized "leaf" would silently serialize real work.

use crate::characteristics::Characteristics;
use crate::collector::Collector;
use crate::spliterator::{ItemSource, Spliterator};
use forkjoin::{current_probe, demand_split, join, ForkJoinPool, SplitPolicy};
use plobs::{Event, LeafRoute};
use std::sync::Arc;
use std::time::Instant;

/// Wraps an [`ItemSource`] to count the elements actually delivered to
/// the consuming collector — the only correct `items` figure for a leaf
/// of a non-SIZED pipeline, where `estimate_size` is an upper bound.
/// Only used while an observability sink is installed.
struct CountingSource<'a, T> {
    inner: &'a mut dyn ItemSource<T>,
    count: u64,
}

impl<T> ItemSource<T> for CountingSource<'_, T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        let count = &mut self.count;
        self.inner.try_advance(&mut |x| {
            *count += 1;
            action(x);
        })
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        let count = &mut self.count;
        self.inner.for_each_remaining(&mut |x| {
            *count += 1;
            action(x);
        });
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size()
    }
}

/// Runs one leaf through the zero-copy path when both sides support it:
/// if the source exposes a borrowed run
/// ([`LeafAccess`](crate::spliterator::LeafAccess)) *and* the
/// collector has a matching slice kernel, the leaf is computed directly
/// over the borrow and the source marked drained; otherwise the cloning
/// drain ([`Collector::leaf`]) runs as before.
///
/// When an observability sink is installed (`plobs`), every leaf emits
/// one [`Event::Leaf`] tagged with the route taken; timing and size
/// queries are skipped entirely when no sink is listening.
pub fn run_leaf<T, S, C>(source: &mut S, collector: &C) -> C::Acc
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    let observe = plobs::enabled();
    let start = if observe { Some(Instant::now()) } else { None };
    let done = match source.try_as_strided() {
        // A step-1 run is contiguous: prefer the slice kernel, but a
        // strided-only collector must still get the zero-copy path —
        // `leaf_strided(items, 1)` covers exactly the same elements.
        Some((items, 1)) => {
            let n = items.len() as u64;
            collector
                .leaf_slice(items)
                .map(|acc| (acc, LeafRoute::ZeroCopySlice, n))
                .or_else(|| {
                    collector
                        .leaf_strided(items, 1)
                        .map(|acc| (acc, LeafRoute::ZeroCopyStrided, n))
                })
        }
        Some((items, step)) => {
            // Strided-run contract: the last element of `items` is
            // covered, so the leaf spans ceil(len / step) elements.
            let n = items.len().div_ceil(step) as u64;
            collector
                .leaf_strided(items, step)
                .map(|acc| (acc, LeafRoute::ZeroCopyStrided, n))
        }
        None => None,
    };
    let (acc, route, items) = match done {
        Some((acc, route, n)) => {
            source.mark_drained();
            (acc, route, n)
        }
        // Cloning drain: the borrow length is not available, and for
        // non-SIZED sources `estimate_size` is only an upper bound — so
        // count what the collector actually receives (observed runs
        // only; the unobserved path stays wrapper-free).
        None if observe => {
            let mut counting = CountingSource {
                inner: source,
                count: 0,
            };
            let acc = collector.leaf(&mut counting);
            let n = counting.count;
            (acc, LeafRoute::CloningDrain, n)
        }
        None => (collector.leaf(source), LeafRoute::CloningDrain, 0),
    };
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route,
            items,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    acc
}

/// Sequential collect: drains the spliterator without splitting, through
/// the collector's leaf routine — what a non-parallel Java stream does
/// (no combiner involved).
pub fn collect_seq<T, S, C>(mut source: S, collector: &C) -> C::Out
where
    S: Spliterator<T>,
    C: Collector<T>,
{
    let acc = run_leaf(&mut source, collector);
    collector.finish(acc)
}

/// Chooses a leaf granularity for a source of `len` elements on a pool of
/// `threads` workers: enough leaves for load balance (~4 per worker, the
/// ForkJoinPool heuristic), but never below 1.
pub fn default_leaf_size(len: usize, threads: usize) -> usize {
    (len / (4 * threads.max(1))).max(1)
}

/// Parallel collect on `pool` with the static policy: recursively splits
/// to `leaf_size` (for `SIZED` sources; to the depth cap otherwise), runs
/// leaves through the collector, and combines sibling results — encounter
/// order is preserved (`combine(left, right)` with `left` the split-off
/// prefix). Equivalent to [`collect_par_with`] under
/// [`SplitPolicy::Fixed`].
pub fn collect_par<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    leaf_size: usize,
) -> C::Out
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    collect_par_with(
        pool,
        source,
        collector,
        SplitPolicy::Fixed(leaf_size.max(1)),
    )
}

/// Parallel collect on `pool` under an explicit [`SplitPolicy`].
///
/// The policy only shapes the task tree — which nodes become leaves and
/// when — never the result: any policy produces the same output as
/// [`collect_seq`] for a lawful collector, because siblings are always
/// combined in encounter order.
pub fn collect_par_with<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    policy: SplitPolicy,
) -> C::Out
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    let cap = policy.depth_cap(pool.threads());
    let c2 = Arc::clone(&collector);
    let acc = pool.install(move || {
        let steals = current_probe().map_or(0, |p| p.steal_pressure());
        recurse(source, c2, policy, cap, 0, steals)
    });
    collector.finish(acc)
}

fn recurse<T, S, C>(
    mut source: S,
    collector: Arc<C>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
) -> C::Acc
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    // The size-based stop is only sound when the size is exact: for
    // non-SIZED sources (filter adapters) the estimate is an upper
    // bound, and stopping on it would serialize surviving work into one
    // oversized leaf. Unsized sources descend to the depth cap and let
    // `try_split` refusal terminate.
    let sized = source.has_characteristics(Characteristics::SIZED);
    let mut steals_next = steals_seen;
    let stop = match policy {
        SplitPolicy::Fixed(leaf_size) => {
            if sized {
                source.estimate_size() <= leaf_size
            } else {
                depth >= cap
            }
        }
        SplitPolicy::Adaptive(a) => {
            if depth >= cap || (sized && source.estimate_size() <= a.min_leaf) {
                true
            } else {
                let (wants_split, now) = demand_split(a.surplus, steals_seen);
                steals_next = now;
                !wants_split
            }
        }
    };
    if stop {
        return run_leaf(&mut source, &*collector);
    }
    let observe = plobs::enabled();
    let descend_start = if observe { Some(Instant::now()) } else { None };
    match source.try_split() {
        None => run_leaf(&mut source, &*collector),
        Some(prefix) => {
            if let Some(start) = descend_start {
                plobs::emit(Event::Split {
                    depth,
                    adaptive: policy.is_adaptive(),
                });
                plobs::emit(Event::DescendNs {
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            let c_left = Arc::clone(&collector);
            let c_right = Arc::clone(&collector);
            let (left, right) = join(
                move || recurse(prefix, c_left, policy, cap, depth + 1, steals_next),
                move || recurse(source, c_right, policy, cap, depth + 1, steals_next),
            );
            let combine_start = if observe { Some(Instant::now()) } else { None };
            let out = collector.combine(left, right);
            if let Some(start) = combine_start {
                plobs::emit(Event::Combine {
                    depth,
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CountCollector, JoiningCollector, ReduceCollector, VecCollector};
    use crate::spliterator::SliceSpliterator;
    use crate::tie::TieSpliterator;
    use crate::zip::ZipSpliterator;
    use powerlist::tabulate;

    fn pool() -> ForkJoinPool {
        ForkJoinPool::new(3)
    }

    #[test]
    fn seq_collect_to_vec() {
        let s = SliceSpliterator::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(collect_seq(s, &VecCollector), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_collect_to_vec_preserves_order() {
        let p = pool();
        let s = SliceSpliterator::new((0..1000).collect());
        let out = collect_par(&p, s, Arc::new(VecCollector), 16);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_matches_seq() {
        let p = pool();
        let data: Vec<i64> = (1..=100).collect();
        let seq = collect_seq(
            SliceSpliterator::new(data.clone()),
            &ReduceCollector::new(0, |a, b| a + b),
        );
        let par = collect_par(
            &p,
            SliceSpliterator::new(data),
            Arc::new(ReduceCollector::new(0, |a, b| a + b)),
            8,
        );
        assert_eq!(seq, 5050);
        assert_eq!(par, 5050);
    }

    #[test]
    fn count_collector_parallel() {
        let p = pool();
        let s = SliceSpliterator::new(vec![0u8; 777]);
        assert_eq!(collect_par(&p, s, Arc::new(CountCollector), 10), 777);
    }

    #[test]
    fn tie_spliterator_vec_collect_is_identity() {
        let p = pool();
        let list = tabulate(64, |i| i as i32).unwrap();
        let s = TieSpliterator::over(list.clone());
        let out = collect_par(&p, s, Arc::new(VecCollector), 4);
        assert_eq!(out, list.into_vec());
    }

    #[test]
    fn zip_spliterator_with_vec_collector_scrambles() {
        // Deliberate negative test: zip decomposition + concatenating
        // combiner does NOT reconstruct the source (the Section IV.A
        // observation that motivates zipAll). With leaf_size 1 on length
        // 4, concatenating the four residue classes gives the bit-
        // reversal permutation.
        let p = pool();
        let list = tabulate(4, |i| i).unwrap();
        let s = ZipSpliterator::over(list);
        let out = collect_par(&p, s, Arc::new(VecCollector), 1);
        assert_eq!(out, vec![0, 2, 1, 3]);
    }

    #[test]
    fn joining_collector_separator_at_merges_only() {
        let p = pool();
        let words: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let s = SliceSpliterator::new(words);
        // leaf_size 1: every word is its own leaf; 3 combines insert 3
        // separators.
        let out = collect_par(&p, s, Arc::new(JoiningCollector::new(",")), 1);
        assert_eq!(out, "a,b,c,d");
        // Sequential: no combiner, no separators (paper's remark).
        let s = SliceSpliterator::new(["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect());
        assert_eq!(collect_seq(s, &JoiningCollector::new(",")), "abcd");
    }

    #[test]
    fn leaf_size_equal_to_len_is_sequential() {
        let p = pool();
        let s = SliceSpliterator::new((0..32).collect::<Vec<_>>());
        let out = collect_par(&p, s, Arc::new(VecCollector), 32);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn default_leaf_size_heuristic() {
        assert_eq!(default_leaf_size(1 << 20, 8), 1 << 15);
        assert_eq!(default_leaf_size(10, 8), 1);
        assert_eq!(default_leaf_size(0, 4), 1);
        assert_eq!(default_leaf_size(100, 0), 25);
    }

    #[test]
    fn singleton_source() {
        let p = pool();
        let s = SliceSpliterator::new(vec![42]);
        assert_eq!(collect_par(&p, s, Arc::new(VecCollector), 1), vec![42]);
    }
}
