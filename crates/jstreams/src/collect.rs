//! The `collect` template method: the divide-and-conquer driver.
//!
//! This is the execution skeleton of the adaptation (paper, Section IV):
//! the spliterator directs the **descending/splitting phase**, the
//! collector's supplier+accumulator (or specialised `leaf`) implement the
//! **leaf phase**, and the combiner implements the **ascending/combining
//! phase**. The parallel driver runs the two halves of every split with
//! [`forkjoin::join`], exactly as Java's `ForkJoinPool` executes the
//! stream's computation tree.
//!
//! Where the splitting stops is a [`SplitPolicy`] — the explicit
//! analogue of the JVM's implementation-defined granularity ("the
//! splitting is automatically stopped when a limit that depends on the
//! system is attained", Section V). [`SplitPolicy::Fixed`] reproduces
//! the static `leaf_size` threshold (and therefore the paper's tree
//! shapes exactly); [`SplitPolicy::Adaptive`] splits on demand from
//! pool pressure. The size-based stop only applies to sources that
//! advertise `SIZED`: for adapted sources whose estimate is an upper
//! bound (e.g. after `filter`), both policies descend to the depth cap
//! and let `try_split` refusal terminate instead — otherwise an
//! oversized "leaf" would silently serialize real work.

//!
//! All entry points now funnel through one **fallible driver**,
//! [`try_collect_with`], which executes under an
//! [`ExecSession`]: user code (leaves,
//! combiners, the finisher) runs under panic containment, and
//! cooperative checkpoints at split, leaf-entry and combine points
//! observe cancellation and deadlines. The historical
//! [`collect_seq`] / [`collect_par`] / [`collect_par_with`] functions
//! remain as thin shims that arm a private session and resume any
//! contained panic on the caller.

use crate::characteristics::Characteristics;
use crate::collector::Collector;
use crate::exec::{unwrap_interrupt, ExecConfig, ExecError, ExecMode, ExecSession, Interrupt};
use crate::placement::{descend, fixed_leaves, OutputBuffer, PlacementSpec, Window, WindowRule};
use crate::spliterator::{ItemSource, Spliterator};
use forkjoin::{current_probe, demand_split, join, ForkJoinPool, SplitPolicy};
use plobs::{Event, FallbackReason, LeafRoute};
use std::sync::Arc;
use std::time::Instant;

/// Wraps an [`ItemSource`] to count the elements actually delivered to
/// the consuming collector — the only correct `items` figure for a leaf
/// of a non-SIZED pipeline, where `estimate_size` is an upper bound.
/// Only used while an observability sink is installed.
struct CountingSource<'a, T> {
    inner: &'a mut dyn ItemSource<T>,
    count: u64,
}

impl<T> ItemSource<T> for CountingSource<'_, T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        let count = &mut self.count;
        self.inner.try_advance(&mut |x| {
            *count += 1;
            action(x);
        })
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        let count = &mut self.count;
        self.inner.for_each_remaining(&mut |x| {
            *count += 1;
            action(x);
        });
    }

    fn estimate_size(&self) -> usize {
        self.inner.estimate_size()
    }
}

/// Runs one leaf through the zero-copy path when both sides support it:
/// if the source exposes a borrowed run
/// ([`LeafAccess`](crate::spliterator::LeafAccess)) *and* the
/// collector has a matching slice kernel, the leaf is computed directly
/// over the borrow and the source marked drained; failing that, a fused
/// adapter pipeline may take the fused-borrow route
/// ([`LeafAccess::fused_leaf`](crate::spliterator::LeafAccess::fused_leaf)),
/// driving its chain over the *underlying* source's borrow; otherwise
/// the cloning drain ([`Collector::leaf`]) runs as before.
///
/// When an observability sink is installed (`plobs`), every leaf emits
/// one [`Event::Leaf`] tagged with the route taken; timing and size
/// queries are skipped entirely when no sink is listening.
pub fn run_leaf<T, S, C>(source: &mut S, collector: &C) -> C::Acc
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    let observe = plobs::enabled();
    let start = if observe { Some(Instant::now()) } else { None };
    let done = match source.try_as_strided() {
        // A step-1 run is contiguous: prefer the slice kernel, but a
        // strided-only collector must still get the zero-copy path —
        // `leaf_strided(items, 1)` covers exactly the same elements.
        Some((items, 1)) => {
            let n = items.len() as u64;
            collector
                .leaf_slice(items)
                .map(|acc| (acc, LeafRoute::ZeroCopySlice, n))
                .or_else(|| {
                    collector
                        .leaf_strided(items, 1)
                        .map(|acc| (acc, LeafRoute::ZeroCopyStrided, n))
                })
        }
        Some((items, step)) => {
            // Strided-run contract: the last element of `items` is
            // covered, so the leaf spans ceil(len / step) elements.
            let n = items.len().div_ceil(step) as u64;
            collector
                .leaf_strided(items, step)
                .map(|acc| (acc, LeafRoute::ZeroCopyStrided, n))
        }
        None => None,
    };
    // Fused-borrow route: a fused adapter pipeline exposes no borrowed
    // run of *transformed* elements, but can drive its chain over the
    // underlying source's borrow; `n` counts what reached the
    // accumulator (survivors, for filtering chains).
    let done = done.or_else(|| {
        source
            .fused_leaf(collector)
            .map(|(acc, n)| (acc, LeafRoute::FusedBorrow, n))
    });
    let (acc, route, items) = match done {
        Some((acc, route, n)) => {
            source.mark_drained();
            (acc, route, n)
        }
        // Cloning drain: the borrow length is not available, and for
        // non-SIZED sources `estimate_size` is only an upper bound — so
        // count what the collector actually receives (observed runs
        // only; the unobserved path stays wrapper-free).
        None if observe => {
            let mut counting = CountingSource {
                inner: source,
                count: 0,
            };
            let acc = collector.leaf(&mut counting);
            let n = counting.count;
            (acc, LeafRoute::CloningDrain, n)
        }
        None => (collector.leaf(source), LeafRoute::CloningDrain, 0),
    };
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route,
            items,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    acc
}

/// Sequential collect: drains the spliterator without splitting, through
/// the collector's leaf routine — what a non-parallel Java stream does
/// (no combiner involved).
///
/// Shim over the fallible sequential route: a contained panic is resumed
/// on the caller, so observable behaviour is unchanged.
#[deprecated(
    since = "0.9.0",
    note = "build a stream and use `Stream::collect`, or `Stream::try_collect` with `ExecConfig::seq()` for the fallible surface"
)]
pub fn collect_seq<T, S, C>(mut source: S, collector: &C) -> C::Out
where
    S: Spliterator<T>,
    C: Collector<T>,
{
    let session = ExecSession::default();
    let acc = unwrap_interrupt(try_leaf_all(&mut source, collector, &session));
    unwrap_interrupt(session.run(|| collector.finish(acc)))
}

/// The guarded sequential route: one checkpoint, then the whole source
/// as a single contained leaf. Also the target of graceful degradation
/// when the parallel route's pool is unavailable or saturated.
fn try_leaf_all<T, S, C>(
    source: &mut S,
    collector: &C,
    session: &ExecSession,
) -> Result<C::Acc, Interrupt>
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    session.check()?;
    session.run(|| run_leaf(source, collector))
}

/// Chooses a leaf granularity for a source of `len` elements on a pool of
/// `threads` workers: enough leaves for load balance (~4 per worker, the
/// ForkJoinPool heuristic), but never below 1.
pub fn default_leaf_size(len: usize, threads: usize) -> usize {
    (len / (4 * threads.max(1))).max(1)
}

/// Parallel collect on `pool` with the static policy: recursively splits
/// to `leaf_size` (for `SIZED` sources; to the depth cap otherwise), runs
/// leaves through the collector, and combines sibling results — encounter
/// order is preserved (`combine(left, right)` with `left` the split-off
/// prefix). Equivalent to [`collect_par_with`] under
/// [`SplitPolicy::Fixed`].
#[deprecated(
    since = "0.9.0",
    note = "use `Stream::try_collect` with `ExecConfig::par().with_pool(..).with_leaf_size(..)`"
)]
#[allow(deprecated)] // delegates to the sibling deprecated shim
pub fn collect_par<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    leaf_size: usize,
) -> C::Out
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    collect_par_with(
        pool,
        source,
        collector,
        SplitPolicy::Fixed(leaf_size.max(1)),
    )
}

/// Parallel collect on `pool` under an explicit [`SplitPolicy`].
///
/// The policy only shapes the task tree — which nodes become leaves and
/// when — never the result: any policy produces the same output as
/// [`collect_seq`] for a lawful collector, because siblings are always
/// combined in encounter order.
///
/// Shim over the fallible parallel route: it arms a private session, so
/// a panic anywhere in the tree still cancels sibling subtrees and is
/// resumed on the caller once the tree has quiesced.
#[deprecated(
    since = "0.9.0",
    note = "use `Stream::try_collect` with `ExecConfig::par().with_pool(..).with_split_policy(..)`"
)]
pub fn collect_par_with<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    policy: SplitPolicy,
) -> C::Out
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    let session = ExecSession::default();
    let acc = unwrap_interrupt(try_par_core(
        pool,
        source,
        Arc::clone(&collector),
        policy,
        &session,
    ));
    unwrap_interrupt(session.run(|| collector.finish(acc)))
}

/// The unified fallible driver behind
/// [`Stream::try_collect`](crate::stream::Stream::try_collect) and every
/// legacy entry point.
///
/// Resolution order: `cfg.mode()` picks the route; the parallel route
/// takes `cfg`'s pool (default: the [global pool](forkjoin::global_pool))
/// and split policy (default: [`SplitPolicy::Fixed`] at
/// [`default_leaf_size`]). Fault handling:
///
/// * a panic in user code is contained at its leaf/combine, trips the
///   session's [`CancelToken`](forkjoin::CancelToken) so siblings
///   short-circuit at their next checkpoint, and surfaces as
///   [`ExecError::Panicked`] — the pool never unwinds and stays
///   reusable;
/// * a tripped caller token surfaces as [`ExecError::Cancelled`], an
///   expired deadline as [`ExecError::DeadlineExceeded`] (worst-case
///   overrun: one leaf, since checkpoints bracket every leaf);
/// * a shut-down pool, or a queued backlog past
///   `cfg.fallback_threshold()`, degrades to the sequential route and
///   records an `Event::Fallback` instead of failing.
pub fn try_collect_with<T, S, C>(
    source: S,
    collector: C,
    cfg: &ExecConfig,
) -> Result<C::Out, ExecError>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
    C::Out: 'static,
{
    let session = ExecSession::new(cfg);
    let collector = Arc::new(collector);
    let acc = match cfg.mode() {
        ExecMode::Seq => {
            let mut source = source;
            if let Some(out) = try_placement_single(&mut source, &*collector, cfg, &session) {
                return out;
            }
            try_leaf_all(&mut source, &*collector, &session)
        }
        ExecMode::Par => {
            let global;
            let pool: &ForkJoinPool = match cfg.pool() {
                Some(p) => p,
                None => {
                    global = forkjoin::global_pool();
                    global
                }
            };
            let fallback = if pool.is_shut_down() {
                Some(FallbackReason::SubmitFailed)
            } else if cfg
                .fallback_threshold()
                .is_some_and(|t| pool.queued_tasks() > t)
            {
                Some(FallbackReason::PoolSaturated)
            } else {
                None
            };
            match fallback {
                Some(reason) => {
                    plobs::emit(Event::Fallback { reason });
                    let mut source = source;
                    if let Some(out) = try_placement_single(&mut source, &*collector, cfg, &session)
                    {
                        return out;
                    }
                    try_leaf_all(&mut source, &*collector, &session)
                }
                None => {
                    // Policy precedence: an explicit `with_split_policy`
                    // / `with_leaf_size` always wins; otherwise a tuner
                    // attached via `auto_tune` resolves a cached (or
                    // freshly calibrated) plan; otherwise the static
                    // heuristic. The fingerprint's size/`sized` pair
                    // comes from `exact_size()` so a non-SIZED upper
                    // bound is bucketed as inexact, not mistaken for a
                    // real length.
                    let policy = cfg
                        .policy()
                        .or_else(|| {
                            cfg.tuner().and_then(|cache| {
                                let exact = source.exact_size();
                                let fp = pltune::Fingerprint::new(
                                    std::any::type_name::<S>(),
                                    std::any::type_name::<C>(),
                                    exact.unwrap_or_else(|| source.estimate_size()),
                                    exact.is_some(),
                                    pool.threads(),
                                );
                                pltune::resolve(cache, pool, &fp)
                            })
                        })
                        .unwrap_or_else(|| {
                            SplitPolicy::Fixed(default_leaf_size(
                                source.estimate_size(),
                                pool.threads(),
                            ))
                        });
                    // Destination-passing route: when the collector and
                    // pipeline are eligible, allocate the output once
                    // and write leaves straight into disjoint windows.
                    // Non-eligible pipelines fall through to the splice
                    // recursion untouched.
                    match try_placement_par(pool, source, &collector, policy, cfg, &session) {
                        PlacementOutcome::Done(out) => return out,
                        PlacementOutcome::Splice(source) => {
                            try_par_core(pool, source, Arc::clone(&collector), policy, &session)
                        }
                    }
                }
            }
        }
    };
    match acc {
        Ok(acc) => session
            .run(|| collector.finish(acc))
            .map_err(|i| session.error_of(i)),
        Err(i) => Err(session.error_of(i)),
    }
}

/// Submits the fallible recursion to `pool`. If the submission itself is
/// lost to a shutdown race, the closure is handed back unexecuted
/// ([`ForkJoinPool::try_install`]) and runs on the calling thread as a
/// recorded fallback (its joins migrate to the global pool).
pub(crate) fn try_par_core<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    policy: SplitPolicy,
    session: &ExecSession,
) -> Result<C::Acc, Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    let s2 = session.clone();
    match pool.try_install(move || {
        // The depth cap must budget the pool that actually *executes*
        // the recursion, which is not always `pool`: on the shutdown
        // race below the unexecuted closure runs on the caller, where
        // joins stay on the caller's own pool (worker thread) or
        // migrate to the global pool (external thread). Deriving the
        // cap from the executing context here — instead of capturing
        // `pool.threads()` outside — keeps the fallback from splitting
        // for a dead pool's width.
        let probe = current_probe();
        let threads = probe
            .as_ref()
            .map_or_else(|| forkjoin::global_pool().threads(), |p| p.threads());
        let cap = policy.depth_cap(threads);
        let steals = probe.map_or(0, |p| p.steal_pressure());
        try_recurse(source, collector, policy, cap, 0, steals, &s2)
    }) {
        Ok(acc) => acc,
        Err(f) => {
            plobs::emit(Event::Fallback {
                reason: FallbackReason::SubmitFailed,
            });
            f()
        }
    }
}

fn try_recurse<T, S, C>(
    mut source: S,
    collector: Arc<C>,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
    session: &ExecSession,
) -> Result<C::Acc, Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Acc: 'static,
{
    // Node-entry checkpoint: covers both the split decision and leaf
    // entry, so a cancelled run prunes whole subtrees here (one
    // `Event::Cancel` per pruned node).
    session.check()?;
    // The size-based stop is only sound when the size is exact
    // (`exact_size()` is `Some` iff SIZED): for non-SIZED sources
    // (filter adapters, skip residues) the estimate is an upper bound,
    // and stopping on it would serialize surviving work into one
    // oversized leaf. Unsized sources descend to the depth cap and let
    // `try_split` refusal terminate.
    let exact = source.exact_size();
    let mut steals_next = steals_seen;
    let stop = match policy {
        SplitPolicy::Fixed(leaf_size) => match exact {
            Some(size) => size <= leaf_size,
            None => depth >= cap,
        },
        SplitPolicy::Adaptive(a) => {
            if depth >= cap || exact.is_some_and(|size| size <= a.min_leaf) {
                true
            } else {
                let (wants_split, now) = demand_split(a.surplus, steals_seen);
                steals_next = now;
                !wants_split
            }
        }
    };
    if stop {
        return session.run(|| run_leaf(&mut source, &*collector));
    }
    let observe = plobs::enabled();
    let descend_start = if observe { Some(Instant::now()) } else { None };
    match source.try_split() {
        None => session.run(|| run_leaf(&mut source, &*collector)),
        Some(prefix) => {
            if let Some(start) = descend_start {
                plobs::emit(Event::Split {
                    depth,
                    adaptive: policy.is_adaptive(),
                });
                plobs::emit(Event::DescendNs {
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            let c_left = Arc::clone(&collector);
            let c_right = Arc::clone(&collector);
            let s_left = session.clone();
            let s_right = session.clone();
            let (left, right) = join(
                move || try_recurse(prefix, c_left, policy, cap, depth + 1, steals_next, &s_left),
                move || {
                    try_recurse(
                        source,
                        c_right,
                        policy,
                        cap,
                        depth + 1,
                        steals_next,
                        &s_right,
                    )
                },
            );
            // Both halves have quiesced; merge their interrupts so a
            // panic payload always outranks a cancellation.
            let (left, right) = match (left, right) {
                (Ok(l), Ok(r)) => (l, r),
                (Err(a), Err(b)) => return Err(a.merge(b)),
                (Err(a), Ok(_)) | (Ok(_), Err(a)) => return Err(a),
            };
            // Combine checkpoint: skip the (possibly expensive) merge
            // of results that are already doomed to be discarded.
            session.check()?;
            let combine_start = if observe { Some(Instant::now()) } else { None };
            let out = session.run(|| collector.combine(left, right))?;
            if let Some(start) = combine_start {
                plobs::emit(Event::Combine {
                    depth,
                    ns: start.elapsed().as_nanos() as u64,
                    placement: false,
                });
            }
            Ok(out)
        }
    }
}

/// What the root placement probe decided for an eligible pipeline.
struct PlacementPlan {
    spec: PlacementSpec,
    /// Exact element count of the source.
    n: usize,
    /// Measured slot count (non-`unit` collectors: joining bytes),
    /// excluding separator slots; `None` for unit collectors.
    measure: Option<usize>,
}

/// The root eligibility gate of the destination-passing route. `None`
/// falls back to the splice route. Eligibility requires:
///
/// * the config allows placement and the collector opts in;
/// * the source is `SIZED | SUBSIZED` with the exact size known and
///   non-zero (windows must stay exactly sized down the whole tree);
/// * the leaves can fill windows without a fallback: the source
///   exposes a borrowed strided run, or an exact (filter-free) fused
///   chain can push-fill
///   ([`LeafAccess::can_fused_fill`](crate::LeafAccess::can_fused_fill));
/// * an interleaving rule gets a power-of-two length (equal halves at
///   every level);
/// * non-`unit` collectors (joining) get a raw borrowed run to
///   measure — an adapter chain would change what is being measured.
fn placement_plan<T, S, C>(source: &S, collector: &C, cfg: &ExecConfig) -> Option<PlacementPlan>
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    if !cfg.placement() {
        return None;
    }
    let spec = collector.placement_spec()?;
    if !source.has_characteristics(Characteristics::SIZED | Characteristics::SUBSIZED) {
        return None;
    }
    let n = source.exact_size()?;
    if n == 0 {
        return None;
    }
    if spec.rule == WindowRule::Interleave && !n.is_power_of_two() {
        return None;
    }
    if spec.unit {
        if source.try_as_strided().is_none() && !source.can_fused_fill() {
            return None;
        }
        Some(PlacementPlan {
            spec,
            n,
            measure: None,
        })
    } else {
        let (items, step) = source.try_as_strided()?;
        let measure = collector.placement_measure(items, step);
        Some(PlacementPlan {
            spec,
            n,
            measure: Some(measure),
        })
    }
}

/// Runs an eligible pipeline as **one** placement leaf over the whole
/// output window — the sequential mode and the saturation/shutdown
/// fallback. A single leaf has no combines, so non-`unit` collectors
/// get no separator slots (matching the splice route, where the
/// sequential leaf kernel never invokes the combiner).
fn try_placement_single<T, S, C>(
    source: &mut S,
    collector: &C,
    cfg: &ExecConfig,
    session: &ExecSession,
) -> Option<Result<C::Out, ExecError>>
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    let plan = placement_plan(source, collector, cfg)?;
    let slots = plan.measure.unwrap_or(plan.n);
    let buf = collector.try_reserve(slots)?;
    let res = session
        .check()
        .and_then(|()| session.run(|| placement_leaf(source, &*buf, Window::root(slots))))
        .and_then(|_| session.run(|| buf.finish()));
    Some(res.map_err(|i| session.error_of(i)))
}

/// Outcome of the parallel placement attempt: either the route ran to
/// completion (or to a contained error), or the pipeline was handed
/// back untouched for the splice recursion.
enum PlacementOutcome<S, O> {
    Done(Result<O, ExecError>),
    Splice(S),
}

/// Parallel placement gate + driver. Beyond [`placement_plan`], the
/// parallel route needs the root allocation to budget combine-inserted
/// separator slots exactly, which requires the deterministic
/// [`SplitPolicy::Fixed`] tree shape — a `gap > 0` collector under an
/// adaptive policy falls back to splice.
fn try_placement_par<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: &Arc<C>,
    policy: SplitPolicy,
    cfg: &ExecConfig,
    session: &ExecSession,
) -> PlacementOutcome<S, C::Out>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Out: 'static,
{
    let Some(plan) = placement_plan(&source, &**collector, cfg) else {
        return PlacementOutcome::Splice(source);
    };
    let gap_leaf = if plan.spec.gap == 0 {
        0
    } else {
        match policy {
            SplitPolicy::Fixed(leaf_size) => leaf_size,
            SplitPolicy::Adaptive(_) => return PlacementOutcome::Splice(source),
        }
    };
    let slots = match plan.measure {
        None => plan.n,
        Some(m) => m + (fixed_leaves(plan.n, gap_leaf) - 1) * plan.spec.gap,
    };
    let Some(buf) = collector.try_reserve(slots) else {
        return PlacementOutcome::Splice(source);
    };
    let res = try_par_core_placement(
        pool,
        source,
        Arc::clone(collector),
        Arc::clone(&buf),
        Window::root(slots),
        plan.spec,
        gap_leaf,
        policy,
        session,
    );
    let out = match res {
        Ok(()) => session
            .run(|| buf.finish())
            .map_err(|i| session.error_of(i)),
        Err(i) => Err(session.error_of(i)),
    };
    PlacementOutcome::Done(out)
}

/// Placement analogue of [`try_par_core`]: submits the window-passing
/// recursion, deriving the depth cap from the executing context (the
/// same shutdown-race contract).
#[allow(clippy::too_many_arguments)]
fn try_par_core_placement<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    buf: Arc<dyn OutputBuffer<T, C::Out>>,
    w: Window,
    spec: PlacementSpec,
    gap_leaf: usize,
    policy: SplitPolicy,
    session: &ExecSession,
) -> Result<(), Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Out: 'static,
{
    let s2 = session.clone();
    match pool.try_install(move || {
        let probe = current_probe();
        let threads = probe
            .as_ref()
            .map_or_else(|| forkjoin::global_pool().threads(), |p| p.threads());
        let cap = policy.depth_cap(threads);
        let steals = probe.map_or(0, |p| p.steal_pressure());
        try_recurse_placement(
            source, collector, buf, w, spec, gap_leaf, policy, cap, 0, steals, &s2,
        )
    }) {
        Ok(r) => r,
        Err(f) => {
            plobs::emit(Event::Fallback {
                reason: FallbackReason::SubmitFailed,
            });
            f()
        }
    }
}

/// Slot count of the left sibling after a split — the descent's input.
/// Interleaving rules always halve; concatenating rules take the left
/// child's element count (unit collectors) or its measured slots plus
/// the separator budget of its own predicted subtree (joining).
fn left_slot_count<T, S, C>(
    prefix: &S,
    collector: &C,
    spec: PlacementSpec,
    gap_leaf: usize,
    w: Window,
) -> usize
where
    S: Spliterator<T>,
    C: Collector<T> + ?Sized,
{
    match spec.rule {
        WindowRule::Interleave => w.len / 2,
        WindowRule::Concat => {
            let m = prefix
                .exact_size()
                .unwrap_or_else(|| prefix.estimate_size());
            if spec.unit {
                m
            } else {
                let (items, step) = prefix
                    .try_as_strided()
                    .expect("placement split lost its strided run");
                let separators = if spec.gap == 0 {
                    0
                } else {
                    (fixed_leaves(m, gap_leaf) - 1) * spec.gap
                };
                collector.placement_measure(items, step) + separators
            }
        }
    }
}

/// One placement leaf: write the leaf's elements straight into its
/// window — via the borrowed strided run when the source has one, via
/// the fused push-fill otherwise — and record the
/// [`LeafRoute::Placement`] event.
fn placement_leaf<T, O, S>(source: &mut S, buf: &dyn OutputBuffer<T, O>, w: Window) -> u64
where
    S: Spliterator<T>,
{
    fn fill_strided<T, O, S: Spliterator<T>>(
        source: &S,
        buf: &dyn OutputBuffer<T, O>,
        w: Window,
    ) -> Option<u64> {
        let (items, step) = source.try_as_strided()?;
        Some(buf.fill_run(w, items, step))
    }
    let observe = plobs::enabled();
    let start = if observe { Some(Instant::now()) } else { None };
    let wrote = match fill_strided(source, buf, w) {
        Some(n) => n,
        None => buf.fill_with(w, &mut |sink| {
            // The root gate verified `can_fused_fill`, which is stable
            // under splits — a refusal here is a driver bug, and the
            // panic is contained by the session wrapping every leaf.
            source
                .fused_fill(sink)
                .expect("placement leaf lost its borrowed-fill capability");
        }),
    };
    source.mark_drained();
    if let Some(start) = start {
        plobs::emit(Event::Leaf {
            route: LeafRoute::Placement,
            items: wrote,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
    wrote
}

/// The window-passing recursion: the placement mirror of
/// [`try_recurse`], with identical stop rules, checkpoints and events —
/// but leaves write into their window and the ascend phase is the
/// buffer's (constant-size) `combine` instead of a splice.
#[allow(clippy::too_many_arguments)]
fn try_recurse_placement<T, S, C>(
    mut source: S,
    collector: Arc<C>,
    buf: Arc<dyn OutputBuffer<T, C::Out>>,
    w: Window,
    spec: PlacementSpec,
    gap_leaf: usize,
    policy: SplitPolicy,
    cap: u32,
    depth: u32,
    steals_seen: u64,
    session: &ExecSession,
) -> Result<(), Interrupt>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
    C: Collector<T> + 'static,
    C::Out: 'static,
{
    session.check()?;
    let exact = source.exact_size();
    let mut steals_next = steals_seen;
    let stop = match policy {
        SplitPolicy::Fixed(leaf_size) => match exact {
            Some(size) => size <= leaf_size,
            None => depth >= cap,
        },
        SplitPolicy::Adaptive(a) => {
            if depth >= cap || exact.is_some_and(|size| size <= a.min_leaf) {
                true
            } else {
                let (wants_split, now) = demand_split(a.surplus, steals_seen);
                steals_next = now;
                !wants_split
            }
        }
    };
    if stop {
        return session
            .run(|| placement_leaf(&mut source, &*buf, w))
            .map(|_| ());
    }
    let observe = plobs::enabled();
    let descend_start = if observe { Some(Instant::now()) } else { None };
    match source.try_split() {
        None => session
            .run(|| placement_leaf(&mut source, &*buf, w))
            .map(|_| ()),
        Some(prefix) => {
            if let Some(start) = descend_start {
                plobs::emit(Event::Split {
                    depth,
                    adaptive: policy.is_adaptive(),
                });
                plobs::emit(Event::DescendNs {
                    ns: start.elapsed().as_nanos() as u64,
                });
            }
            // Window bookkeeping (including the non-unit measure of the
            // left run) is descend-phase work; it runs contained so a
            // violated window invariant surfaces as `Panicked`, never
            // as an unwind through the pool.
            let (left_slots, w_left, w_right) = session.run(|| {
                let left_slots = left_slot_count(&prefix, &*collector, spec, gap_leaf, w);
                let (w_left, w_right) = descend(w, spec.rule, left_slots, spec.gap);
                (left_slots, w_left, w_right)
            })?;
            let c_left = Arc::clone(&collector);
            let c_right = Arc::clone(&collector);
            let b_left = Arc::clone(&buf);
            let b_right = Arc::clone(&buf);
            let s_left = session.clone();
            let s_right = session.clone();
            let (left, right) = join(
                move || {
                    try_recurse_placement(
                        prefix,
                        c_left,
                        b_left,
                        w_left,
                        spec,
                        gap_leaf,
                        policy,
                        cap,
                        depth + 1,
                        steals_next,
                        &s_left,
                    )
                },
                move || {
                    try_recurse_placement(
                        source,
                        c_right,
                        b_right,
                        w_right,
                        spec,
                        gap_leaf,
                        policy,
                        cap,
                        depth + 1,
                        steals_next,
                        &s_right,
                    )
                },
            );
            match (left, right) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => return Err(a.merge(b)),
                (Err(a), Ok(())) | (Ok(()), Err(a)) => return Err(a),
            }
            session.check()?;
            let combine_start = if observe { Some(Instant::now()) } else { None };
            session.run(|| buf.combine(w, left_slots))?;
            if let Some(start) = combine_start {
                plobs::emit(Event::Combine {
                    depth,
                    ns: start.elapsed().as_nanos() as u64,
                    placement: true,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims keep their direct coverage here
mod tests {
    use super::*;
    use crate::collector::{CountCollector, JoiningCollector, ReduceCollector, VecCollector};
    use crate::spliterator::SliceSpliterator;
    use crate::tie::TieSpliterator;
    use crate::zip::ZipSpliterator;
    use powerlist::tabulate;

    fn pool() -> ForkJoinPool {
        ForkJoinPool::new(3)
    }

    #[test]
    fn seq_collect_to_vec() {
        let s = SliceSpliterator::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(collect_seq(s, &VecCollector), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_collect_to_vec_preserves_order() {
        let p = pool();
        let s = SliceSpliterator::new((0..1000).collect());
        let out = collect_par(&p, s, Arc::new(VecCollector), 16);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_matches_seq() {
        let p = pool();
        let data: Vec<i64> = (1..=100).collect();
        let seq = collect_seq(
            SliceSpliterator::new(data.clone()),
            &ReduceCollector::new(0, |a, b| a + b),
        );
        let par = collect_par(
            &p,
            SliceSpliterator::new(data),
            Arc::new(ReduceCollector::new(0, |a, b| a + b)),
            8,
        );
        assert_eq!(seq, 5050);
        assert_eq!(par, 5050);
    }

    #[test]
    fn count_collector_parallel() {
        let p = pool();
        let s = SliceSpliterator::new(vec![0u8; 777]);
        assert_eq!(collect_par(&p, s, Arc::new(CountCollector), 10), 777);
    }

    #[test]
    fn tie_spliterator_vec_collect_is_identity() {
        let p = pool();
        let list = tabulate(64, |i| i as i32).unwrap();
        let s = TieSpliterator::over(list.clone());
        let out = collect_par(&p, s, Arc::new(VecCollector), 4);
        assert_eq!(out, list.into_vec());
    }

    #[test]
    fn zip_spliterator_with_vec_collector_scrambles() {
        // Deliberate negative test: zip decomposition + concatenating
        // combiner does NOT reconstruct the source (the Section IV.A
        // observation that motivates zipAll). With leaf_size 1 on length
        // 4, concatenating the four residue classes gives the bit-
        // reversal permutation.
        let p = pool();
        let list = tabulate(4, |i| i).unwrap();
        let s = ZipSpliterator::over(list);
        let out = collect_par(&p, s, Arc::new(VecCollector), 1);
        assert_eq!(out, vec![0, 2, 1, 3]);
    }

    #[test]
    fn joining_collector_separator_at_merges_only() {
        let p = pool();
        let words: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let s = SliceSpliterator::new(words);
        // leaf_size 1: every word is its own leaf; 3 combines insert 3
        // separators.
        let out = collect_par(&p, s, Arc::new(JoiningCollector::new(",")), 1);
        assert_eq!(out, "a,b,c,d");
        // Sequential: no combiner, no separators (paper's remark).
        let s = SliceSpliterator::new(["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect());
        assert_eq!(collect_seq(s, &JoiningCollector::new(",")), "abcd");
    }

    #[test]
    fn leaf_size_equal_to_len_is_sequential() {
        let p = pool();
        let s = SliceSpliterator::new((0..32).collect::<Vec<_>>());
        let out = collect_par(&p, s, Arc::new(VecCollector), 32);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn default_leaf_size_heuristic() {
        assert_eq!(default_leaf_size(1 << 20, 8), 1 << 15);
        assert_eq!(default_leaf_size(10, 8), 1);
        assert_eq!(default_leaf_size(0, 4), 1);
        assert_eq!(default_leaf_size(100, 0), 25);
    }

    #[test]
    fn singleton_source() {
        let p = pool();
        let s = SliceSpliterator::new(vec![42]);
        assert_eq!(collect_par(&p, s, Arc::new(VecCollector), 1), vec![42]);
    }

    #[test]
    fn try_collect_happy_paths_match_collect() {
        let data: Vec<i64> = (1..=512).collect();
        let seq = try_collect_with(
            SliceSpliterator::new(data.clone()),
            ReduceCollector::new(0, |a, b| a + b),
            &ExecConfig::seq(),
        )
        .unwrap();
        let par = try_collect_with(
            SliceSpliterator::new(data),
            ReduceCollector::new(0, |a, b| a + b),
            &ExecConfig::par()
                .with_pool(Arc::new(pool()))
                .with_leaf_size(16),
        )
        .unwrap();
        assert_eq!(seq, 512 * 513 / 2);
        assert_eq!(par, seq);
    }

    #[test]
    fn try_collect_contains_panics_as_errors() {
        let p = Arc::new(pool());
        let cfg = ExecConfig::par()
            .with_pool(Arc::clone(&p))
            .with_leaf_size(8);
        let err = try_collect_with(
            SliceSpliterator::new((0..256).collect::<Vec<i32>>()),
            ReduceCollector::new(0, |a, b| {
                if b == 200 {
                    panic!("poison element 200");
                }
                a + b
            }),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err.panic_message(), Some("poison element 200"));
        // The pool survives the contained panic and runs a clean collect.
        let ok = try_collect_with(
            SliceSpliterator::new((0..256).collect::<Vec<i32>>()),
            ReduceCollector::new(0, |a, b| a + b),
            &cfg,
        )
        .unwrap();
        assert_eq!(ok, 255 * 256 / 2);
    }

    #[test]
    fn try_collect_observes_pre_cancelled_token() {
        let token = forkjoin::CancelToken::new();
        token.cancel(forkjoin::CancelReason::User);
        let err = try_collect_with(
            SliceSpliterator::new((0..64).collect::<Vec<i32>>()),
            VecCollector,
            &ExecConfig::seq().with_cancel_token(token),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }

    #[test]
    fn try_collect_degrades_to_seq_when_pool_is_shut_down() {
        let p = Arc::new(pool());
        p.shutdown();
        let cfg = ExecConfig::par().with_pool(p).with_leaf_size(4);
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                SliceSpliterator::new((0..100i64).collect()),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 99 * 100 / 2);
        assert_eq!(report.fallbacks_submit, 1);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn try_collect_degrades_to_seq_when_saturated() {
        // Wedge a 1-thread pool behind a gate so its backlog exceeds the
        // configured threshold of 0 at submission time.
        let p = Arc::new(ForkJoinPool::new(1));
        let gate = Arc::new(forkjoin::Latch::new());
        let g = Arc::clone(&gate);
        let entered = Arc::new(forkjoin::Latch::new());
        let e = Arc::clone(&entered);
        let p2 = Arc::clone(&p);
        let blocker = std::thread::spawn(move || {
            p2.install(move || {
                e.set();
                g.wait();
            })
        });
        entered.wait();
        // Park more work behind the wedged worker.
        let p3 = Arc::clone(&p);
        let queued = std::thread::spawn(move || p3.install(|| 1));
        while p.queued_tasks() == 0 {
            std::thread::yield_now();
        }
        let cfg = ExecConfig::par()
            .with_pool(Arc::clone(&p))
            .with_fallback_threshold(0)
            .with_leaf_size(4);
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                SliceSpliterator::new((0..100i64).collect()),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 99 * 100 / 2);
        assert_eq!(report.fallbacks_saturated, 1);
        gate.set();
        blocker.join().unwrap();
        assert_eq!(queued.join().unwrap(), 1);
    }

    /// Strips `SIZED | SUBSIZED` from a spliterator, turning its
    /// estimate into an upper bound — the shape of a `filter` chain.
    struct UnsizedUpperBound<S>(S);

    impl<T, S: ItemSource<T>> ItemSource<T> for UnsizedUpperBound<S> {
        fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
            self.0.try_advance(action)
        }
        fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
            self.0.for_each_remaining(action)
        }
        fn estimate_size(&self) -> usize {
            self.0.estimate_size()
        }
    }

    impl<T, S: Spliterator<T>> crate::spliterator::LeafAccess<T> for UnsizedUpperBound<S> {}

    impl<T, S: Spliterator<T>> Spliterator<T> for UnsizedUpperBound<S> {
        fn try_split(&mut self) -> Option<Self> {
            self.0.try_split().map(UnsizedUpperBound)
        }
        fn characteristics(&self) -> crate::characteristics::Characteristics {
            use crate::characteristics::Characteristics;
            self.0
                .characteristics()
                .without(Characteristics::SIZED | Characteristics::SUBSIZED)
        }
    }

    #[test]
    fn non_sized_estimate_never_drives_the_size_cutoff() {
        // The wrapper's estimate (4096) is an upper bound, not a size.
        // A fixed leaf as large as the whole estimate must NOT make the
        // root a leaf: the driver has to keep splitting to the depth
        // cap, because the real survivor count is unknowable up front.
        let p = Arc::new(pool());
        let data: Vec<i64> = (0..4096).collect();
        let cfg = ExecConfig::par()
            .with_pool(Arc::clone(&p))
            .with_leaf_size(4096);
        let unsized_src = UnsizedUpperBound(SliceSpliterator::new(data.clone()));
        assert_eq!(unsized_src.exact_size(), None);
        let (out, report) = plobs::recorded(|| {
            try_collect_with(unsized_src, ReduceCollector::new(0, |a, b| a + b), &cfg)
        });
        assert_eq!(out.unwrap(), 4095 * 4096 / 2);
        let depth_cap = SplitPolicy::Fixed(4096).depth_cap(p.threads());
        assert_eq!(
            report.splits,
            (1 << depth_cap) - 1,
            "an unsized source must descend to the full depth cap"
        );
        // The same leaf on the SIZED original is sequential: its exact
        // size equals the leaf, so the root really is one leaf.
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                SliceSpliterator::new(data),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 4095 * 4096 / 2);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn adaptive_min_leaf_ignores_upper_bound_estimates() {
        // With `min_leaf` far above the estimate, a SIZED source stops
        // at the root, while the unsized wrapper of the same data must
        // still split (the cutoff cannot trust an upper bound).
        let p = Arc::new(pool());
        let tight = SplitPolicy::Adaptive(forkjoin::AdaptiveSplit {
            min_leaf: 1 << 20,
            ..forkjoin::AdaptiveSplit::default()
        });
        let data: Vec<i64> = (0..512).collect();
        let cfg = ExecConfig::par()
            .with_pool(Arc::clone(&p))
            .with_split_policy(tight);
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                SliceSpliterator::new(data.clone()),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 511 * 512 / 2);
        assert_eq!(report.splits, 0, "512 ≤ min_leaf: the sized root is a leaf");
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                UnsizedUpperBound(SliceSpliterator::new(data)),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 511 * 512 / 2);
        assert!(
            report.splits > 0,
            "the unsized estimate must not reach the min_leaf cutoff"
        );
    }

    #[test]
    fn submit_race_fallback_recomputes_cap_from_executing_pool() {
        // `try_par_core`'s shutdown-race fallback runs the recursion on
        // this (external) thread, with joins migrating to the global
        // pool. A depth cap captured from the dead 1-thread target pool
        // (`ceil_log2(1) + 0 = 0` under zero slack) would stop an
        // adaptive descent at the root with zero splits; the cap must
        // instead budget the pool that executes.
        if forkjoin::global_pool().threads() < 2 {
            return; // single-core runner: both caps coincide
        }
        let dead = Arc::new(ForkJoinPool::new(1));
        dead.shutdown();
        let policy = SplitPolicy::Adaptive(forkjoin::AdaptiveSplit {
            min_leaf: 1,
            depth_slack: 0,
            ..forkjoin::AdaptiveSplit::default()
        });
        let cfg = ExecConfig::par();
        let session = ExecSession::new(&cfg);
        let (out, report) = plobs::recorded(|| {
            try_par_core(
                &dead,
                SliceSpliterator::new((0..4096i64).collect()),
                Arc::new(ReduceCollector::new(0, |a, b| a + b)),
                policy,
                &session,
            )
        });
        assert_eq!(out.unwrap(), 4095 * 4096 / 2);
        assert_eq!(report.fallbacks_submit, 1);
        assert!(
            report.splits >= 1,
            "fallback must split for the executing pool, not the dead target"
        );
    }

    #[test]
    fn auto_tuned_collect_calibrates_once_then_hits() {
        let cache = Arc::new(pltune::PlanCache::new());
        let cfg = ExecConfig::par()
            .with_pool(Arc::new(pool()))
            .auto_tune(Arc::clone(&cache));
        let ((), report) = plobs::recorded(|| {
            for _ in 0..3 {
                let out = try_collect_with(
                    SliceSpliterator::new((0..2048i64).collect()),
                    ReduceCollector::new(0, |a, b| a + b),
                    &cfg,
                )
                .unwrap();
                assert_eq!(out, 2047 * 2048 / 2);
            }
        });
        assert_eq!(report.tune_calibrations, 1, "first sight calibrates");
        assert_eq!(report.tune_hits, 2, "repeat sights reuse the plan");
        assert_eq!(report.tune_misses, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn explicit_policy_bypasses_the_tuner() {
        let cache = Arc::new(pltune::PlanCache::new());
        let cfg = ExecConfig::par()
            .with_pool(Arc::new(pool()))
            .with_leaf_size(64)
            .auto_tune(Arc::clone(&cache));
        let (out, report) = plobs::recorded(|| {
            try_collect_with(
                SliceSpliterator::new((0..256i64).collect()),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
        });
        assert_eq!(out.unwrap(), 255 * 256 / 2);
        assert_eq!(
            report.tunes(),
            0,
            "explicit policies never consult the cache"
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn tuner_fingerprints_unsized_pipelines_as_inexact() {
        // Same data, same collector: the SIZED source and its unsized
        // wrapper must occupy distinct cache slots (the `sized` flag is
        // part of the fingerprint), so a plan tuned for an exact size
        // is never served to an upper-bound pipeline of the same bucket.
        let cache = Arc::new(pltune::PlanCache::new());
        let cfg = ExecConfig::par()
            .with_pool(Arc::new(pool()))
            .auto_tune(Arc::clone(&cache));
        let data: Vec<i64> = (0..1024).collect();
        let ((), report) = plobs::recorded(|| {
            let a = try_collect_with(
                SliceSpliterator::new(data.clone()),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
            .unwrap();
            let b = try_collect_with(
                UnsizedUpperBound(SliceSpliterator::new(data)),
                ReduceCollector::new(0, |a, b| a + b),
                &cfg,
            )
            .unwrap();
            assert_eq!(a, b);
        });
        assert_eq!(
            report.tune_calibrations, 2,
            "sized and unsized are distinct"
        );
        assert_eq!(cache.len(), 2);
        let entries = cache.ready_entries();
        let flags: Vec<bool> = entries.iter().map(|(fp, _)| fp.sized).collect();
        assert!(flags.contains(&true) && flags.contains(&false));
    }

    #[test]
    fn legacy_shim_resumes_contained_panics() {
        let p = pool();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            collect_par(
                &p,
                SliceSpliterator::new((0..64).collect::<Vec<i32>>()),
                Arc::new(ReduceCollector::new(0, |_, _| -> i32 {
                    panic!("legacy bang")
                })),
                4,
            )
        }));
        let payload = caught.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"legacy bang"));
        // The same pool still works afterwards.
        assert_eq!(
            collect_par(
                &p,
                SliceSpliterator::new((0..64).collect::<Vec<i32>>()),
                Arc::new(CountCollector),
                4
            ),
            64
        );
    }
}
