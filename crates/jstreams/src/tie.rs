//! `TieSpliterator`: splits a PowerList source like the **tie** operator.
//!
//! Each `try_split` hands off the first half of the remaining elements —
//! the `p` of `p | q` — as the returned spliterator and keeps the second
//! half. This coincides with Java's default segment-wise splitting (the
//! paper notes the default "is somehow similar to the operator tie"), but
//! the explicit class advertises `POWER2` and carries the split level for
//! splitting-phase hooks.

use crate::characteristics::Characteristics;
use crate::spliterator::{ItemSource, LeafAccess, Spliterator};
use powerlist::{PowerList, PowerView, Storage};

/// Spliterator decomposing a power-of-two source by halving (tie).
///
/// State is the paper's descriptor: shared storage plus
/// `(start, end, incr)` with **inclusive** `end`, exactly as the
/// `ZipSpliterator(list, 0, list.size()-1)` constructor of Section IV.A.
pub struct TieSpliterator<T> {
    storage: Storage<T>,
    start: usize,
    end: usize, // inclusive physical index of the last element
    incr: usize,
    level: u32,
    exhausted: bool,
}

impl<T> TieSpliterator<T> {
    /// Spliterator over a whole PowerList.
    pub fn over(list: PowerList<T>) -> Self {
        let view = list.view();
        Self::from_view(&view)
    }

    /// Spliterator over an existing no-copy view.
    pub fn from_view(view: &PowerView<T>) -> Self {
        TieSpliterator {
            storage: view.storage(),
            start: view.start(),
            end: view.start() + (view.len() - 1) * view.incr(),
            incr: view.incr().max(1),
            level: 0,
            exhausted: false,
        }
    }

    /// Raw descriptor constructor (paper-style `(list, start, end, incr)`
    /// with inclusive `end`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid descriptor; use
    /// [`TieSpliterator::try_from_parts`] for untrusted inputs.
    pub fn from_parts(storage: Storage<T>, start: usize, end: usize, incr: usize) -> Self {
        assert!(incr >= 1, "increment must be at least 1");
        assert!(start <= end, "start must not exceed end");
        assert!(end < storage.len(), "end out of bounds");
        TieSpliterator {
            storage,
            start,
            end,
            incr,
            level: 0,
            exhausted: false,
        }
    }

    /// Checked descriptor constructor: validates the `(start, end, incr)`
    /// triple and returns a [`powerlist::Error`] instead of panicking —
    /// the shape-error route of the fallible execution surface.
    pub fn try_from_parts(
        storage: Storage<T>,
        start: usize,
        end: usize,
        incr: usize,
    ) -> powerlist::Result<Self> {
        crate::spliterator::check_descriptor(storage.len(), start, end, incr)?;
        Ok(Self::from_parts(storage, start, end, incr))
    }

    /// How many `try_split`s produced this spliterator (the tree depth of
    /// the corresponding divide-and-conquer node).
    pub fn level(&self) -> u32 {
        self.level
    }

    fn remaining(&self) -> usize {
        if self.exhausted {
            0
        } else {
            (self.end - self.start) / self.incr + 1
        }
    }
}

impl<T: Clone> ItemSource<T> for TieSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        if self.exhausted {
            return false;
        }
        action(self.storage.get(self.start).clone());
        if self.start + self.incr > self.end {
            self.exhausted = true;
        } else {
            self.start += self.incr;
        }
        true
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        if self.exhausted {
            return;
        }
        let mut i = self.start;
        loop {
            action(self.storage.get(i).clone());
            if i + self.incr > self.end {
                break;
            }
            i += self.incr;
        }
        self.exhausted = true;
    }

    fn estimate_size(&self) -> usize {
        self.remaining()
    }
}

impl<T> LeafAccess<T> for TieSpliterator<T> {
    // A tie run over a stride-1 view is a contiguous slab of the shared
    // storage; strided views (built from an unzipped PowerView) still
    // expose the borrowed strided form.
    fn try_as_slice(&self) -> Option<&[T]> {
        if self.exhausted {
            Some(&[])
        } else if self.incr == 1 {
            Some(&self.storage.as_slice()[self.start..=self.end])
        } else {
            None
        }
    }

    fn try_as_strided(&self) -> Option<(&[T], usize)> {
        if self.exhausted {
            Some((&[], 1))
        } else {
            Some((&self.storage.as_slice()[self.start..=self.end], self.incr))
        }
    }

    fn mark_drained(&mut self) {
        self.exhausted = true;
    }
}

impl<T: Clone + Send + Sync> Spliterator<T> for TieSpliterator<T> {
    fn try_split(&mut self) -> Option<Self> {
        let n = self.remaining();
        if n < 2 {
            return None;
        }
        let half = n / 2;
        self.level += 1;
        let prefix = TieSpliterator {
            storage: self.storage.clone(),
            start: self.start,
            end: self.start + (half - 1) * self.incr,
            incr: self.incr,
            level: self.level,
            exhausted: false,
        };
        // self keeps the suffix (the `q` of p | q).
        self.start += half * self.incr;
        Some(prefix)
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::powerlist_default()
    }

    // Physical storage indices, monotone in encounter order — the same
    // keyspace ZipSpliterator reports, so tie- and zip-derived leaves of
    // a shared storage rank consistently.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        Some((self.start, self.incr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::require_power2;
    use powerlist::tabulate;

    #[test]
    fn try_from_parts_validates_descriptor() {
        let storage = Storage::new(vec![0, 1, 2, 3]);
        assert_eq!(
            TieSpliterator::try_from_parts(storage.clone(), 0, 3, 0).err(),
            Some(powerlist::Error::ZeroIncrement)
        );
        assert_eq!(
            TieSpliterator::try_from_parts(storage.clone(), 3, 1, 1).err(),
            Some(powerlist::Error::Empty)
        );
        assert_eq!(
            TieSpliterator::try_from_parts(storage.clone(), 0, 4, 1).err(),
            Some(powerlist::Error::DescriptorOutOfBounds { end: 4, len: 4 })
        );
        let mut ok = TieSpliterator::try_from_parts(storage, 0, 3, 1).unwrap();
        assert_eq!(drain(&mut ok), vec![0, 1, 2, 3]);
    }

    fn drain<T: Clone>(s: &mut TieSpliterator<T>) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    fn spl(n: usize) -> TieSpliterator<usize> {
        TieSpliterator::over(tabulate(n, |i| i).unwrap())
    }

    #[test]
    fn traverses_in_order() {
        let mut s = spl(8);
        assert_eq!(s.estimate_size(), 8);
        assert_eq!(drain(&mut s), (0..8).collect::<Vec<_>>());
        assert_eq!(s.estimate_size(), 0);
    }

    #[test]
    fn split_gives_first_half() {
        let mut s = spl(8);
        let mut prefix = s.try_split().unwrap();
        assert_eq!(prefix.level(), 1);
        assert_eq!(s.level(), 1);
        assert_eq!(drain(&mut prefix), vec![0, 1, 2, 3]);
        assert_eq!(drain(&mut s), vec![4, 5, 6, 7]);
    }

    #[test]
    fn recursive_splits_reach_singletons() {
        let mut s = spl(4);
        let mut l = s.try_split().unwrap();
        let mut ll = l.try_split().unwrap();
        let mut sr = s.try_split().unwrap();
        assert_eq!(drain(&mut ll), vec![0]);
        assert_eq!(drain(&mut l), vec![1]);
        assert_eq!(drain(&mut sr), vec![2]);
        assert_eq!(drain(&mut s), vec![3]);
    }

    #[test]
    fn singleton_does_not_split() {
        let mut s = spl(1);
        assert!(s.try_split().is_none());
        assert_eq!(drain(&mut s), vec![0]);
        assert!(s.try_split().is_none());
    }

    #[test]
    fn advertises_power2() {
        let s = spl(16);
        assert!(s.has_characteristics(Characteristics::POWER2));
        assert!(require_power2(&s).is_ok());
    }

    #[test]
    fn partial_traversal_then_split() {
        let mut s = spl(8);
        let mut first = None;
        s.try_advance(&mut |x| first = Some(x));
        assert_eq!(first, Some(0));
        // 7 remain; split hands off the first 3.
        let mut prefix = s.try_split().unwrap();
        assert_eq!(drain(&mut prefix), vec![1, 2, 3]);
        assert_eq!(drain(&mut s), vec![4, 5, 6, 7]);
    }

    #[test]
    fn from_view_respects_stride() {
        let p = tabulate(8, |i| i).unwrap();
        let v = p.view();
        let (even, _) = v.unzip().unwrap();
        let mut s = TieSpliterator::from_view(&even);
        assert_eq!(s.estimate_size(), 4);
        assert_eq!(drain(&mut s), vec![0, 2, 4, 6]);
    }

    #[test]
    fn try_advance_until_empty() {
        let mut s = spl(2);
        let mut seen = vec![];
        while s.try_advance(&mut |x| seen.push(x)) {}
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(s.estimate_size(), 0);
    }
}
