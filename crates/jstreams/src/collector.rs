//! The `Collector` abstraction: supplier / accumulator / combiner.
//!
//! Java's `Collector<T, A, R>` wraps the three functions of the mutable
//! reduction `collect(supplier, accumulator, combiner)`. The paper uses
//! this interface as the **template method of a divide-and-conquer
//! skeleton**: the supplier creates leaf containers, the accumulator
//! folds elements into them, and the combiner computes interior nodes of
//! the computation tree. This trait is the Rust rendering, with two
//! deliberate deltas:
//!
//! * `combine` consumes both partial containers and returns the merged
//!   one (Java folds the second into the first through a `BiConsumer`;
//!   ownership makes the same data flow explicit);
//! * `leaf` is an overridable hook for the Section V observation that
//!   splitting stops above singletons and the remaining sub-list is
//!   processed by `forEachRemaining` — collectors may replace that
//!   element-by-element default with a specialised sequential kernel
//!   (e.g. Horner for the polynomial, sequential FFT at the leaves).

use crate::placement::{
    self, JoiningPlacement, OutputBuffer, PlacementSpec, VecPlacement, WindowRule,
};
use crate::spliterator::ItemSource;
use std::sync::Arc;

/// A mutable-reduction recipe: Java's `Collector<T, A, R>`.
///
/// Contract (same as Java's): `combine(a, b)` must equal the container
/// obtained by accumulating `b`'s elements into `a` in order — the
/// *compatibility* condition that makes parallel and sequential collects
/// agree for associative decompositions.
pub trait Collector<T>: Send + Sync {
    /// The mutable accumulation type (`A`).
    type Acc: Send;
    /// The result type (`R`).
    type Out;

    /// Creates a fresh result container. In a parallel execution this is
    /// called once per leaf and "must return a fresh value each time".
    fn supplier(&self) -> Self::Acc;

    /// Folds one element into a container (associative,
    /// non-interfering, stateless).
    fn accumulate(&self, acc: &mut Self::Acc, item: T);

    /// Merges two partial containers produced by sibling subtrees;
    /// `left` precedes `right` in encounter order.
    fn combine(&self, left: Self::Acc, right: Self::Acc) -> Self::Acc;

    /// Final transformation from accumulation to result (Java's
    /// `finisher`).
    fn finish(&self, acc: Self::Acc) -> Self::Out;

    /// Processes one leaf: a sub-source the driver decided not to split
    /// further. The default drains the source through
    /// [`Collector::accumulate`]; override to install a specialised
    /// sequential kernel.
    fn leaf(&self, source: &mut dyn ItemSource<T>) -> Self::Acc {
        let mut acc = self.supplier();
        source.for_each_remaining(&mut |x| self.accumulate(&mut acc, x));
        acc
    }

    /// Zero-copy leaf kernel over a borrowed **contiguous** run. The
    /// driver calls this (before the cloning drain) when the leaf's
    /// spliterator exposes its remaining elements via
    /// [`LeafAccess::try_as_slice`](crate::LeafAccess::try_as_slice);
    /// returning `Some(acc)` consumes the leaf without per-element
    /// callbacks or clones, returning `None` (the default) falls back to
    /// [`Collector::leaf`]. An override must produce the same container
    /// the accumulate-drain would.
    fn leaf_slice(&self, _items: &[T]) -> Option<Self::Acc> {
        None
    }

    /// Zero-copy leaf kernel over a borrowed **strided** run: the leaf's
    /// elements are `items[0], items[step], items[2*step], …` (the shape
    /// of a zip-split residue class). Same fallback contract as
    /// [`Collector::leaf_slice`].
    fn leaf_strided(&self, _items: &[T], _step: usize) -> Option<Self::Acc> {
        None
    }

    /// Destination-passing capability: `Some` when this collector can
    /// collect through a root-allocated output buffer with per-leaf
    /// write windows (see [`crate::placement`]), `None` (the default)
    /// to always use the splice route. A `Some` answer must come with a
    /// matching [`Collector::try_reserve`] override.
    fn placement_spec(&self) -> Option<PlacementSpec> {
        None
    }

    /// Slot count of the borrowed strided run for a non-`unit`
    /// placement collector (joining: total bytes of the run's strings).
    /// Only called when [`Collector::placement_spec`] returns a spec
    /// with `unit == false`; the default is never consulted.
    fn placement_measure(&self, _items: &[T], _step: usize) -> usize {
        0
    }

    /// Allocates the destination buffer for a placement collect of
    /// `slots` output slots. `None` (the default, and the required
    /// answer when [`Collector::placement_spec`] is `None`) falls back
    /// to the splice route.
    fn try_reserve(&self, _slots: usize) -> Option<Arc<dyn OutputBuffer<T, Self::Out>>> {
        None
    }
}

/// Builds a collector from three closures (plus an identity finisher),
/// mirroring the raw `collect(supplier, accumulator, combiner)` call of
/// the paper's first example.
pub struct FnCollector<Sup, Acc, Com> {
    supplier: Sup,
    accumulator: Acc,
    combiner: Com,
}

impl<Sup, Acc, Com> FnCollector<Sup, Acc, Com> {
    /// Wraps the three functions of a mutable reduction.
    pub fn new(supplier: Sup, accumulator: Acc, combiner: Com) -> Self {
        FnCollector {
            supplier,
            accumulator,
            combiner,
        }
    }
}

impl<T, A, Sup, Acc, Com> Collector<T> for FnCollector<Sup, Acc, Com>
where
    A: Send,
    Sup: Fn() -> A + Send + Sync,
    Acc: Fn(&mut A, T) + Send + Sync,
    Com: Fn(A, A) -> A + Send + Sync,
{
    type Acc = A;
    type Out = A;

    fn supplier(&self) -> A {
        (self.supplier)()
    }

    fn accumulate(&self, acc: &mut A, item: T) {
        (self.accumulator)(acc, item)
    }

    fn combine(&self, left: A, right: A) -> A {
        (self.combiner)(left, right)
    }

    fn finish(&self, acc: A) -> A {
        acc
    }
}

/// Collector into a plain `Vec<T>` by concatenation — the ordinary
/// (tie-compatible) list collector.
pub struct VecCollector;

impl<T: Clone + Send + 'static> Collector<T> for VecCollector {
    type Acc = Vec<T>;
    type Out = Vec<T>;

    fn supplier(&self) -> Vec<T> {
        Vec::new()
    }

    fn accumulate(&self, acc: &mut Vec<T>, item: T) {
        acc.push(item);
    }

    fn combine(&self, mut left: Vec<T>, mut right: Vec<T>) -> Vec<T> {
        if left.len() >= right.len() {
            left.append(&mut right);
            left
        } else {
            // Small-side merge: prepend the smaller left in one splice
            // (a single reserve + shift of the larger side) instead of
            // growing the small vector and copying the large one into
            // it element range by element range.
            right.splice(0..0, left.drain(..));
            right
        }
    }

    fn finish(&self, acc: Vec<T>) -> Vec<T> {
        acc
    }

    fn leaf_slice(&self, items: &[T]) -> Option<Vec<T>> {
        Some(items.to_vec())
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<Vec<T>> {
        Some(items.iter().step_by(step).cloned().collect())
    }

    fn placement_spec(&self) -> Option<PlacementSpec> {
        Some(PlacementSpec {
            rule: WindowRule::Concat,
            gap: 0,
            unit: true,
        })
    }

    fn try_reserve(&self, slots: usize) -> Option<Arc<dyn OutputBuffer<T, Vec<T>>>> {
        placement::reserve(VecPlacement::new(slots))
    }
}

/// Reduction collector: folds every element with an associative binary
/// operator starting from an identity — `Stream::reduce(identity, op)`.
pub struct ReduceCollector<T, Op> {
    identity: T,
    op: Op,
}

impl<T, Op> ReduceCollector<T, Op> {
    /// `identity` must be a true identity of `op` and `op` associative,
    /// or parallel results will differ from sequential ones (same
    /// contract as Java).
    pub fn new(identity: T, op: Op) -> Self {
        ReduceCollector { identity, op }
    }
}

impl<T, Op> Collector<T> for ReduceCollector<T, Op>
where
    T: Clone + Send + Sync,
    Op: Fn(T, T) -> T + Send + Sync,
{
    type Acc = T;
    type Out = T;

    fn supplier(&self) -> T {
        self.identity.clone()
    }

    fn accumulate(&self, acc: &mut T, item: T) {
        let prev = std::mem::replace(acc, self.identity.clone());
        *acc = (self.op)(prev, item);
    }

    fn combine(&self, left: T, right: T) -> T {
        (self.op)(left, right)
    }

    fn finish(&self, acc: T) -> T {
        acc
    }

    fn leaf_slice(&self, items: &[T]) -> Option<T> {
        let mut acc = self.identity.clone();
        for x in items {
            acc = (self.op)(acc, x.clone());
        }
        Some(acc)
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<T> {
        let mut acc = self.identity.clone();
        for x in items.iter().step_by(step) {
            acc = (self.op)(acc, x.clone());
        }
        Some(acc)
    }
}

/// Counting collector (`Stream::count`).
pub struct CountCollector;

impl<T: Send> Collector<T> for CountCollector {
    type Acc = usize;
    type Out = usize;

    fn supplier(&self) -> usize {
        0
    }

    fn accumulate(&self, acc: &mut usize, _item: T) {
        *acc += 1;
    }

    fn combine(&self, left: usize, right: usize) -> usize {
        left + right
    }

    fn finish(&self, acc: usize) -> usize {
        acc
    }

    fn leaf(&self, source: &mut dyn ItemSource<T>) -> usize {
        // Count by traversal: `estimate_size` is only an upper bound for
        // non-SIZED sources (e.g. after `filter`), and a leaf cannot see
        // the spliterator's characteristics to know the difference.
        let mut n = 0usize;
        source.for_each_remaining(&mut |_| n += 1);
        n
    }

    // A borrowed run's length is exact (the slice comes from the source's
    // own storage, unlike a possibly-lying `estimate_size`), so counting
    // needs no traversal at all.
    fn leaf_slice(&self, items: &[T]) -> Option<usize> {
        Some(items.len())
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<usize> {
        Some(items.len().div_ceil(step))
    }
}

/// Min/max collector (`Stream::min` / `Stream::max`): keeps the extreme
/// element seen so far; ties resolve to the earlier element in encounter
/// order, matching Java's `BinaryOperator.minBy/maxBy` semantics.
pub struct ExtremumCollector {
    want_max: bool,
}

impl ExtremumCollector {
    /// Collector computing the minimum.
    pub fn min() -> Self {
        ExtremumCollector { want_max: false }
    }

    /// Collector computing the maximum.
    pub fn max() -> Self {
        ExtremumCollector { want_max: true }
    }

    fn better<T: Ord>(&self, candidate: &T, incumbent: &T) -> bool {
        if self.want_max {
            candidate > incumbent
        } else {
            candidate < incumbent
        }
    }
}

impl<T: Ord + Send + Clone> Collector<T> for ExtremumCollector {
    type Acc = Option<T>;
    type Out = Option<T>;

    fn supplier(&self) -> Option<T> {
        None
    }

    fn accumulate(&self, acc: &mut Option<T>, item: T) {
        match acc {
            None => *acc = Some(item),
            Some(cur) => {
                if self.better(&item, cur) {
                    *acc = Some(item);
                }
            }
        }
    }

    fn combine(&self, left: Option<T>, right: Option<T>) -> Option<T> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => {
                // Encounter order: the right element must be strictly
                // better to displace the left one.
                if self.better(&r, &l) {
                    Some(r)
                } else {
                    Some(l)
                }
            }
        }
    }

    fn finish(&self, acc: Option<T>) -> Option<T> {
        acc
    }

    // Scan the borrowed run by reference and clone only the winner.
    fn leaf_slice(&self, items: &[T]) -> Option<Option<T>> {
        let mut best: Option<&T> = None;
        for x in items {
            if best.is_none_or(|b| self.better(x, b)) {
                best = Some(x);
            }
        }
        Some(best.cloned())
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<Option<T>> {
        let mut best: Option<&T> = None;
        for x in items.iter().step_by(step) {
            if best.is_none_or(|b| self.better(x, b)) {
                best = Some(x);
            }
        }
        Some(best.cloned())
    }
}

/// The paper's running example: concatenating words with a separator.
/// The separator is inserted by the combiner, i.e. only at parallel
/// merge points — reproducing the Section IV remark that "if the stream
/// hadn't been parallel, the combiner would not be used".
pub struct JoiningCollector {
    separator: String,
}

impl JoiningCollector {
    /// Collector joining strings with `separator` between *partial
    /// results*.
    pub fn new(separator: impl Into<String>) -> Self {
        JoiningCollector {
            separator: separator.into(),
        }
    }
}

impl Collector<String> for JoiningCollector {
    type Acc = String;
    type Out = String;

    fn supplier(&self) -> String {
        String::new()
    }

    fn accumulate(&self, acc: &mut String, item: String) {
        acc.push_str(&item);
    }

    fn combine(&self, mut left: String, right: String) -> String {
        left.push_str(&self.separator);
        left.push_str(&right);
        left
    }

    fn finish(&self, acc: String) -> String {
        acc
    }

    fn leaf_slice(&self, items: &[String]) -> Option<String> {
        Some(items.concat())
    }

    fn leaf_strided(&self, items: &[String], step: usize) -> Option<String> {
        let mut acc = String::new();
        for s in items.iter().step_by(step) {
            acc.push_str(s);
        }
        Some(acc)
    }

    fn placement_spec(&self) -> Option<PlacementSpec> {
        Some(PlacementSpec {
            rule: WindowRule::Concat,
            gap: self.separator.len(),
            unit: false,
        })
    }

    // Byte-length prepass: output slots are bytes, so a subtree's slot
    // count is the summed length of its strings (separator slots are
    // budgeted by the driver from the combine count).
    fn placement_measure(&self, items: &[String], step: usize) -> usize {
        items.iter().step_by(step).map(String::len).sum()
    }

    fn try_reserve(&self, slots: usize) -> Option<Arc<dyn OutputBuffer<String, String>>> {
        placement::reserve(JoiningPlacement::new(slots, &self.separator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::SliceSpliterator;

    #[test]
    fn fn_collector_wraps_closures() {
        let c = FnCollector::new(
            Vec::new,
            |v: &mut Vec<i32>, x| v.push(x),
            |mut a: Vec<i32>, mut b| {
                a.append(&mut b);
                a
            },
        );
        let mut acc = c.supplier();
        c.accumulate(&mut acc, 1);
        c.accumulate(&mut acc, 2);
        let other = {
            let mut o = c.supplier();
            c.accumulate(&mut o, 3);
            o
        };
        assert_eq!(c.combine(acc, other), vec![1, 2, 3]);
    }

    #[test]
    fn vec_collector_concatenates() {
        let c = VecCollector;
        let merged = c.combine(vec![1, 2], vec![3]);
        assert_eq!(c.finish(merged), vec![1, 2, 3]);
    }

    #[test]
    fn vec_combine_merges_into_the_larger_side_preserving_order() {
        let c = VecCollector;
        // Small left, large right: the prepend-splice branch must still
        // put left before right in encounter order.
        assert_eq!(c.combine(vec![1], vec![2, 3, 4, 5]), vec![1, 2, 3, 4, 5]);
        // Large left absorbs a small right (the append branch).
        assert_eq!(c.combine(vec![1, 2, 3, 4], vec![5]), vec![1, 2, 3, 4, 5]);
        // Equal sides stay on the append branch.
        assert_eq!(c.combine(vec![1, 2], vec![3, 4]), vec![1, 2, 3, 4]);
        // Empty sides on either branch.
        assert_eq!(c.combine(vec![], vec![7]), vec![7]);
        assert_eq!(c.combine(vec![7], vec![]), vec![7]);
    }

    #[test]
    fn reduce_collector_is_compatible() {
        // combine(a, accumulated(b)) == accumulated over concatenation
        let c = ReduceCollector::new(0i64, |a, b| a + b);
        let mut a = c.supplier();
        for x in [1, 2, 3] {
            c.accumulate(&mut a, x);
        }
        let mut b = c.supplier();
        for x in [4, 5] {
            c.accumulate(&mut b, x);
        }
        assert_eq!(c.combine(a, b), 15);
    }

    #[test]
    fn count_collector_uses_sized_leaf() {
        let c = CountCollector;
        let mut src = SliceSpliterator::new(vec![9, 9, 9, 9]);
        assert_eq!(c.leaf(&mut src), 4);
        // And the source is drained afterwards.
        assert_eq!(src.estimate_size(), 0);
    }

    #[test]
    fn joining_collector_inserts_separator_only_at_combine() {
        let c = JoiningCollector::new(", ");
        let mut left = c.supplier();
        c.accumulate(&mut left, "the".to_string());
        let mut right = c.supplier();
        c.accumulate(&mut right, "cat".to_string());
        assert_eq!(c.combine(left, right), "the, cat");

        // Sequential accumulation into one container: no separator.
        let mut seq = c.supplier();
        c.accumulate(&mut seq, "the".to_string());
        c.accumulate(&mut seq, "cat".to_string());
        assert_eq!(c.finish(seq), "thecat");
    }

    #[test]
    fn default_leaf_drains_source() {
        let c = VecCollector;
        let mut src = SliceSpliterator::new(vec![1, 2, 3]);
        assert_eq!(c.leaf(&mut src), vec![1, 2, 3]);
        assert_eq!(src.estimate_size(), 0);
    }
}
