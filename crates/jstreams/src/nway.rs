//! *n*-way spliterators — the paper's future-work extension, built.
//!
//! Section V: "Since the definition of the Spliterator interface offers
//! only the possibility to split the data in two parts (each time), the
//! possibility to include also the PList extension, and so multi-way
//! divide-and-conquer is not possible (yet). If the definition of the
//! Spliterator would be extended with a trySplit method that returns a
//! set of Spliterators that all together cover all the elements of the
//! source, than the adaptation to PList would become possible."
//!
//! This module implements exactly that extension:
//!
//! * [`NWaySpliterator`] — `try_split_n` returns a set of spliterators
//!   jointly covering the source;
//! * [`NTieSpliterator`] / [`NZipSpliterator`] — the *n*-way tie (block)
//!   and zip (residue-class) decompositions over [`PList`] data;
//! * [`NWayCollector`] — a collector whose combiner merges *n* partial
//!   results at once ([`PListCollector`] recombines with `tie_n` /
//!   `zip_n`);
//! * [`collect_nway_seq`] / [`collect_nway_par`] — the multi-way collect
//!   drivers (the parallel one fans each split out on the fork-join
//!   pool).

use crate::characteristics::Characteristics;
use crate::spliterator::ItemSource;
use forkjoin::{join, ForkJoinPool};
use powerlist::PList;
use std::sync::Arc;

/// A source splittable into `n` parts at once.
pub trait NWaySpliterator<T>: ItemSource<T> + Send + Sized {
    /// Splits the remaining elements into `n` spliterators that jointly
    /// cover them, in encounter order of the corresponding PList
    /// constructor. Returns `Err(self)` (unchanged) when the source
    /// cannot be split `n` ways (too small, or size not divisible).
    fn try_split_n(self, n: usize) -> Result<Vec<Self>, Self>;

    /// Structural properties of this source.
    fn characteristics(&self) -> Characteristics;

    /// The remaining element count only when it is exact
    /// (`Some(estimate_size())` iff `SIZED`), mirroring
    /// [`Spliterator::exact_size`](crate::spliterator::Spliterator::exact_size):
    /// leaf cutoffs must not trust upper-bound estimates.
    fn exact_size(&self) -> Option<usize> {
        if self.characteristics().contains(Characteristics::SIZED) {
            Some(self.estimate_size())
        } else {
            None
        }
    }
}

/// Shared descriptor for the two n-way spliterators: `(data, start,
/// count, incr)` over shared storage.
struct NDescriptor<T> {
    data: Arc<Vec<T>>,
    start: usize,
    count: usize,
    incr: usize,
    cursor: usize, // elements already consumed from the front
}

impl<T: Clone> NDescriptor<T> {
    fn remaining(&self) -> usize {
        self.count - self.cursor
    }

    fn advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        if self.cursor == self.count {
            return false;
        }
        let idx = self.start + self.cursor * self.incr;
        action(self.data[idx].clone());
        self.cursor += 1;
        true
    }

    fn drain(&mut self, action: &mut dyn FnMut(T)) {
        while self.cursor < self.count {
            let idx = self.start + self.cursor * self.incr;
            action(self.data[idx].clone());
            self.cursor += 1;
        }
    }
}

/// *n*-way **tie** spliterator: splits into `n` contiguous blocks.
pub struct NTieSpliterator<T> {
    d: NDescriptor<T>,
}

impl<T> NTieSpliterator<T> {
    /// Spliterator over all elements of a PList.
    pub fn over(list: PList<T>) -> Self {
        let count = list.len();
        NTieSpliterator {
            d: NDescriptor {
                data: Arc::new(list.into_vec()),
                start: 0,
                count,
                incr: 1,
                cursor: 0,
            },
        }
    }
}

impl<T: Clone> ItemSource<T> for NTieSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.d.advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.d.drain(action)
    }

    fn estimate_size(&self) -> usize {
        self.d.remaining()
    }
}

impl<T: Clone + Send + Sync> NWaySpliterator<T> for NTieSpliterator<T> {
    fn try_split_n(self, n: usize) -> Result<Vec<Self>, Self> {
        let rem = self.d.remaining();
        if n < 2 || rem < n || !rem.is_multiple_of(n) {
            return Err(self);
        }
        let m = rem / n;
        let base = self.d.start + self.d.cursor * self.d.incr;
        let parts = (0..n)
            .map(|i| NTieSpliterator {
                d: NDescriptor {
                    data: Arc::clone(&self.d.data),
                    start: base + i * m * self.d.incr,
                    count: m,
                    incr: self.d.incr,
                    cursor: 0,
                },
            })
            .collect();
        Ok(parts)
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::ORDERED
            | Characteristics::SIZED
            | Characteristics::SUBSIZED
            | Characteristics::IMMUTABLE
            | Characteristics::NONNULL
    }
}

/// *n*-way **zip** spliterator: splits into `n` residue classes.
pub struct NZipSpliterator<T> {
    d: NDescriptor<T>,
}

impl<T> NZipSpliterator<T> {
    /// Spliterator over all elements of a PList.
    pub fn over(list: PList<T>) -> Self {
        let count = list.len();
        NZipSpliterator {
            d: NDescriptor {
                data: Arc::new(list.into_vec()),
                start: 0,
                count,
                incr: 1,
                cursor: 0,
            },
        }
    }
}

impl<T: Clone> ItemSource<T> for NZipSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.d.advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.d.drain(action)
    }

    fn estimate_size(&self) -> usize {
        self.d.remaining()
    }
}

impl<T: Clone + Send + Sync> NWaySpliterator<T> for NZipSpliterator<T> {
    fn try_split_n(self, n: usize) -> Result<Vec<Self>, Self> {
        let rem = self.d.remaining();
        if n < 2 || rem < n || !rem.is_multiple_of(n) {
            return Err(self);
        }
        let m = rem / n;
        let base = self.d.start + self.d.cursor * self.d.incr;
        let parts = (0..n)
            .map(|i| NZipSpliterator {
                d: NDescriptor {
                    data: Arc::clone(&self.d.data),
                    start: base + i * self.d.incr,
                    count: m,
                    incr: self.d.incr * n,
                    cursor: 0,
                },
            })
            .collect();
        Ok(parts)
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::ORDERED
            | Characteristics::SIZED
            | Characteristics::SUBSIZED
            | Characteristics::IMMUTABLE
            | Characteristics::NONNULL
    }
}

/// A collector whose combining phase merges `n` sibling results at once
/// — the PList analogue of [`Collector`](crate::Collector).
pub trait NWayCollector<T>: Send + Sync {
    /// The mutable accumulation type.
    type Acc: Send;
    /// The result type.
    type Out;

    /// Fresh leaf container.
    fn supplier(&self) -> Self::Acc;
    /// Folds one element into a container.
    fn accumulate(&self, acc: &mut Self::Acc, item: T);
    /// Merges the `n` partial results of an *n*-way split, in encounter
    /// order.
    fn combine_n(&self, parts: Vec<Self::Acc>) -> Self::Acc;
    /// Final transformation.
    fn finish(&self, acc: Self::Acc) -> Self::Out;
}

/// Which n-way constructor recombines partial results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NWayDecomposition {
    /// Concatenation (`(n-way |)`).
    Tie,
    /// Interleaving (`(n-way ♮)`).
    Zip,
}

/// Identity collector into a [`PList`], recombining with `tie_n` /
/// `zip_n` — the PList version of the paper's verification example.
pub struct PListCollector {
    decomposition: NWayDecomposition,
}

impl PListCollector {
    /// Identity collector for the given n-way operator.
    pub fn new(decomposition: NWayDecomposition) -> Self {
        PListCollector { decomposition }
    }
}

impl<T: Clone + Send> NWayCollector<T> for PListCollector {
    type Acc = Vec<T>;
    type Out = PList<T>;

    fn supplier(&self) -> Vec<T> {
        Vec::new()
    }

    fn accumulate(&self, acc: &mut Vec<T>, item: T) {
        acc.push(item);
    }

    fn combine_n(&self, parts: Vec<Vec<T>>) -> Vec<T> {
        let lists: Vec<PList<T>> = parts
            .into_iter()
            .map(|v| PList::from_vec(v).expect("non-empty parts"))
            .collect();
        let merged = match self.decomposition {
            NWayDecomposition::Tie => PList::tie_n(lists),
            NWayDecomposition::Zip => PList::zip_n(lists),
        };
        merged.expect("similar parts").into_vec()
    }

    fn finish(&self, acc: Vec<T>) -> PList<T> {
        PList::from_vec(acc).expect("collect of a non-empty source")
    }
}

/// Sequential n-way collect: drain and finish.
pub fn collect_nway_seq<T, S, C>(mut source: S, collector: &C) -> C::Out
where
    S: NWaySpliterator<T>,
    C: NWayCollector<T>,
{
    let mut acc = collector.supplier();
    source.for_each_remaining(&mut |x| collector.accumulate(&mut acc, x));
    collector.finish(acc)
}

/// Parallel n-way collect on `pool`: splits `arity` ways until
/// `leaf_size`, processes leaves, and recombines with `combine_n`.
pub fn collect_nway_par<T, S, C>(
    pool: &ForkJoinPool,
    source: S,
    collector: Arc<C>,
    arity: usize,
    leaf_size: usize,
) -> C::Out
where
    T: Send + 'static,
    S: NWaySpliterator<T> + 'static,
    C: NWayCollector<T> + 'static,
    C::Acc: 'static,
{
    let arity = arity.max(2);
    let leaf_size = leaf_size.max(1);
    let c2 = Arc::clone(&collector);
    let acc = pool.install(move || recurse(source, c2, arity, leaf_size));
    collector.finish(acc)
}

fn recurse<T, S, C>(mut source: S, collector: Arc<C>, arity: usize, leaf_size: usize) -> C::Acc
where
    T: Send + 'static,
    S: NWaySpliterator<T> + 'static,
    C: NWayCollector<T> + 'static,
    C::Acc: 'static,
{
    // The size cutoff only applies to exact sizes (SIZED): an
    // upper-bound estimate must not stop the descent early — inexact
    // sources split until `try_split_n` refuses.
    if source.exact_size().is_some_and(|size| size <= leaf_size) {
        let mut acc = collector.supplier();
        source.for_each_remaining(&mut |x| collector.accumulate(&mut acc, x));
        return acc;
    }
    match source.try_split_n(arity) {
        Err(mut s) => {
            let mut acc = collector.supplier();
            s.for_each_remaining(&mut |x| collector.accumulate(&mut acc, x));
            acc
        }
        Ok(parts) => {
            let accs = par_map_parts(parts, &collector, arity, leaf_size);
            collector.combine_n(accs)
        }
    }
}

/// Runs `recurse` over each part in parallel (binary join fan-out),
/// preserving order.
fn par_map_parts<T, S, C>(
    parts: Vec<S>,
    collector: &Arc<C>,
    arity: usize,
    leaf_size: usize,
) -> Vec<C::Acc>
where
    T: Send + 'static,
    S: NWaySpliterator<T> + 'static,
    C: NWayCollector<T> + 'static,
    C::Acc: 'static,
{
    fn go<T, S, C>(
        mut parts: Vec<S>,
        collector: Arc<C>,
        arity: usize,
        leaf_size: usize,
    ) -> Vec<C::Acc>
    where
        T: Send + 'static,
        S: NWaySpliterator<T> + 'static,
        C: NWayCollector<T> + 'static,
        C::Acc: 'static,
    {
        match parts.len() {
            0 => Vec::new(),
            1 => vec![recurse(
                parts.pop().expect("len 1"),
                collector,
                arity,
                leaf_size,
            )],
            _ => {
                let right = parts.split_off(parts.len() / 2);
                let c2 = Arc::clone(&collector);
                let (mut l, mut r) = join(
                    move || go(parts, collector, arity, leaf_size),
                    move || go(right, c2, arity, leaf_size),
                );
                l.append(&mut r);
                l
            }
        }
    }
    go(parts, Arc::clone(collector), arity, leaf_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plist(n: usize) -> PList<i64> {
        PList::from_vec((0..n as i64).collect()).unwrap()
    }

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    #[test]
    fn ntie_splits_into_blocks() {
        let s = NTieSpliterator::over(plist(9));
        let mut parts = s.try_split_n(3).ok().unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(drain(&mut parts[0]), vec![0, 1, 2]);
        assert_eq!(drain(&mut parts[1]), vec![3, 4, 5]);
        assert_eq!(drain(&mut parts[2]), vec![6, 7, 8]);
    }

    #[test]
    fn nzip_splits_into_residues() {
        let s = NZipSpliterator::over(plist(9));
        let mut parts = s.try_split_n(3).ok().unwrap();
        assert_eq!(drain(&mut parts[0]), vec![0, 3, 6]);
        assert_eq!(drain(&mut parts[1]), vec![1, 4, 7]);
        assert_eq!(drain(&mut parts[2]), vec![2, 5, 8]);
    }

    #[test]
    fn nested_nway_splits() {
        // 3-way zip then 2-way zip of a part: residues mod 6.
        let s = NZipSpliterator::over(plist(36));
        let parts = s.try_split_n(3).ok().unwrap();
        let mut it = parts.into_iter();
        let first = it.next().unwrap();
        let mut sub = first.try_split_n(2).ok().unwrap();
        assert_eq!(drain(&mut sub[0]), vec![0, 6, 12, 18, 24, 30]);
        assert_eq!(drain(&mut sub[1]), vec![3, 9, 15, 21, 27, 33]);
    }

    #[test]
    fn indivisible_split_is_rejected() {
        let s = NTieSpliterator::over(plist(10));
        let back = s.try_split_n(3).err().expect("10 not divisible by 3");
        assert_eq!(back.estimate_size(), 10);
        let s2 = NZipSpliterator::over(plist(2));
        assert!(s2.try_split_n(3).is_err());
    }

    #[test]
    fn identity_collect_tie() {
        let pool = ForkJoinPool::new(2);
        let p = plist(27);
        let out = collect_nway_par(
            &pool,
            NTieSpliterator::over(p.clone()),
            Arc::new(PListCollector::new(NWayDecomposition::Tie)),
            3,
            1,
        );
        assert_eq!(out, p);
    }

    #[test]
    fn identity_collect_zip() {
        let pool = ForkJoinPool::new(3);
        let p = plist(27);
        let out = collect_nway_par(
            &pool,
            NZipSpliterator::over(p.clone()),
            Arc::new(PListCollector::new(NWayDecomposition::Zip)),
            3,
            1,
        );
        assert_eq!(out, p);
    }

    #[test]
    fn identity_collect_mixed_arities() {
        // Length 36 = 3 × 3 × 4: split 3-ways until leaves of 4.
        let pool = ForkJoinPool::new(2);
        let p = plist(36);
        let out = collect_nway_par(
            &pool,
            NZipSpliterator::over(p.clone()),
            Arc::new(PListCollector::new(NWayDecomposition::Zip)),
            3,
            4,
        );
        assert_eq!(out, p);
    }

    #[test]
    fn sequential_collect_matches() {
        let p = plist(12);
        let out = collect_nway_seq(
            NTieSpliterator::over(p.clone()),
            &PListCollector::new(NWayDecomposition::Tie),
        );
        assert_eq!(out, p);
    }

    #[test]
    fn mismatched_combiner_scrambles() {
        // zip-split + tie-combine permutes, like the binary case.
        let pool = ForkJoinPool::new(2);
        let p = plist(9);
        let out = collect_nway_par(
            &pool,
            NZipSpliterator::over(p.clone()),
            Arc::new(PListCollector::new(NWayDecomposition::Tie)),
            3,
            1,
        );
        assert_ne!(out, p);
        assert_eq!(out.as_slice(), &[0, 3, 6, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn leaf_size_larger_than_input() {
        let pool = ForkJoinPool::new(2);
        let p = plist(5);
        let out = collect_nway_par(
            &pool,
            NZipSpliterator::over(p.clone()),
            Arc::new(PListCollector::new(NWayDecomposition::Zip)),
            3,
            100,
        );
        assert_eq!(out, p);
    }
}
