//! Destination-passing collect: root-allocated output windows that make
//! the combine phase O(1).
//!
//! The splice collect route materialises one container per leaf and
//! merges them pairwise on the way up, so every element is copied once
//! per tree level (`1 + log2(n / leaf)` times in total). This module is
//! the alternative the paper's *tie* structure invites: when the output
//! size is known up front, allocate the result **once** at the root,
//! thread disjoint `(base, step, len)` windows down the split tree, let
//! each leaf write its survivors straight into its window, and turn
//! `combine` into a no-op window merge (or a constant-size fix-up, e.g.
//! the joining separator or the FFT butterfly).
//!
//! Three pieces cooperate:
//!
//! * [`Window`] / [`WindowRule`] / [`descend`] — the window protocol.
//!   The descent rule follows the **collector's combine algebra**, not
//!   the split geometry: a concatenating combiner
//!   ([`WindowRule::Concat`]) hands the left child a contiguous prefix
//!   of the parent window, an interleaving combiner
//!   ([`WindowRule::Interleave`], zip recomposition) doubles the stride
//!   and offsets the right child by one. This is what keeps placement
//!   bit-compatible with the splice route even for *mismatched*
//!   decompositions (a tie-split source collected with a zip
//!   recomposition scrambles identically either way).
//! * [`PlacementSpec`] — the per-collector capability record
//!   ([`Collector::placement_spec`](crate::Collector::placement_spec)):
//!   the rule, the per-combine `gap` (separator slots the combiner
//!   writes between siblings) and whether one input item occupies
//!   exactly one slot (`unit`) or the slot count must be measured
//!   (joining: bytes).
//! * [`PlacementBuf`] / [`OutputBuffer`] — the shared destination. A
//!   `MaybeUninit` allocation plus a mutex-guarded log of written runs;
//!   writers record exactly what they initialised (an RAII guard makes
//!   the record survive a panicking element clone), so dropping a
//!   poisoned buffer frees only initialised slots and
//!   [`PlacementBuf::finish_vec`] refuses to assemble an output unless
//!   every slot was written exactly once.
//!
//! # Safety contract
//!
//! The unsafety is confined to [`PlacementBuf`] and rests on the
//! **disjoint-window invariant**: the driver derives all windows from
//! one root via [`descend`], which partitions the parent's slot set, so
//! no two concurrent writers ever touch the same slot. The
//! `plcheck`-explored model in `crates/plcheck/tests/placement_models.rs`
//! checks exactly-once coverage under interleaved schedules, and the
//! exactly-once audit in `finish_vec` re-verifies coverage (fully in
//! debug builds, by total count in release) before any slot is read.

use parking_lot::Mutex;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// A disjoint strided view into the root output allocation: the slots
/// `base, base + step, …, base + (len - 1) * step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First slot index.
    pub base: usize,
    /// Distance between consecutive slots (doubles per zip descent).
    pub step: usize,
    /// Number of slots in the window.
    pub len: usize,
}

impl Window {
    /// The whole-output window: `len` contiguous slots from 0.
    pub fn root(len: usize) -> Window {
        Window {
            base: 0,
            step: 1,
            len,
        }
    }

    /// Slot index of the window's `j`-th element.
    pub fn slot(&self, j: usize) -> usize {
        self.base + j * self.step
    }
}

/// How a collector's `combine` lays sibling results out in the merged
/// container — the algebra the window descent must mirror.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowRule {
    /// `combine` concatenates: left's slots precede right's
    /// (tie recomposition, joining, the FFT butterfly halves).
    Concat,
    /// `combine` interleaves element-wise: left takes the even parity,
    /// right the odd (zip recomposition). Requires equal halves.
    Interleave,
}

/// A collector's placement capability: how to derive child windows and
/// how input items map to output slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementSpec {
    /// The combine algebra the descent mirrors.
    pub rule: WindowRule,
    /// Slots the combiner itself writes **between** siblings at every
    /// merge point (the joining separator, in bytes). Non-zero gaps
    /// require a deterministic tree shape ([`fixed_leaves`]) so the
    /// root allocation can budget them exactly.
    pub gap: usize,
    /// `true` when one input item fills exactly one slot; `false` when
    /// the slot count must be measured from the source run via
    /// [`Collector::placement_measure`](crate::Collector::placement_measure)
    /// (joining: slots are bytes).
    pub unit: bool,
}

/// Splits `parent` into the two sibling windows under `rule`, giving
/// the left child `left_slots` slots and reserving `gap` slots between
/// the siblings for the combiner.
///
/// # Panics
///
/// Panics when the children do not fit in `parent`, or when an
/// [`WindowRule::Interleave`] descent is asked for unequal halves or a
/// non-zero gap (interleaving combiners insert nothing between
/// siblings).
pub fn descend(
    parent: Window,
    rule: WindowRule,
    left_slots: usize,
    gap: usize,
) -> (Window, Window) {
    match rule {
        WindowRule::Concat => {
            assert!(
                left_slots + gap <= parent.len,
                "window descent overflow: {left_slots} + {gap} > {}",
                parent.len
            );
            let left = Window {
                base: parent.base,
                step: parent.step,
                len: left_slots,
            };
            let right = Window {
                base: parent.base + (left_slots + gap) * parent.step,
                step: parent.step,
                len: parent.len - left_slots - gap,
            };
            (left, right)
        }
        WindowRule::Interleave => {
            assert_eq!(gap, 0, "interleaving combiners have no separator slots");
            assert!(
                parent.len.is_multiple_of(2) && left_slots == parent.len / 2,
                "interleave descent needs equal halves: {left_slots} of {}",
                parent.len
            );
            let half = parent.len / 2;
            let left = Window {
                base: parent.base,
                step: parent.step * 2,
                len: half,
            };
            let right = Window {
                base: parent.base + parent.step,
                step: parent.step * 2,
                len: half,
            };
            (left, right)
        }
    }
}

/// Leaf count of the deterministic [`forkjoin::SplitPolicy::Fixed`]
/// split tree over `m` exactly-sized
/// elements: a node stops at `m <= leaf_size` (or when it can no longer
/// split, `m < 2`), otherwise it splits `floor(m/2)` / `ceil(m/2)`.
///
/// Used to budget combine-inserted separator slots: a subtree of `m`
/// elements performs `fixed_leaves(m, leaf_size) - 1` combines.
pub fn fixed_leaves(m: usize, leaf_size: usize) -> usize {
    if m < 2 || m <= leaf_size {
        1
    } else {
        fixed_leaves(m / 2, leaf_size) + fixed_leaves(m - m / 2, leaf_size)
    }
}

/// A shared destination the placement drivers write leaves into:
/// object-safe so the recursion can thread one `Arc<dyn OutputBuffer>`
/// through `forkjoin::join`'s `'static` closures.
///
/// All methods take `&self`: the buffer outlives stray `Arc` clones
/// held by already-satisfied join stubs still queued in worker deques,
/// so exclusive ownership can never be assumed — interior mutability
/// plus the disjoint-window contract stand in for `&mut`.
pub trait OutputBuffer<T, O>: Send + Sync {
    /// Writes the borrowed strided run (`items[0], items[step], …`,
    /// last element always included) into `w`, one logical element per
    /// slot in window order. Returns the number of elements written.
    fn fill_run(&self, w: Window, items: &[T], step: usize) -> u64;

    /// Writes a pushed stream of elements into `w`: `drive` is called
    /// once with a sink and must push every element of the leaf into
    /// it (the fused-chain leaf route). Returns the number written.
    #[allow(clippy::type_complexity)]
    fn fill_with(&self, w: Window, drive: &mut dyn FnMut(&mut dyn FnMut(T))) -> u64;

    /// The ascend-phase step for the merge of `parent`'s two children,
    /// of which the left occupied `left_slots` slots. A no-op for plain
    /// containers; writes the separator for joining; butterflies in
    /// place for the FFT. Runs strictly after both children quiesced
    /// (the `join` barrier) and before the parent's own `combine`.
    fn combine(&self, parent: Window, left_slots: usize);

    /// Assembles the finished output. Single-shot: called once, on the
    /// success path only, after the whole tree quiesced.
    ///
    /// # Panics
    ///
    /// Panics when any slot was not written exactly once (a driver
    /// bug), or on a second call.
    fn finish(&self) -> O;
}

/// Bookkeeping behind the [`PlacementBuf`] mutex: the log of
/// initialised runs plus the single-shot finish flag.
struct RunLog {
    runs: Vec<Window>,
    finished: bool,
}

/// The root output allocation: `slots` uninitialised cells plus a log
/// of which runs have been written. See the module docs for the safety
/// contract; construction, writing, auditing and teardown all live
/// here so the `unsafe` surface stays in one place.
pub struct PlacementBuf<S> {
    ptr: *mut MaybeUninit<S>,
    slots: usize,
    state: Mutex<RunLog>,
}

// SAFETY: the buffer owns its cells; values of `S` are moved in from
// writer threads and moved out (or dropped) from whichever thread
// finishes or drops the buffer — exactly the `S: Send` contract.
// Shared `&PlacementBuf` access from many threads is safe because the
// disjoint-window contract gives every slot at most one writer and the
// run log is mutex-guarded.
unsafe impl<S: Send> Send for PlacementBuf<S> {}
unsafe impl<S: Send> Sync for PlacementBuf<S> {}

impl<S> PlacementBuf<S> {
    /// Allocates `slots` uninitialised cells.
    pub fn new(slots: usize) -> Self {
        let mut cells: Vec<MaybeUninit<S>> = Vec::with_capacity(slots);
        // SAFETY: `MaybeUninit` cells need no initialisation.
        unsafe { cells.set_len(slots) };
        let ptr = Box::into_raw(cells.into_boxed_slice()) as *mut MaybeUninit<S>;
        PlacementBuf {
            ptr,
            slots,
            state: Mutex::new(RunLog {
                runs: Vec::new(),
                finished: false,
            }),
        }
    }

    /// The allocation size in slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Writes into `w`: `produce` is called once with a sink and pushes
    /// the window's elements in window order. The written prefix is
    /// recorded even if `produce` panics mid-way (RAII), so teardown
    /// drops exactly the initialised cells. Returns the count written.
    ///
    /// # Panics
    ///
    /// Panics when `produce` pushes more than `w.len` elements or `w`
    /// reaches outside the allocation.
    #[allow(clippy::type_complexity)]
    pub fn write(&self, w: Window, produce: &mut dyn FnMut(&mut dyn FnMut(S))) -> u64 {
        let mut writer = self.writer(w);
        produce(&mut |x: S| writer.push(x));
        writer.count()
    }

    /// An incremental writer over `w` for monomorphic leaf kernels: the
    /// bulk [`RunWriter::push_run`] path skips the per-element dynamic
    /// dispatch that [`PlacementBuf::write`]'s sink pays, which is what
    /// makes the placement leaf competitive with a splicing `memcpy`
    /// leaf. The written prefix is recorded when the writer drops —
    /// including a panic unwind — so teardown drops exactly the
    /// initialised cells.
    pub fn writer(&self, w: Window) -> RunWriter<'_, S> {
        RunWriter {
            buf: self,
            w,
            written: 0,
        }
    }

    /// Read-modify-write over a **contiguous** window (`w.step == 1`)
    /// whose slots were all initialised by already-quiesced children —
    /// the in-place ascend hook (the FFT butterfly). The closure gets
    /// the window as a mutable slice.
    ///
    /// # Safety
    ///
    /// The caller must guarantee every slot of `w` is initialised and
    /// that no other thread accesses any slot of `w` for the duration
    /// of the call (true for a combine node: its children quiesced at
    /// the `join` barrier and ancestors only run after it returns).
    pub unsafe fn with_initialized_mut(&self, w: Window, f: &mut dyn FnMut(&mut [S])) {
        assert_eq!(w.step, 1, "in-place combine needs a contiguous window");
        assert!(w.base + w.len <= self.slots, "combine window out of bounds");
        // SAFETY (caller contract): slots `base..base+len` are
        // initialised and exclusively ours, so viewing them as `&mut
        // [S]` is sound; the slice never aliases another thread's
        // window.
        let slice =
            unsafe { std::slice::from_raw_parts_mut(self.ptr.add(w.base) as *mut S, w.len) };
        f(slice);
    }

    /// Audits exactly-once coverage and assembles the output vector,
    /// transferring the allocation (boxed-slice layout is a `Vec` with
    /// `capacity == len`). Single-shot.
    ///
    /// # Panics
    ///
    /// Panics unless every slot was written exactly once, or on a
    /// second call.
    pub fn finish_vec(&self) -> Vec<S> {
        let mut st = self.state.lock();
        assert!(!st.finished, "placement buffer finished twice");
        let total: usize = st.runs.iter().map(|w| w.len).sum();
        assert_eq!(
            total, self.slots,
            "placement finish: {total} of {} slots written",
            self.slots
        );
        // Debug builds re-verify full disjoint coverage, not just the
        // total: an overlapping-window driver bug would otherwise pair
        // a double-write with an uninitialised slot.
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.slots];
            for w in &st.runs {
                for j in 0..w.len {
                    let idx = w.slot(j);
                    assert!(!seen[idx], "slot {idx} written twice");
                    seen[idx] = true;
                }
            }
        }
        st.finished = true;
        drop(st);
        // SAFETY: every slot is initialised exactly once (audited
        // above), the allocation came from a boxed slice of exactly
        // `slots` cells, and `finished` stops both re-entry and the
        // destructor from touching it again.
        unsafe { Vec::from_raw_parts(self.ptr as *mut S, self.slots, self.slots) }
    }
}

/// Incremental writer over one window of a [`PlacementBuf`] — see
/// [`PlacementBuf::writer`]. Dropping the writer records the written
/// prefix in the buffer's run log (panic-safe bookkeeping).
pub struct RunWriter<'a, S> {
    buf: &'a PlacementBuf<S>,
    w: Window,
    written: usize,
}

impl<S> RunWriter<'_, S> {
    /// Moves one element into the window's next slot.
    ///
    /// # Panics
    ///
    /// Panics when the window is already full or reaches outside the
    /// allocation.
    #[inline]
    pub fn push(&mut self, x: S) {
        let j = self.written;
        assert!(
            j < self.w.len,
            "placement window overflow: window holds {} slots",
            self.w.len
        );
        let idx = self.w.base + j * self.w.step;
        assert!(
            idx < self.buf.slots,
            "placement window out of bounds: slot {idx} of {}",
            self.buf.slots
        );
        // SAFETY: `idx` is in bounds (asserted) and, by the
        // disjoint-window contract, no other thread touches this slot;
        // raw-pointer write, so no `&mut` over the whole allocation is
        // ever materialised.
        unsafe { self.buf.ptr.add(idx).write(MaybeUninit::new(x)) };
        self.written = j + 1;
    }

    /// Clones every `step`-th element of `items` into the window's next
    /// slots — the bulk leaf path, bounds-checked once up front so the
    /// copy loop carries no per-element dispatch.
    ///
    /// # Panics
    ///
    /// Panics when the run does not fit the window's remaining slots.
    pub fn push_run(&mut self, items: &[S], step: usize)
    where
        S: Clone,
    {
        let n = if items.is_empty() {
            0
        } else {
            (items.len() - 1) / step + 1
        };
        assert!(
            self.written + n <= self.w.len,
            "placement window overflow: window holds {} slots",
            self.w.len
        );
        if n > 0 {
            let last = self.w.base + (self.written + n - 1) * self.w.step;
            assert!(
                last < self.buf.slots,
                "placement window out of bounds: slot {last} of {}",
                self.buf.slots
            );
        }
        let base = self.w.base + self.written * self.w.step;
        // The write-back guard keeps the per-element progress count in
        // a register (the buffer holds a mutex, so `self.buf.ptr` read
        // through `&self` cannot be hoisted out of the loop by the
        // compiler — and a per-element `self.written += 1` store blocks
        // the memcpy idiom). On a panicking clone the guard's `Drop`
        // still lands the exact initialised prefix in `self.written`.
        struct PrefixGuard<'a> {
            written: &'a mut usize,
            done: usize,
        }
        impl Drop for PrefixGuard<'_> {
            fn drop(&mut self) {
                *self.written += self.done;
            }
        }
        // SAFETY: `base` plus the run extent is in bounds (asserted
        // above); by the disjoint-window contract no other thread
        // touches these slots, and the raw pointer never materialises a
        // `&mut` over the whole allocation.
        let dst = unsafe { self.buf.ptr.add(base) };
        let stride = self.w.step;
        let mut guard = PrefixGuard {
            written: &mut self.written,
            done: 0,
        };
        if stride == 1 && step == 1 {
            for (j, x) in items.iter().enumerate() {
                // SAFETY: see `dst` above; `j < n` keeps it in bounds.
                unsafe { dst.add(j).write(MaybeUninit::new(x.clone())) };
                guard.done = j + 1;
            }
        } else {
            for (j, x) in items.iter().step_by(step).enumerate() {
                // SAFETY: as above, with the window's stride.
                unsafe { dst.add(j * stride).write(MaybeUninit::new(x.clone())) };
                guard.done = j + 1;
            }
        }
    }

    /// Elements written so far.
    pub fn count(&self) -> u64 {
        self.written as u64
    }
}

impl<S> Drop for RunWriter<'_, S> {
    fn drop(&mut self) {
        // Record the initialised prefix no matter how the leaf exits: a
        // panicking element clone must not leak (or double-free) what
        // was already moved in.
        if self.written > 0 {
            self.buf.state.lock().runs.push(Window {
                base: self.w.base,
                step: self.w.step,
                len: self.written,
            });
        }
    }
}

impl<S> Drop for PlacementBuf<S> {
    fn drop(&mut self) {
        let st = self.state.get_mut();
        if st.finished {
            return; // ownership moved into the finished Vec
        }
        // A poisoned (panicked / cancelled) run: drop exactly the
        // initialised cells, then free the allocation.
        if std::mem::needs_drop::<S>() {
            for w in &st.runs {
                for j in 0..w.len {
                    // SAFETY: the run log records initialised slots
                    // only, each exactly once per writer; `&mut self`
                    // gives exclusive access.
                    unsafe { (*self.ptr.add(w.slot(j))).assume_init_drop() };
                }
            }
        }
        // SAFETY: reconstructs the boxed slice taken apart in `new`;
        // `MaybeUninit` cells drop nothing.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.slots,
            )));
        }
    }
}

/// [`OutputBuffer`] for [`VecCollector`](crate::VecCollector): leaves
/// clone straight into the window, combine is a true no-op, finish is
/// the assembled `Vec`.
pub struct VecPlacement<T> {
    buf: PlacementBuf<T>,
}

impl<T> VecPlacement<T> {
    /// A destination of `slots` elements.
    pub fn new(slots: usize) -> Self {
        VecPlacement {
            buf: PlacementBuf::new(slots),
        }
    }
}

impl<T: Clone + Send + 'static> OutputBuffer<T, Vec<T>> for VecPlacement<T> {
    fn fill_run(&self, w: Window, items: &[T], step: usize) -> u64 {
        let mut writer = self.buf.writer(w);
        writer.push_run(items, step);
        writer.count()
    }

    fn fill_with(&self, w: Window, drive: &mut dyn FnMut(&mut dyn FnMut(T))) -> u64 {
        self.buf.write(w, drive)
    }

    fn combine(&self, _parent: Window, _left_slots: usize) {}

    fn finish(&self) -> Vec<T> {
        self.buf.finish_vec()
    }
}

/// [`OutputBuffer`] for
/// [`JoiningCollector`](crate::JoiningCollector): slots are **bytes**
/// (a length prepass measures them), leaves copy their strings' bytes
/// into the window, and `combine` writes the separator into the gap
/// the descent reserved between the siblings.
pub struct JoiningPlacement {
    buf: PlacementBuf<u8>,
    separator: Box<[u8]>,
}

impl JoiningPlacement {
    /// A destination of `slots` bytes joined by `separator`.
    pub fn new(slots: usize, separator: &str) -> Self {
        JoiningPlacement {
            buf: PlacementBuf::new(slots),
            separator: separator.as_bytes().into(),
        }
    }
}

impl OutputBuffer<String, String> for JoiningPlacement {
    fn fill_run(&self, w: Window, items: &[String], step: usize) -> u64 {
        assert_eq!(w.step, 1, "joining windows are contiguous byte runs");
        let mut writer = self.buf.writer(w);
        let mut elements = 0u64;
        for s in items.iter().step_by(step) {
            elements += 1;
            writer.push_run(s.as_bytes(), 1);
        }
        elements
    }

    fn fill_with(&self, w: Window, drive: &mut dyn FnMut(&mut dyn FnMut(String))) -> u64 {
        assert_eq!(w.step, 1, "joining windows are contiguous byte runs");
        let mut writer = self.buf.writer(w);
        let mut elements = 0u64;
        drive(&mut |s: String| {
            elements += 1;
            writer.push_run(s.as_bytes(), 1);
        });
        elements
    }

    fn combine(&self, parent: Window, left_slots: usize) {
        if self.separator.is_empty() {
            return;
        }
        let gap = Window {
            base: parent.base + left_slots,
            step: parent.step,
            len: self.separator.len(),
        };
        let mut writer = self.buf.writer(gap);
        writer.push_run(&self.separator, 1);
    }

    fn finish(&self) -> String {
        // Concatenating whole UTF-8 strings (and separators) keeps the
        // byte stream valid UTF-8.
        String::from_utf8(self.buf.finish_vec()).expect("joined windows hold whole UTF-8 strings")
    }
}

/// Convenience for collector implementations: wraps a buffer into the
/// `Arc<dyn OutputBuffer>` shape
/// [`Collector::try_reserve`](crate::Collector::try_reserve) returns.
pub fn reserve<T, O, B: OutputBuffer<T, O> + 'static>(
    buffer: B,
) -> Option<Arc<dyn OutputBuffer<T, O>>> {
    Some(Arc::new(buffer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn root_window_covers_everything() {
        let w = Window::root(8);
        assert_eq!((w.base, w.step, w.len), (0, 1, 8));
        assert_eq!(w.slot(3), 3);
    }

    #[test]
    fn concat_descent_partitions() {
        let (l, r) = descend(Window::root(10), WindowRule::Concat, 4, 0);
        assert_eq!(
            l,
            Window {
                base: 0,
                step: 1,
                len: 4
            }
        );
        assert_eq!(
            r,
            Window {
                base: 4,
                step: 1,
                len: 6
            }
        );
        // A second-level descent of the right child offsets the base.
        let (rl, rr) = descend(r, WindowRule::Concat, 3, 0);
        assert_eq!(
            rl,
            Window {
                base: 4,
                step: 1,
                len: 3
            }
        );
        assert_eq!(
            rr,
            Window {
                base: 7,
                step: 1,
                len: 3
            }
        );
    }

    #[test]
    fn concat_descent_reserves_the_gap() {
        let (l, r) = descend(Window::root(9), WindowRule::Concat, 4, 1);
        assert_eq!(l.len, 4);
        assert_eq!(
            r,
            Window {
                base: 5,
                step: 1,
                len: 4
            }
        );
    }

    #[test]
    fn interleave_descent_doubles_stride() {
        let (l, r) = descend(Window::root(8), WindowRule::Interleave, 4, 0);
        assert_eq!(
            l,
            Window {
                base: 0,
                step: 2,
                len: 4
            }
        );
        assert_eq!(
            r,
            Window {
                base: 1,
                step: 2,
                len: 4
            }
        );
        // Parity of parity: the four residue classes mod 4.
        let (ll, lr) = descend(l, WindowRule::Interleave, 2, 0);
        assert_eq!(
            ll,
            Window {
                base: 0,
                step: 4,
                len: 2
            }
        );
        assert_eq!(
            lr,
            Window {
                base: 2,
                step: 4,
                len: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "equal halves")]
    fn interleave_rejects_unequal_halves() {
        descend(Window::root(8), WindowRule::Interleave, 3, 0);
    }

    #[test]
    fn fixed_leaves_matches_the_split_tree() {
        assert_eq!(fixed_leaves(8, 1), 8);
        assert_eq!(fixed_leaves(8, 2), 4);
        assert_eq!(fixed_leaves(8, 8), 1);
        assert_eq!(fixed_leaves(1, 1), 1);
        // Odd sizes: 5 -> 2 | 3 -> (1|1) | (1|2) with leaf 1 = 5 leaves.
        assert_eq!(fixed_leaves(5, 1), 5);
        assert_eq!(fixed_leaves(5, 2), 3);
        // Floor/ceil order does not change the count.
        assert_eq!(fixed_leaves(7, 2), fixed_leaves(4, 2) + fixed_leaves(3, 2));
    }

    #[test]
    fn write_and_finish_roundtrip() {
        let buf = PlacementBuf::<u32>::new(4);
        let (l, r) = descend(Window::root(4), WindowRule::Interleave, 2, 0);
        buf.write(r, &mut |sink| {
            sink(10);
            sink(30);
        });
        buf.write(l, &mut |sink| {
            sink(0);
            sink(20);
        });
        assert_eq!(buf.finish_vec(), vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "3 of 4 slots written")]
    fn finish_refuses_uncovered_slots() {
        let buf = PlacementBuf::<u32>::new(4);
        buf.write(
            Window {
                base: 0,
                step: 1,
                len: 3,
            },
            &mut |sink| {
                for i in 0..3 {
                    sink(i);
                }
            },
        );
        let _ = buf.finish_vec();
    }

    #[test]
    #[should_panic(expected = "window overflow")]
    fn writer_cannot_escape_its_window() {
        let buf = PlacementBuf::<u32>::new(4);
        buf.write(
            Window {
                base: 0,
                step: 1,
                len: 2,
            },
            &mut |sink| {
                sink(1);
                sink(2);
                sink(3);
            },
        );
    }

    /// Counts drops so leak/double-free bugs show as wrong counts.
    struct DropTally<'a>(&'a AtomicUsize);
    impl Drop for DropTally<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn poisoned_buffer_drops_only_initialised_cells() {
        let drops = AtomicUsize::new(0);
        {
            let buf = PlacementBuf::<DropTally>::new(8);
            // Partial leaf: writes 2 of its 4 slots, then panics.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                buf.write(
                    Window {
                        base: 0,
                        step: 2,
                        len: 4,
                    },
                    &mut |sink| {
                        sink(DropTally(&drops));
                        sink(DropTally(&drops));
                        panic!("leaf bang");
                    },
                );
            }));
            assert!(r.is_err());
            // A disjoint healthy leaf still lands.
            buf.write(
                Window {
                    base: 1,
                    step: 2,
                    len: 2,
                },
                &mut |sink| {
                    sink(DropTally(&drops));
                    sink(DropTally(&drops));
                },
            );
            assert_eq!(
                drops.load(Ordering::SeqCst),
                0,
                "nothing dropped while live"
            );
        }
        // Exactly the four initialised cells dropped, none double-dropped.
        assert_eq!(drops.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn finished_vec_owns_the_cells() {
        let drops = AtomicUsize::new(0);
        let buf = PlacementBuf::<DropTally>::new(2);
        buf.write(Window::root(2), &mut |sink| {
            sink(DropTally(&drops));
            sink(DropTally(&drops));
        });
        let v = buf.finish_vec();
        drop(buf);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "finish transfers ownership"
        );
        drop(v);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn in_place_combine_sees_initialised_halves() {
        let buf = PlacementBuf::<i64>::new(4);
        let (l, r) = descend(Window::root(4), WindowRule::Concat, 2, 0);
        buf.write(l, &mut |sink| {
            sink(1);
            sink(2);
        });
        buf.write(r, &mut |sink| {
            sink(10);
            sink(20);
        });
        // SAFETY: both halves written above, single thread.
        unsafe {
            buf.with_initialized_mut(Window::root(4), &mut |w| {
                let (a, b) = w.split_at_mut(2);
                for (x, y) in a.iter_mut().zip(b) {
                    let (p, q) = (*x, *y);
                    *x = p + q;
                    *y = p - q;
                }
            });
        }
        assert_eq!(buf.finish_vec(), vec![11, 22, -9, -18]);
    }

    #[test]
    fn joining_placement_writes_separators_at_combines() {
        // "ab" + sep + "cde"  over window split 2 | gap 2 | 3.
        let j = JoiningPlacement::new(7, ", ");
        let parent = Window::root(7);
        let (l, r) = descend(parent, WindowRule::Concat, 2, 2);
        let left = vec!["a".to_string(), "b".to_string()];
        let right = vec!["cde".to_string()];
        assert_eq!(j.fill_run(l, &left, 1), 2);
        assert_eq!(j.fill_run(r, &right, 1), 1);
        j.combine(parent, 2);
        assert_eq!(j.finish(), "ab, cde");
    }

    #[test]
    fn vec_placement_strided_fill() {
        let v = VecPlacement::<u8>::new(2);
        // Strided-run contract: last element included, len % step == 1.
        let items = [9u8, 0, 8];
        assert_eq!(v.fill_run(Window::root(2), &items, 2), 2);
        assert_eq!(v.finish(), vec![9, 8]);
    }

    #[test]
    fn empty_buffer_finishes_empty() {
        let buf = PlacementBuf::<String>::new(0);
        assert_eq!(buf.finish_vec(), Vec::<String>::new());
    }
}
