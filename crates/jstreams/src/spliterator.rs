//! The `Spliterator` abstraction: Java's splittable iterator in Rust.
//!
//! Two traits split Java's single interface so that leaf processing can be
//! object-safe while splitting stays strongly typed:
//!
//! * [`ItemSource`] — the traversal half (`try_advance`,
//!   `for_each_remaining`, `estimate_size`): object safe, what a
//!   [`Collector`](crate::Collector)'s leaf override receives;
//! * [`Spliterator`] — adds `try_split` (returning `Self`, like Java's
//!   covariant `trySplit`) and `characteristics`.
//!
//! As in Java, `try_split` partitions off a **prefix** of the remaining
//! elements into the returned spliterator, leaving `self` with the
//! suffix; returning `None` means "too small to split" and the driver
//! processes the rest sequentially. One family of sources bends the
//! prefix rule: zip decomposition splits by *parity*, interleaving the
//! two halves. Such sources answer `false` from
//! [`Spliterator::prefix_splits`] so order-sensitive consumers (the
//! search driver's `find_first`) know not to derive encounter order
//! from split structure, and publish exact ranks through
//! [`Spliterator::encounter_rank`] instead.

use crate::characteristics::Characteristics;
use powerlist::{is_power_of_two, Error};

/// The traversal half of a spliterator (object safe).
pub trait ItemSource<T> {
    /// Runs `action` on the next element, if any; returns `false` at the
    /// end of the source.
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool;

    /// Runs `action` on every remaining element. The default loops
    /// [`ItemSource::try_advance`]; sources override it for speed.
    ///
    /// This is the hook Section V of the paper highlights: splitting
    /// stops above singletons, and the remaining *sub-PowerList* is
    /// processed by this method — collectors may specialise what "process
    /// a leaf" means (e.g. run a sequential Horner at polynomial leaves).
    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        while self.try_advance(action) {}
    }

    /// Exact or estimated count of remaining elements. Exact whenever
    /// `SIZED` is advertised (all sources in this crate are).
    fn estimate_size(&self) -> usize;
}

/// Borrowed-leaf capability: lets the collect driver read a leaf's
/// remaining elements as a borrowed run instead of draining them through
/// per-element callbacks.
///
/// This is the zero-copy half of the leaf-phase contract (the other half
/// is [`Collector::leaf_slice`](crate::Collector::leaf_slice) /
/// [`Collector::leaf_strided`](crate::Collector::leaf_strided)): when a
/// source can expose its remaining elements as a slice of backing
/// storage, the driver hands that slice to the collector's slice kernel
/// and then calls [`LeafAccess::mark_drained`], skipping the cloning
/// drain entirely. All methods have defaults that advertise no borrowed
/// access, so adapter spliterators that transform or truncate elements
/// (map, filter, limit, skip, peek) opt out with an empty `impl`.
pub trait LeafAccess<T> {
    /// The remaining elements as one contiguous borrowed run, or `None`
    /// when the source is not contiguous (e.g. a zip-split residue class
    /// with stride > 1) or cannot expose storage at all.
    fn try_as_slice(&self) -> Option<&[T]> {
        None
    }

    /// The remaining elements as a borrowed strided run `(items, step)`:
    /// the elements are `items[0], items[step], items[2*step], …` up to
    /// the end of `items`, whose last element is always included
    /// (`items.len() % step == 1` for `step > 1`). The default derives
    /// the contiguous case from [`LeafAccess::try_as_slice`].
    fn try_as_strided(&self) -> Option<(&[T], usize)> {
        self.try_as_slice().map(|s| (s, 1))
    }

    /// Declares the remaining elements consumed after a borrowed-leaf
    /// kernel ran, so subsequent traversal observes an empty source. The
    /// default does nothing (correct for sources that never return
    /// `Some` above).
    fn mark_drained(&mut self) {}

    /// Fused-borrow leaf: run this leaf by borrowing the *underlying
    /// source's* run and driving a fused adapter chain push-style into
    /// `collector`'s accumulator, returning the finished accumulator and
    /// the number of items that reached it (survivors, for filtering
    /// chains). `None` declines the route — the default for every plain
    /// source and adapter; only
    /// [`FusedSpliterator`](crate::fused::FusedSpliterator) overrides
    /// it. Implementations must leave `self` drained on success.
    fn fused_leaf<C>(&mut self, _collector: &C) -> Option<(C::Acc, u64)>
    where
        C: crate::collector::Collector<T> + ?Sized,
        Self: Sized,
    {
        None
    }

    /// Fused-borrow **search** leaf: run this leaf by borrowing the
    /// underlying source's run and driving the fused adapter chain
    /// push-style into `visit`, stopping at the first element for which
    /// `visit` returns `true`. Returns `Some((stopped, delivered))` when
    /// the route was taken — `stopped` says whether the scan
    /// short-circuited, `delivered` counts the elements that reached
    /// `visit` (survivors, for filtering chains). `None` declines the
    /// route — the default for every plain source and adapter; only
    /// [`FusedSpliterator`](crate::fused::FusedSpliterator) overrides
    /// it. Implementations must leave `self` drained on a *full* scan;
    /// after a stop the source state is unspecified (the search driver
    /// abandons it).
    fn fused_search(&mut self, _visit: &mut dyn FnMut(&T) -> bool) -> Option<(bool, u64)> {
        None
    }

    /// Placement-capability probe: `true` when [`LeafAccess::fused_fill`]
    /// is guaranteed to succeed on this source *and every spliterator
    /// split from it*. The placement collect driver consults this once
    /// at the root — a leaf deep in a window-partitioned tree has no
    /// fallback, so the answer must be stable under `try_split`. The
    /// default is `false`; only
    /// [`FusedSpliterator`](crate::fused::FusedSpliterator) (over an
    /// exact, filter-free chain and a borrowable source) answers `true`.
    fn can_fused_fill(&self) -> bool {
        false
    }

    /// Fused-borrow **placement** leaf: drives the fused adapter chain
    /// push-style over the borrowed source run, delivering every
    /// transformed element to `sink` in encounter order, and returns
    /// the count delivered. Only meaningful for *exact* (filter-free)
    /// chains, where the count equals the source run's length — the
    /// precondition [`LeafAccess::can_fused_fill`] advertises. `None`
    /// declines the route (the default). Implementations must leave
    /// `self` drained on success.
    fn fused_fill(&mut self, _sink: &mut dyn FnMut(T)) -> Option<u64> {
        None
    }
}

/// A splittable source of elements (Java's `Spliterator`).
pub trait Spliterator<T>: ItemSource<T> + LeafAccess<T> + Send + Sized {
    /// Splits off a prefix into a new spliterator, leaving `self` with
    /// the suffix; `None` when the source is too small to split.
    fn try_split(&mut self) -> Option<Self>;

    /// Structural properties of this source.
    fn characteristics(&self) -> Characteristics;

    /// `true` when all flags in `c` are advertised.
    fn has_characteristics(&self, c: Characteristics) -> bool {
        self.characteristics().contains(c)
    }

    /// `true` when every `try_split` cuts an encounter-order **prefix**:
    /// all elements of the returned spliterator precede all elements
    /// left in `self`. This is the module-level `try_split` contract and
    /// the default; interleaving splitters (zip: evens vs odds) return
    /// `false`, and adapters must forward their source's answer because
    /// they split by splitting the source.
    ///
    /// Consumers that derive encounter order from split *structure* —
    /// the search driver's virtual-index bookkeeping for `find_first` —
    /// are only sound over prefix-splitting sources; over interleaving
    /// sources they must key on [`Spliterator::encounter_rank`] or fall
    /// back to an ordered sequential scan.
    fn prefix_splits(&self) -> bool {
        true
    }

    /// Exact encounter-order locator for the remaining elements:
    /// `Some((base, step))` when the `j`-th remaining element sits at
    /// rank `base + j·step` of the **root source's** encounter order, in
    /// a keyspace consistent across every spliterator split from the
    /// same root (descriptor-backed sources report physical storage
    /// indices, which are monotone in encounter order). `None` (the
    /// default) when ranks are unknown — e.g. behind a filtering chain,
    /// where delivered positions no longer map to source positions.
    ///
    /// Implementations must preserve rank-ness under `try_split`: if a
    /// spliterator reports `Some`, both halves of a split report `Some`
    /// in the same keyspace. This is what lets `find_first` stay
    /// parallel (and keep pruning) over zip-decomposed sources.
    fn encounter_rank(&self) -> Option<(usize, usize)> {
        None
    }

    /// The remaining element count, but only when it is *exact*:
    /// `Some(estimate_size())` iff the source advertises
    /// [`Characteristics::SIZED`], `None` otherwise.
    ///
    /// `estimate_size` on a non-SIZED source (a `filter` chain, a `skip`
    /// residue) is an **upper bound** — consumers that stop splitting or
    /// pick leaf granularity from the size must use this method instead,
    /// so an upper bound can never masquerade as a real size and
    /// serialize surviving work into one oversized leaf. This is the
    /// single place the SIZED gate lives; callers match on the `Option`
    /// rather than re-checking characteristics.
    fn exact_size(&self) -> Option<usize> {
        if self.has_characteristics(Characteristics::SIZED) {
            Some(self.estimate_size())
        } else {
            None
        }
    }
}

/// Verifies the `POWER2` contract of a spliterator: the flag must be
/// advertised *and* the current size must actually be a power of two.
///
/// The paper performs this check before running a PowerList function on a
/// stream ("for this spliterator we verify that it has the Power2
/// characteristics"). Returns the offending length on failure.
pub fn require_power2<T, S: Spliterator<T>>(s: &S) -> Result<(), Error> {
    let n = s.estimate_size();
    if !s.has_characteristics(Characteristics::POWER2) || !is_power_of_two(n) {
        if n == 0 {
            return Err(Error::Empty);
        }
        return Err(Error::NotPowerOfTwo(n));
    }
    Ok(())
}

/// Validates a raw `(start, end, incr)` descriptor (inclusive `end`)
/// against a backing storage of `len` elements — the checked counterpart
/// of the asserts in `TieSpliterator::from_parts` /
/// `ZipSpliterator::from_parts`, used by their `try_from_parts`
/// constructors.
pub fn check_descriptor(len: usize, start: usize, end: usize, incr: usize) -> Result<(), Error> {
    if incr == 0 {
        return Err(Error::ZeroIncrement);
    }
    if start > end {
        // An inverted descriptor denotes an empty run, which the
        // PowerList theory excludes.
        return Err(Error::Empty);
    }
    if end >= len {
        return Err(Error::DescriptorOutOfBounds { end, len });
    }
    Ok(())
}

/// A spliterator over an arbitrary vector, splitting linearly "in
/// segments" — the default Java behaviour the paper contrasts with
/// (Section IV.A: "By default, the partitioning is performed linearly,
/// in segments, which is somehow similar to the operator tie").
pub struct SliceSpliterator<T> {
    data: std::sync::Arc<Vec<T>>,
    lo: usize,
    hi: usize, // exclusive
}

impl<T> SliceSpliterator<T> {
    /// Spliterator over all elements of `data`.
    pub fn new(data: Vec<T>) -> Self {
        SliceSpliterator::shared(std::sync::Arc::new(data))
    }

    /// Spliterator over shared storage — lets repeated runs (benchmarks,
    /// retries) traverse the same buffer without re-copying it.
    pub fn shared(data: std::sync::Arc<Vec<T>>) -> Self {
        let hi = data.len();
        SliceSpliterator { data, lo: 0, hi }
    }
}

impl<T: Clone> ItemSource<T> for SliceSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        if self.lo == self.hi {
            return false;
        }
        action(self.data[self.lo].clone());
        self.lo += 1;
        true
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        for i in self.lo..self.hi {
            action(self.data[i].clone());
        }
        self.lo = self.hi;
    }

    fn estimate_size(&self) -> usize {
        self.hi - self.lo
    }
}

impl<T> LeafAccess<T> for SliceSpliterator<T> {
    fn try_as_slice(&self) -> Option<&[T]> {
        Some(&self.data[self.lo..self.hi])
    }

    fn mark_drained(&mut self) {
        self.lo = self.hi;
    }
}

impl<T: Clone + Send + Sync> Spliterator<T> for SliceSpliterator<T> {
    fn try_split(&mut self) -> Option<Self> {
        let n = self.hi - self.lo;
        if n < 2 {
            return None;
        }
        let mid = self.lo + n / 2;
        let prefix = SliceSpliterator {
            data: std::sync::Arc::clone(&self.data),
            lo: self.lo,
            hi: mid,
        };
        self.lo = mid;
        Some(prefix)
    }

    fn encounter_rank(&self) -> Option<(usize, usize)> {
        Some((self.lo, 1))
    }

    fn characteristics(&self) -> Characteristics {
        Characteristics::ORDERED
            | Characteristics::SIZED
            | Characteristics::SUBSIZED
            | Characteristics::IMMUTABLE
            | Characteristics::NONNULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T, S: ItemSource<T>>(s: &mut S) -> Vec<T> {
        let mut out = vec![];
        s.for_each_remaining(&mut |x| out.push(x));
        out
    }

    #[test]
    fn slice_spliterator_traverses() {
        let mut s = SliceSpliterator::new(vec![1, 2, 3]);
        assert_eq!(s.estimate_size(), 3);
        assert_eq!(drain(&mut s), vec![1, 2, 3]);
        assert_eq!(s.estimate_size(), 0);
        assert!(!s.try_advance(&mut |_| {}));
    }

    #[test]
    fn slice_split_is_segment_wise() {
        let mut s = SliceSpliterator::new(vec![1, 2, 3, 4, 5, 6]);
        let mut prefix = s.try_split().expect("splittable");
        assert_eq!(drain(&mut prefix), vec![1, 2, 3]);
        assert_eq!(drain(&mut s), vec![4, 5, 6]);
    }

    #[test]
    fn slice_split_stops_at_one() {
        let mut s = SliceSpliterator::new(vec![9]);
        assert!(s.try_split().is_none());
        assert_eq!(drain(&mut s), vec![9]);
    }

    #[test]
    fn slice_split_odd_length() {
        let mut s = SliceSpliterator::new(vec![1, 2, 3, 4, 5]);
        let mut prefix = s.try_split().unwrap();
        let a = drain(&mut prefix);
        let b = drain(&mut s);
        assert_eq!(a.len() + b.len(), 5);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![3, 4, 5]);
    }

    #[test]
    fn slice_has_no_power2() {
        let s = SliceSpliterator::new(vec![1, 2, 3, 4]);
        assert!(!s.has_characteristics(Characteristics::POWER2));
        assert!(s.has_characteristics(Characteristics::SIZED));
        assert!(require_power2(&s).is_err());
    }

    #[test]
    fn try_advance_one_at_a_time() {
        let mut s = SliceSpliterator::new(vec![7, 8]);
        let mut seen = vec![];
        assert!(s.try_advance(&mut |x| seen.push(x)));
        assert_eq!(s.estimate_size(), 1);
        assert!(s.try_advance(&mut |x| seen.push(x)));
        assert!(!s.try_advance(&mut |x| seen.push(x)));
        assert_eq!(seen, vec![7, 8]);
    }
}
