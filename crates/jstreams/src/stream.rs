//! The `Stream` pipeline type.
//!
//! A [`Stream`] couples a [`Spliterator`] source with an execution mode
//! (sequential / parallel, pool, leaf granularity) and offers the familiar
//! operation set: `map` / `filter` intermediates, `collect` / `reduce` /
//! `count` / `for_each` terminals. [`stream_support`] mirrors
//! `StreamSupport.stream(spliterator, parallel)` — the way the paper
//! creates a stream from a specialised spliterator.

use crate::collect::try_collect_with;
use crate::collector::{
    Collector, CountCollector, ExtremumCollector, ReduceCollector, VecCollector,
};
use crate::exec::{finish_infallible, ExecConfig, ExecError, ExecMode};
use crate::fused::{FilterStage, FusePipe, FusedSpliterator, InspectStage, MapStage};
use crate::search;
use crate::spliterator::Spliterator;
use crate::truncate::{LimitSpliterator, SkipSpliterator};
use forkjoin::{ForkJoinPool, SplitPolicy};
use std::sync::Arc;

/// The `for_each` terminal as a collector: side-effect-only
/// accumulation with unit state, shared by the infallible and fallible
/// entry points.
struct ForEach<F>(F);

impl<T, F: Fn(T) + Send + Sync> Collector<T> for ForEach<F> {
    type Acc = ();
    type Out = ();
    fn supplier(&self) {}
    fn accumulate(&self, _: &mut (), item: T) {
        (self.0)(item)
    }
    fn combine(&self, _: (), _: ()) {}
    fn finish(&self, _: ()) {}
}

/// A (possibly parallel) stream over a splittable source.
///
/// The execution knobs (mode, pool, split policy) are held as one
/// [`ExecConfig`]; the historical per-knob builders delegate to it, and
/// [`Stream::try_collect`] exposes the full fault-tolerant surface
/// (panic containment, cancellation, deadlines, graceful degradation).
pub struct Stream<T, S: Spliterator<T>> {
    source: S,
    cfg: ExecConfig,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Creates a stream from a spliterator — `StreamSupport.stream(sp, par)`.
pub fn stream_support<T, S: Spliterator<T>>(spliterator: S, parallel: bool) -> Stream<T, S> {
    Stream {
        source: spliterator,
        cfg: if parallel {
            ExecConfig::par()
        } else {
            ExecConfig::seq()
        },
        _marker: std::marker::PhantomData,
    }
}

impl<T, S> Stream<T, S>
where
    T: Send + 'static,
    S: Spliterator<T> + 'static,
{
    /// Switches to sequential execution (Java's `sequential()`).
    pub fn sequential(mut self) -> Self {
        self.cfg = self.cfg.with_mode(ExecMode::Seq);
        self
    }

    /// Switches to parallel execution (Java's `parallel()`).
    pub fn parallel(mut self) -> Self {
        self.cfg = self.cfg.with_mode(ExecMode::Par);
        self
    }

    /// `true` when terminal operations will run in parallel.
    pub fn is_parallel(&self) -> bool {
        self.cfg.mode() == ExecMode::Par
    }

    /// Pins parallel execution to a specific pool (default: the global
    /// pool), like running a Java stream inside `pool.submit(...)`.
    pub fn with_pool(mut self, pool: Arc<ForkJoinPool>) -> Self {
        self.cfg = self.cfg.with_pool(pool);
        self
    }

    /// Overrides the leaf granularity (default: `len / (4 × workers)`)
    /// with a static threshold — shorthand for
    /// [`Stream::with_split_policy`] and [`SplitPolicy::Fixed`].
    pub fn with_leaf_size(mut self, leaf_size: usize) -> Self {
        self.cfg = self.cfg.with_leaf_size(leaf_size);
        self
    }

    /// Selects how the parallel collect decides to split: the static
    /// [`SplitPolicy::Fixed`] threshold (the paper-faithful default) or
    /// demand-driven [`SplitPolicy::Adaptive`] splitting from pool
    /// pressure.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.cfg = self.cfg.with_split_policy(policy);
        self
    }

    /// Enables or disables the destination-passing placement collect
    /// route (default: enabled) — shorthand for
    /// [`ExecConfig::with_placement`].
    pub fn with_placement(mut self, enabled: bool) -> Self {
        self.cfg = self.cfg.with_placement(enabled);
        self
    }

    /// Attaches a shared [`pltune::PlanCache`] so the parallel collect
    /// resolves its split policy from calibrated plans: first sight of
    /// a pipeline shape runs a short candidate sweep and installs the
    /// winner; later sights (and later runs, if the cache is persisted)
    /// reuse it. An explicit [`Stream::with_split_policy`] /
    /// [`Stream::with_leaf_size`] always takes precedence — shorthand
    /// for [`ExecConfig::auto_tune`].
    pub fn with_auto_tuning(mut self, cache: Arc<pltune::PlanCache>) -> Self {
        self.cfg = self.cfg.auto_tune(cache);
        self
    }

    /// Replaces the stream's entire execution configuration at once.
    pub fn with_exec_config(mut self, cfg: ExecConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The stream's current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Direct access to the source spliterator's characteristics.
    pub fn characteristics(&self) -> crate::Characteristics {
        self.source.characteristics()
    }

    /// Exact/estimated element count of the source.
    pub fn estimate_size(&self) -> usize {
        self.source.estimate_size()
    }

    /// The element count when the source is `SIZED` (so its estimate is
    /// exact), `None` when the estimate is only an upper bound — e.g.
    /// after a `filter`. Mirrors
    /// [`Spliterator::exact_size`].
    pub fn exact_size(&self) -> Option<usize> {
        self.source.exact_size()
    }

    /// Dismantles the stream into its source spliterator, discarding
    /// the execution configuration — the inverse of [`stream_support`].
    /// Useful for handing a built-up fused pipeline to machinery that
    /// works on spliterators directly (e.g. the [`crate::search`] free
    /// functions).
    pub fn into_spliterator(self) -> S {
        self.source
    }

    /// Lazy element transformation (intermediate operation). Drops the
    /// `SORTED`/`DISTINCT` characteristics (a non-monotone,
    /// non-injective map breaks both) while keeping
    /// `SIZED|SUBSIZED|POWER2`.
    ///
    /// Builds onto the stream's *fused chain* — repeated `map`/`filter`
    /// calls extend one [`FusedSpliterator`] over the untouched source,
    /// so leaves can still take the zero-copy fused-borrow route
    /// (DESIGN.md §10) instead of the per-element cloning drain.
    #[allow(clippy::type_complexity)]
    pub fn map<U, F>(
        self,
        f: F,
    ) -> Stream<U, FusedSpliterator<S::Base, S::Src, MapStage<S::Chain, F, T>, U>>
    where
        S: FusePipe<T>,
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let (src, chain) = self.source.decompose();
        Stream {
            source: FusedSpliterator::new(src, MapStage::new(chain, f)),
            cfg: self.cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Lazy element filtering (intermediate operation). Drops the
    /// `POWER2`/`SIZED`/`SUBSIZED` characteristics, so the result no
    /// longer accepts PowerList collects. Extends the fused chain like
    /// [`Stream::map`].
    #[allow(clippy::type_complexity)]
    pub fn filter<P>(
        self,
        pred: P,
    ) -> Stream<T, FusedSpliterator<S::Base, S::Src, FilterStage<S::Chain, P>, T>>
    where
        S: FusePipe<T>,
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let (src, chain) = self.source.decompose();
        Stream {
            source: FusedSpliterator::new(src, FilterStage::new(chain, pred)),
            cfg: self.cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Truncates the stream to its first `n` elements (Java's
    /// `limit`). Drops the `POWER2` characteristic.
    pub fn limit(self, n: usize) -> Stream<T, LimitSpliterator<S>> {
        Stream {
            source: LimitSpliterator::new(self.source, n),
            cfg: self.cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Drops the first `n` elements (Java's `skip`). Drops the `POWER2`
    /// characteristic.
    pub fn skip(self, n: usize) -> Stream<T, SkipSpliterator<S>> {
        Stream {
            source: SkipSpliterator::new(self.source, n),
            cfg: self.cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Observes each element as it flows past (Java's `peek`). The
    /// observer may run concurrently on a parallel stream. Drops no
    /// characteristics; extends the fused chain like [`Stream::map`].
    #[allow(clippy::type_complexity)]
    pub fn peek<F>(
        self,
        observer: F,
    ) -> Stream<T, FusedSpliterator<S::Base, S::Src, InspectStage<S::Chain, F>, T>>
    where
        S: FusePipe<T>,
        F: Fn(&T) + Send + Sync + 'static,
    {
        let (src, chain) = self.source.decompose();
        Stream {
            source: FusedSpliterator::new(src, InspectStage::new(chain, observer)),
            cfg: self.cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Terminal: the minimum element under `Ord`, or `None` on an empty
    /// stream. Infallible shim over [`Stream::try_min`].
    pub fn min(self) -> Option<T>
    where
        T: Ord + Clone + Sync,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_min(&cfg), "min")
    }

    /// Terminal: the fallible minimum — [`Stream::min`] with the full
    /// [`ExecConfig`] surface (cancellation, deadlines, degradation).
    pub fn try_min(self, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
    where
        T: Ord + Clone + Sync,
    {
        self.try_collect(ExtremumCollector::min(), cfg)
    }

    /// Terminal: the maximum element under `Ord`, or `None` on an empty
    /// stream. Infallible shim over [`Stream::try_max`].
    pub fn max(self) -> Option<T>
    where
        T: Ord + Clone + Sync,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_max(&cfg), "max")
    }

    /// Terminal: the fallible maximum — [`Stream::max`] with the full
    /// [`ExecConfig`] surface.
    pub fn try_max(self, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
    where
        T: Ord + Clone + Sync,
    {
        self.try_collect(ExtremumCollector::max(), cfg)
    }

    /// Terminal: runs the full mutable reduction described by
    /// `collector` — the template method of the PowerList adaptation.
    ///
    /// Infallible shim over [`Stream::try_collect`] with the stream's
    /// own config: a contained panic is resumed on the caller, so
    /// behaviour matches the pre-session API; any other failure mode
    /// (cancellation, deadline) panics with a pointer at the fallible
    /// entry point, which is the only way to opt into those.
    pub fn collect<C>(self, collector: C) -> C::Out
    where
        C: Collector<T> + 'static,
        C::Acc: 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_collect(collector, &cfg), "collect")
    }

    /// Terminal: the fallible mutable reduction. Runs under `cfg` —
    /// which replaces the stream's own configuration wholesale, so one
    /// stream can be driven with different pools, deadlines or cancel
    /// tokens per call — and returns the collector's output, or an
    /// [`ExecError`] describing why the run stopped: a contained user
    /// panic, a tripped [`CancelToken`](forkjoin::CancelToken), or an
    /// expired deadline.
    pub fn try_collect<C>(self, collector: C, cfg: &ExecConfig) -> Result<C::Out, ExecError>
    where
        C: Collector<T> + 'static,
        C::Acc: 'static,
    {
        try_collect_with(self.source, collector, cfg)
    }

    /// Terminal: reduction with an identity and an associative operator.
    /// Infallible shim over [`Stream::try_reduce`].
    pub fn reduce<Op>(self, identity: T, op: Op) -> T
    where
        T: Clone + Sync,
        Op: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_reduce(identity, op, &cfg), "reduce")
    }

    /// Terminal: the fallible reduction — [`Stream::reduce`] with the
    /// full [`ExecConfig`] surface.
    pub fn try_reduce<Op>(self, identity: T, op: Op, cfg: &ExecConfig) -> Result<T, ExecError>
    where
        T: Clone + Sync,
        Op: Fn(T, T) -> T + Send + Sync + 'static,
    {
        self.try_collect(ReduceCollector::new(identity, op), cfg)
    }

    /// Terminal: number of elements. Infallible shim over
    /// [`Stream::try_count`].
    pub fn count(self) -> usize {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_count(&cfg), "count")
    }

    /// Terminal: the fallible element count.
    pub fn try_count(self, cfg: &ExecConfig) -> Result<usize, ExecError> {
        self.try_collect(CountCollector, cfg)
    }

    /// Terminal: gathers the elements into a vector (encounter order).
    /// Infallible shim over [`Stream::try_to_vec`].
    pub fn to_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_to_vec(&cfg), "to_vec")
    }

    /// Terminal: the fallible vector collect.
    pub fn try_to_vec(self, cfg: &ExecConfig) -> Result<Vec<T>, ExecError>
    where
        T: Clone,
    {
        self.try_collect(VecCollector, cfg)
    }

    /// Terminal: applies `f` to every element. Runs through the collect
    /// machinery so parallel streams fan out; `f` must therefore be
    /// shareable. Infallible shim over [`Stream::try_for_each`].
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_for_each(f, &cfg), "for_each")
    }

    /// Terminal: the fallible `for_each` — a panicking `f` is contained
    /// and reported as [`ExecError::Panicked`]; cancellation and
    /// deadlines stop the traversal early (some elements may have been
    /// visited).
    pub fn try_for_each<F>(self, f: F, cfg: &ExecConfig) -> Result<(), ExecError>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        self.try_collect(ForEach(f), cfg)
    }

    /// Short-circuiting terminal: `true` iff some element satisfies
    /// `pred` (Java's `anyMatch`). The first hit trips the run's
    /// internal `Found` cancellation, so sibling subtrees stop at their
    /// next checkpoint instead of draining — see DESIGN.md §12.
    /// Infallible shim over [`Stream::try_any_match`].
    pub fn any_match<P>(self, pred: P) -> bool
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_any_match(pred, &cfg), "any_match")
    }

    /// Short-circuiting terminal: the fallible `any_match`. A panicking
    /// predicate is contained ([`ExecError::Panicked`]); the caller's
    /// cancel token and deadline are observed at every checkpoint, while
    /// the `Found` short-circuit stays on a run-private token.
    pub fn try_any_match<P>(self, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        search::try_any_match_with(self.source, pred, cfg)
    }

    /// Short-circuiting terminal: `true` iff every element satisfies
    /// `pred` (Java's `allMatch`; vacuously true when empty). One
    /// counterexample short-circuits. Infallible shim over
    /// [`Stream::try_all_match`].
    pub fn all_match<P>(self, pred: P) -> bool
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_all_match(pred, &cfg), "all_match")
    }

    /// Short-circuiting terminal: the fallible `all_match`.
    pub fn try_all_match<P>(self, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        search::try_all_match_with(self.source, pred, cfg)
    }

    /// Short-circuiting terminal: `true` iff no element satisfies
    /// `pred` (Java's `noneMatch`; vacuously true when empty).
    /// Infallible shim over [`Stream::try_none_match`].
    pub fn none_match<P>(self, pred: P) -> bool
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_none_match(pred, &cfg), "none_match")
    }

    /// Short-circuiting terminal: the fallible `none_match`.
    pub fn try_none_match<P>(self, pred: P, cfg: &ExecConfig) -> Result<bool, ExecError>
    where
        P: Fn(&T) -> bool + Send + Sync + 'static,
    {
        search::try_none_match_with(self.source, pred, cfg)
    }

    /// Short-circuiting terminal: the first element in encounter order
    /// (Java's `findFirst`), deterministic under every execution mode
    /// and split geometry — sources with interleaving splits (zip
    /// decomposition) are ordered by their exact encounter ranks, and
    /// when a filter has erased those, the driver degrades to a
    /// sequential encounter-order scan rather than risk a misordered
    /// answer. Combine with `filter` to search: `.filter(p).find_first()`
    /// runs the predicate over borrowed source runs and prunes subtrees
    /// that sit past the best hit so far. Infallible shim over
    /// [`Stream::try_find_first`].
    pub fn find_first(self) -> Option<T>
    where
        T: Clone,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_find_first(&cfg), "find_first")
    }

    /// Short-circuiting terminal: the fallible `find_first`.
    pub fn try_find_first(self, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
    where
        T: Clone,
    {
        search::try_find_first_with(self.source, cfg)
    }

    /// Short-circuiting terminal: some element of the stream (Java's
    /// `findAny`) — first-hit-wins, so which element you get is
    /// schedule-dependent on a parallel stream, in exchange for the
    /// strongest short-circuit (the first hit anywhere cancels all
    /// remaining work). Infallible shim over [`Stream::try_find_any`].
    pub fn find_any(self) -> Option<T>
    where
        T: Clone,
    {
        let cfg = self.cfg.clone();
        finish_infallible(self.try_find_any(&cfg), "find_any")
    }

    /// Short-circuiting terminal: the fallible `find_any`.
    pub fn try_find_any(self, cfg: &ExecConfig) -> Result<Option<T>, ExecError>
    where
        T: Clone,
    {
        search::try_find_any_with(self.source, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spliterator::SliceSpliterator;
    use crate::zip::ZipSpliterator;
    use crate::Characteristics;
    use powerlist::tabulate;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn ints(n: usize) -> SliceSpliterator<i64> {
        SliceSpliterator::new((0..n as i64).collect())
    }

    #[test]
    fn sequential_to_vec() {
        let v = stream_support(ints(10), false).to_vec();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_to_vec_ordered() {
        let v = stream_support(ints(500), true).to_vec();
        assert_eq!(v, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_reduce_pipeline() {
        let r = stream_support(ints(100), true)
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .reduce(0, |a, b| a + b);
        // doubles of 0..100 divisible by 4 = 0,4,8,...,196 → sum = 4900
        assert_eq!(r, 4900);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = stream_support(ints(1000), false)
            .map(|x| x * x % 7)
            .reduce(0, |a, b| a + b);
        let par = stream_support(ints(1000), true)
            .map(|x| x * x % 7)
            .reduce(0, |a, b| a + b);
        assert_eq!(seq, par);
    }

    #[test]
    fn count_after_filter() {
        let c = stream_support(ints(100), true)
            .filter(|x| x % 3 == 0)
            .count();
        assert_eq!(c, 34);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        stream_support(ints(256), true).for_each(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn mode_toggles() {
        let s = stream_support(ints(4), false);
        assert!(!s.is_parallel());
        let s = s.parallel();
        assert!(s.is_parallel());
        let s = s.sequential();
        assert!(!s.is_parallel());
    }

    #[test]
    fn pinned_pool_is_used() {
        let pool = Arc::new(ForkJoinPool::new(2));
        let before = pool.metrics();
        let v = stream_support(ints(512), true)
            .with_pool(Arc::clone(&pool))
            .with_leaf_size(16)
            .to_vec();
        assert_eq!(v.len(), 512);
        let after = pool.metrics().since(&before);
        assert!(after.executed > 0, "work must run on the pinned pool");
    }

    #[test]
    fn limit_and_skip_pipeline() {
        let v = stream_support(ints(100), true).skip(10).limit(5).to_vec();
        assert_eq!(v, vec![10, 11, 12, 13, 14]);
        let v = stream_support(ints(100), false).limit(3).to_vec();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn peek_counts_elements() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let v = stream_support(ints(64), true)
            .peek(move |_| {
                n2.fetch_add(1, Ordering::Relaxed);
            })
            .to_vec();
        assert_eq!(v.len(), 64);
        assert_eq!(n.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn min_max_terminals() {
        assert_eq!(stream_support(ints(100), true).min(), Some(0));
        assert_eq!(stream_support(ints(100), true).max(), Some(99));
        // Empty after an over-aggressive skip:
        assert_eq!(stream_support(ints(4), true).skip(10).min(), None);
        // After filtering:
        let m = stream_support(ints(100), true).filter(|x| x % 7 == 0).max();
        assert_eq!(m, Some(98));
    }

    #[test]
    fn adaptive_policy_agrees_with_fixed() {
        let fixed = stream_support(ints(1000), true)
            .with_leaf_size(16)
            .map(|x| x * 3)
            .reduce(0, |a, b| a + b);
        let adaptive = stream_support(ints(1000), true)
            .with_split_policy(SplitPolicy::adaptive())
            .map(|x| x * 3)
            .reduce(0, |a, b| a + b);
        assert_eq!(fixed, adaptive);
    }

    #[test]
    fn try_collect_uses_passed_config() {
        // The passed config replaces the stream's own (parallel) one.
        let sum = stream_support(ints(100), true)
            .map(|x| x + 1)
            .try_collect(ReduceCollector::new(0, |a, b| a + b), &ExecConfig::seq())
            .unwrap();
        assert_eq!(sum, 5050);
    }

    #[test]
    fn with_exec_config_replaces_knobs() {
        let s = stream_support(ints(8), true).with_exec_config(ExecConfig::seq());
        assert!(!s.is_parallel());
        let s = s.parallel();
        assert!(s.is_parallel());
        assert!(s.exec_config().pool().is_none());
    }

    #[test]
    fn with_auto_tuning_threads_the_cache_through_collects() {
        // One shared cache across two stream runs of the same pipeline
        // shape: the first calibrates, the second hits. A fused
        // map-over-slice pipeline exercises the fingerprint's adapter
        // summary.
        let cache = Arc::new(pltune::PlanCache::new());
        let run = |cache: Arc<pltune::PlanCache>| {
            stream_support(ints(2048), true)
                .with_auto_tuning(cache)
                .map(|x| x * 2)
                .reduce(0, |a, b| a + b)
        };
        let (sums, report) = plobs::recorded(|| (run(Arc::clone(&cache)), run(Arc::clone(&cache))));
        assert_eq!(sums.0, sums.1);
        assert_eq!(report.tune_calibrations, 1);
        assert_eq!(report.tune_hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn power2_characteristic_flows_through_map() {
        let z = ZipSpliterator::over(tabulate(8, |i| i as i64).unwrap());
        let s = stream_support(z, true).map(|x| x + 1);
        assert!(s.characteristics().contains(Characteristics::POWER2));
        assert_eq!(s.estimate_size(), 8);
        let s2 = s.filter(|_| true);
        assert!(!s2.characteristics().contains(Characteristics::POWER2));
    }
}
